//! `topick` — command-line driver for the Token-Picker reproduction.
//!
//! ```text
//! topick prune   [--context N] [--dim D] [--threshold T] [--seed S]
//! topick sweep   [--context N] [--dim D] [--seed S]
//! topick accel   [--context N] [--threshold T] [--seed S]
//! topick traffic [--model NAME] [--context N]
//! topick serve   [--requests N] [--batch B] [--threshold T] [--seed S] [--baseline]
//!                [--policy fifo|priority|sjf|fair|slo|all] [--preemption]
//!                [--page-size P] [--retention none|<pages>|<fraction>]
//!                [--prefix-cache] [--prefill-factor F] [--prefill-chunk PAGES]
//!                [--slo-ttft STEPS] [--slo-itl STEPS]
//!                [--shards N] [--routing rr|least|affinity] [--stealing] [--threads N]
//!                [--scenario NAME [--scenario-seed S]] [--list-scenarios]
//!                [--record PATH | --replay PATH] [--real-tokens]
//! topick trace   diff A B
//! topick help
//! ```

use std::collections::HashMap;

use token_picker::accel::{AccelConfig, AccelMode, ToPickAccelerator};
use token_picker::core::{
    PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector, ScanOrder,
};
use token_picker::model::{InstanceSampler, ModelSpec, TrafficBreakdown};

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn workload(ctx: usize, dim: usize, seed: u64) -> (QVector, QMatrix, Vec<f32>) {
    let pc = PrecisionConfig::paper();
    let inst = InstanceSampler::realistic(ctx, dim).sample(seed);
    (
        QVector::quantize(&inst.query, pc),
        QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty"),
        inst.into_values(),
    )
}

fn cmd_prune(flags: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let ctx = flag(flags, "context", 512usize);
    let dim = flag(flags, "dim", 64usize);
    let thr = flag(flags, "threshold", 1e-3f64);
    let seed = flag(flags, "seed", 0u64);
    let (q, keys, _) = workload(ctx, dim, seed);
    let outcome = ProgressivePruner::new(PrunerConfig::new(thr)?).run(&q, &keys)?;
    let pc = PrecisionConfig::paper();
    println!("context {ctx}, dim {dim}, thr {thr:.1e}, seed {seed}");
    println!(
        "kept        : {}/{}",
        outcome.stats.kept, outcome.stats.tokens
    );
    println!("chunk fetches: {:?}", outcome.stats.chunk_fetches);
    println!("V reduction : {:.2}x", outcome.stats.v_reduction());
    println!("K reduction : {:.2}x", outcome.stats.k_reduction(dim, &pc));
    println!(
        "total       : {:.2}x",
        outcome.stats.total_reduction(dim, &pc)
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let ctx = flag(flags, "context", 512usize);
    let dim = flag(flags, "dim", 64usize);
    let seed = flag(flags, "seed", 0u64);
    let (q, keys, _) = workload(ctx, dim, seed);
    let pc = PrecisionConfig::paper();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "threshold", "kept", "V red", "K red", "total"
    );
    for exp in 2..=6 {
        let thr = 10f64.powi(-exp);
        let cfg = PrunerConfig::new(thr)?.with_order(ScanOrder::FirstAndReverse);
        let o = ProgressivePruner::new(cfg).run(&q, &keys)?;
        println!(
            "{:<12.0e} {:>10} {:>9.1}x {:>9.2}x {:>9.2}x",
            thr,
            o.stats.kept,
            o.stats.v_reduction(),
            o.stats.k_reduction(dim, &pc),
            o.stats.total_reduction(dim, &pc)
        );
    }
    Ok(())
}

fn cmd_accel(flags: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let ctx = flag(flags, "context", 1024usize);
    let thr = flag(flags, "threshold", 1e-3f64);
    let seed = flag(flags, "seed", 0u64);
    let (q, keys, values) = workload(ctx, 64, seed);
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>12}",
        "mode", "cycles", "kept", "DRAM KB", "energy uJ"
    );
    for (name, mode, t) in [
        ("Baseline", AccelMode::Baseline, 0.5),
        ("EstimateOnly", AccelMode::EstimateOnly, thr),
        ("OutOfOrder", AccelMode::OutOfOrder, thr),
        ("Blocking", AccelMode::Blocking, thr),
    ] {
        let accel = ToPickAccelerator::new(AccelConfig::paper(mode, t)?);
        let r = accel.run_attention(&q, &keys, token_picker::core::Rows::new(&values, 64))?;
        println!(
            "{:<14} {:>9} {:>9} {:>11.1} {:>12.2}",
            name,
            r.cycles,
            r.kept.len(),
            r.dram_stats.bytes(&accel.config().dram) as f64 / 1e3,
            r.energy.total_pj() / 1e6
        );
    }
    Ok(())
}

fn cmd_traffic(flags: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let name = flags
        .get("model")
        .map_or("opt-6.7b", String::as_str)
        .to_lowercase();
    let spec = match name.as_str() {
        "gpt2-medium" => ModelSpec::gpt2_medium(),
        "gpt2-large" => ModelSpec::gpt2_large(),
        "gpt2-xl" => ModelSpec::gpt2_xl(),
        "opt-1.3b" => ModelSpec::opt_1_3b(),
        "opt-2.7b" => ModelSpec::opt_2_7b(),
        "opt-6.7b" => ModelSpec::opt_6_7b(),
        "opt-13b" => ModelSpec::opt_13b(),
        "llama2-7b" => ModelSpec::llama2_7b(),
        "llama2-13b" => ModelSpec::llama2_13b(),
        other => return Err(format!("unknown model '{other}'").into()),
    };
    let ctx = flag(flags, "context", spec.max_context.min(2048));
    println!("{} @ context {}", spec.name, ctx);
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "batch", "KV share", "total GB", "KV GB"
    );
    for batch in [1usize, 4, 16, 64] {
        let t = TrafficBreakdown::compute(&spec, batch, ctx);
        println!(
            "{:>6} {:>9.1}% {:>12.2} {:>10.2}",
            batch,
            100.0 * t.kv_fraction(),
            t.total() as f64 / 1e9,
            t.kv_bytes as f64 / 1e9
        );
    }
    Ok(())
}

struct ServeOpts {
    mode: AccelMode,
    threshold: f64,
    batch: usize,
    seed: u64,
    requests: u64,
    preemption: bool,
    page_size: usize,
    retention: token_picker::accel::RetentionPolicy,
    prefix_cache: bool,
    prefill_factor: f64,
    prefill_chunk: usize,
    slo_ttft: Option<u64>,
    slo_itl: Option<u64>,
    host_pages: usize,
    swap_cost: f64,
    ship_cost: f64,
    slo_reject: bool,
    shards: usize,
    routing: token_picker::accel::RoutingKind,
    stealing: bool,
    threads: usize,
    scenario: Option<token_picker::accel::ScenarioKind>,
    scenario_seed: u64,
    record: Option<String>,
}

/// The `serve` command's synthetic workload: heterogeneous shapes,
/// priorities and clients so every policy has something to differentiate
/// on; arrivals come in waves so later high-priority work can contend
/// with (and under `--preemption`, evict) earlier long-running requests.
/// Requests of one client share a page-aligned system prompt, so
/// `--prefix-cache` (and affinity routing) have real prefixes to hit.
fn serve_workload(requests: u64) -> Vec<token_picker::accel::ServingRequest> {
    use token_picker::accel::ServingRequest;
    (0..requests)
        .map(|id| {
            ServingRequest::new(id, 64 + (id as usize % 7) * 32, 4 + (id as usize % 5) * 2)
                .with_priority((id % 4) as u8)
                .with_client(id % 3)
                .with_shared_prefix(id % 3, 64)
                .arriving_at((id / 4) * 3)
        })
        .collect()
}

/// The open-loop workload a `serve` invocation runs: the selected
/// scenario's seed-derived stream, or the classic hardcoded mix.
/// `--slo-ttft`/`--slo-itl` stamp a uniform deadline onto every request,
/// overriding whatever the scenario attached.
fn serve_requests(opts: &ServeOpts) -> Vec<token_picker::accel::ServingRequest> {
    let mut reqs = match opts.scenario {
        Some(kind) => kind.build().generate(opts.scenario_seed),
        None => serve_workload(opts.requests),
    };
    if let Some(d) = opts.slo_ttft {
        for r in &mut reqs {
            *r = r.with_ttft_deadline(d);
        }
    }
    if let Some(d) = opts.slo_itl {
        for r in &mut reqs {
            *r = r.with_itl_deadline(d);
        }
    }
    reqs
}

/// Builds the trace meta describing the run the flags ask for — the
/// single source both the live run and any `--record`/`--replay` of it
/// execute through.
/// Builds the `ServingConfig` the flags describe — the single source
/// both the trace-recorded cost-model run and the `--real-tokens`
/// token-backed run configure their engines from.
fn serve_config(
    opts: &ServeOpts,
) -> Result<token_picker::accel::ServingConfig, Box<dyn std::error::Error>> {
    use token_picker::accel::{PreemptionConfig, ServingConfig};

    let accel = AccelConfig::paper(opts.mode, opts.threshold)?;
    let mut cfg = match opts.scenario {
        Some(kind) => kind.build().serving_config(accel),
        None => {
            let mut cfg = ServingConfig::new(accel);
            cfg.admission.max_batch = opts.batch;
            cfg.admission.page_size = opts.page_size;
            cfg.admission.prefix_cache = opts.prefix_cache;
            cfg.prefill_factor = opts.prefill_factor;
            cfg.seed = opts.seed;
            cfg
        }
    };
    if opts.preemption {
        cfg.preemption = PreemptionConfig::enabled().with_retention(opts.retention);
    }
    cfg.prefill_chunk_pages = opts.prefill_chunk;
    // The tiered-KV knobs override whatever the scenario shipped with —
    // all of them default to "off"/bit-identical when the flags are absent.
    cfg.host_pages = opts.host_pages;
    cfg.swap_cost_factor = opts.swap_cost;
    cfg.ship_cost_factor = opts.ship_cost;
    cfg.reject_expired_ttft = opts.slo_reject;
    Ok(cfg)
}

fn serve_meta(
    opts: &ServeOpts,
    policy: token_picker::accel::PolicyKind,
) -> Result<token_picker::accel::TraceMeta, Box<dyn std::error::Error>> {
    use token_picker::accel::TraceMeta;

    let cfg = serve_config(opts)?;
    let mut meta = TraceMeta::new(&cfg, policy.name());
    if opts.shards > 1 {
        meta = meta.for_cluster(
            opts.shards,
            opts.routing.name(),
            opts.stealing,
            opts.threads,
        );
    }
    if let Some(kind) = opts.scenario {
        meta = meta.for_scenario(kind.name(), opts.scenario_seed);
    }
    Ok(meta)
}

/// One recorded run — engine or cluster per the meta — driven through the
/// trace subsystem, so `--record` is just "save what already happened".
fn serve_run(
    opts: &ServeOpts,
    policy: token_picker::accel::PolicyKind,
) -> Result<
    (
        token_picker::accel::Trace,
        token_picker::accel::RunReport,
        f64,
    ),
    Box<dyn std::error::Error>,
> {
    let meta = serve_meta(opts, policy)?;
    let clock_hz = meta.clock_hz;
    let requests = serve_requests(opts);
    let (trace, report) = token_picker::accel::serve::trace::run_recorded(&meta, &requests)?;
    Ok((trace, report, clock_hz))
}

/// Saves the trace when `--record` asked for it.
fn save_trace(
    trace: &token_picker::accel::Trace,
    record: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = record {
        trace.save(path)?;
        println!(
            "recorded       : {} requests, {} events -> {path} (digest {:#018x})",
            trace.requests.len(),
            trace.events.len(),
            trace.digest
        );
    }
    Ok(())
}

/// Replays a recorded trace: rebuilds the run from the trace's meta,
/// re-enqueues the recorded requests, and verifies the replayed schedule
/// digest against the recording (a mismatch is an error).
fn cmd_serve_replay(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use token_picker::accel::{RunReport, TraceReplay};

    let replay = TraceReplay::load(path)?;
    let meta = replay.meta().clone();
    let (trace, report) = replay.run()?;
    println!(
        "replayed {path}: scenario {}, policy {}, {} shard{} ({} thread{}), {} requests, {} events",
        meta.scenario.as_deref().unwrap_or("ad-hoc"),
        meta.policy,
        meta.shards,
        if meta.shards == 1 { "" } else { "s" },
        meta.threads,
        if meta.threads == 1 { "" } else { "s" },
        trace.requests.len(),
        trace.events.len()
    );
    println!(
        "digest         : {:#018x} (matches the recording)",
        trace.digest
    );
    match report {
        RunReport::Engine(r) => println!(
            "throughput     : {:.1} tokens/s, {} tokens in {} steps",
            r.tokens_per_second(meta.clock_hz),
            r.tokens_generated,
            r.steps.len()
        ),
        RunReport::Cluster(r) => println!(
            "throughput     : {:.1} tokens/s, {} tokens in {} cluster steps ({} steals)",
            r.tokens_per_second(meta.clock_hz),
            r.tokens_generated(),
            r.cluster_steps,
            r.steals
        ),
    }
    Ok(())
}

/// `serve --real-tokens`: the engine schedules (and charges cycles)
/// exactly as in the cost-model-only run, while a token-backed mirror
/// generates real synth-model tokens out of one shared copy-on-write
/// paged KV store. Prints the token-equivalence, physical-sharing and
/// charged-vs-measured cross-checks the mirror affords.
fn cmd_serve_real_tokens(
    opts: &ServeOpts,
    policy: token_picker::accel::PolicyKind,
) -> Result<(), Box<dyn std::error::Error>> {
    use token_picker::accel::{run_token_backed, ServingEngine};

    let cfg = serve_config(opts)?;
    let mut engine = ServingEngine::builder(cfg.accel.clone())
        .config(cfg)
        .policy(policy)
        .build();
    let requests = serve_requests(opts);
    // The CLI workload's prompts outgrow the toy spec's 256-token
    // window, so serve a toy-shaped model with a longer context.
    let mut spec = ModelSpec::toy();
    spec.max_context = 1024;
    let run = run_token_backed(&mut engine, requests.clone(), spec, opts.seed, 100_000)?;
    let report = &run.report;
    println!(
        "mode {:?}, policy {}: {} requests, {} real tokens in {} steps",
        opts.mode,
        report.policy,
        report.requests.len(),
        report.tokens_generated,
        report.steps.len()
    );
    let mut matched = 0usize;
    for req in &requests {
        let got = run
            .batch
            .generated(req.id)
            .ok_or("a request was never served")?;
        if got == run.batch.reference_generate(req).as_slice() {
            matched += 1;
        }
    }
    println!(
        "token equivalence: {matched}/{} requests byte-identical to unsharded generate",
        requests.len()
    );
    if matched != requests.len() {
        return Err("served tokens diverged from per-request generate".into());
    }
    println!(
        "shared KV pages  : {} at peak, {} after drain (page size {})",
        run.batch.peak_shared_pages(),
        run.batch.shared_pages(),
        opts.page_size
    );
    println!(
        "prefix cache     : {:.0}% admission hit rate ({} hit tokens)",
        100.0 * report.prefix_hit_rate(),
        report.total_prefix_hit_tokens()
    );
    println!(
        "cycle cross-check: charged {} vs measured {} kernel cycles (ratio {:.4})",
        run.charged_cycles(),
        run.batch.measured_cycles(),
        run.cycle_ratio()
    );
    println!("preemptions      : {}", report.preemptions);
    run.batch.validate();
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    use token_picker::accel::{PolicyKind, RetentionPolicy, RoutingKind, ScenarioKind};

    if flags.contains_key("list-scenarios") {
        println!("{:<22} description", "scenario");
        for kind in ScenarioKind::all() {
            println!("{:<22} {}", kind.name(), kind.build().description());
        }
        return Ok(());
    }

    if let Some(path) = flags.get("replay") {
        if flags.contains_key("scenario") || flags.contains_key("record") {
            return Err("--replay is mutually exclusive with --scenario and --record".into());
        }
        for shaped in [
            "policy",
            "baseline",
            "threshold",
            "batch",
            "seed",
            "requests",
            "preemption",
            "page-size",
            "retention",
            "prefix-cache",
            "prefill-factor",
            "shards",
            "routing",
            "stealing",
            "threads",
            "scenario-seed",
            "prefill-chunk",
            "slo-ttft",
            "slo-itl",
            "real-tokens",
        ] {
            if flags.contains_key(shaped) {
                return Err(format!(
                    "--{shaped} cannot be combined with --replay (the trace fixes the whole run)"
                )
                .into());
            }
        }
        return cmd_serve_replay(path);
    }

    let scenario: Option<ScenarioKind> = flags.get("scenario").map(|v| v.parse()).transpose()?;
    if scenario.is_some() {
        // A scenario fixes the engine shape it was designed against;
        // scheduling flags (--policy/--preemption/--retention/--shards/
        // --routing/--stealing/--threads) still compose with it.
        for sized in [
            "batch",
            "page-size",
            "prefix-cache",
            "prefill-factor",
            "seed",
            "requests",
        ] {
            if flags.contains_key(sized) {
                return Err(format!(
                    "--{sized} cannot be combined with --scenario (the scenario fixes the engine shape)"
                )
                .into());
            }
        }
    } else if flags.contains_key("scenario-seed") {
        return Err("--scenario-seed only takes effect with --scenario".into());
    }

    let baseline_mode = flags.contains_key("baseline");
    let retention: RetentionPolicy = flags
        .get("retention")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(RetentionPolicy::None);
    if retention != RetentionPolicy::None && !flags.contains_key("preemption") {
        return Err("--retention only takes effect with --preemption".into());
    }
    let prefix_cache = flags.contains_key("prefix-cache");
    let routing: RoutingKind = flags
        .get("routing")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(RoutingKind::RoundRobin);
    let shards = flag(flags, "shards", 1usize).max(1);
    let stealing = flags.contains_key("stealing");
    let threads = flag(flags, "threads", 1usize).max(1);
    if shards <= 1 && (flags.contains_key("routing") || stealing || flags.contains_key("threads")) {
        return Err(
            "--routing, --stealing and --threads only take effect with --shards > 1".into(),
        );
    }
    let host_pages = flag(flags, "host-pages", 0usize);
    if host_pages == 0 && flags.contains_key("swap-cost") {
        return Err("--swap-cost only takes effect with --host-pages > 0".into());
    }
    if shards <= 1 && flags.contains_key("ship-cost") {
        return Err("--ship-cost only takes effect with --shards > 1".into());
    }
    let swap_cost = flag(
        flags,
        "swap-cost",
        token_picker::accel::ServingConfig::DEFAULT_SWAP_COST_FACTOR,
    );
    let ship_cost = flag(flags, "ship-cost", 0.0f64);
    if !(0.0..=10.0).contains(&swap_cost) || !(0.0..=10.0).contains(&ship_cost) {
        return Err("--swap-cost/--ship-cost must be within [0, 10]".into());
    }
    let opts = ServeOpts {
        mode: if baseline_mode {
            AccelMode::Baseline
        } else {
            AccelMode::OutOfOrder
        },
        threshold: if baseline_mode {
            0.5
        } else {
            flag(flags, "threshold", 1e-3f64)
        },
        batch: flag(flags, "batch", 8usize),
        seed: flag(flags, "seed", 0u64),
        requests: flag(flags, "requests", 16u64),
        preemption: flags.contains_key("preemption"),
        page_size: flag(flags, "page-size", 16usize),
        retention,
        prefix_cache,
        // Prompt prefill is priced by default once the cache is on (the
        // saving is otherwise invisible), and free otherwise — matching
        // the engine's default.
        prefill_factor: flag(
            flags,
            "prefill-factor",
            if prefix_cache { 1.0 } else { 0.0 },
        ),
        shards,
        routing,
        stealing,
        prefill_chunk: flag(flags, "prefill-chunk", 0usize),
        slo_ttft: flags.get("slo-ttft").map(|v| v.parse()).transpose()?,
        slo_itl: flags.get("slo-itl").map(|v| v.parse()).transpose()?,
        host_pages,
        swap_cost,
        ship_cost,
        slo_reject: flags.contains_key("slo-reject"),
        threads,
        scenario,
        scenario_seed: flag(flags, "scenario-seed", 7u64),
        record: flags.get("record").cloned(),
    };
    let policy_flag = flags.get("policy").map_or("fifo", String::as_str);
    if opts.record.is_some() && policy_flag == "all" {
        return Err("--record requires a single --policy (not 'all')".into());
    }

    if flags.contains_key("real-tokens") {
        if shards > 1 {
            return Err("--real-tokens drives a single engine (not with --shards > 1)".into());
        }
        if opts.scenario.is_some() {
            return Err("--real-tokens uses the built-in workload (not with --scenario)".into());
        }
        if opts.record.is_some() {
            return Err(
                "--real-tokens cannot be combined with --record (the mirror drives the engine directly)"
                    .into(),
            );
        }
        if policy_flag == "all" {
            return Err("--real-tokens requires a single --policy (not 'all')".into());
        }
        let policy: PolicyKind = policy_flag.parse()?;
        return cmd_serve_real_tokens(&opts, policy);
    }

    if shards > 1 {
        return cmd_serve_cluster(&opts, policy_flag);
    }

    if policy_flag == "all" {
        println!(
            "{:<20} {:>8} {:>12} {:>11} {:>10} {:>9} {:>11} {:>9} {:>8} {:>11}",
            "policy",
            "steps",
            "tokens/s",
            "mean TTFT",
            "mean wait",
            "preempts",
            "reprefill",
            "KV hits",
            "attain",
            "goodput"
        );
        for kind in PolicyKind::all() {
            let (_, report, clock_hz) = serve_run(&opts, kind)?;
            let token_picker::accel::RunReport::Engine(report) = report else {
                unreachable!("shards <= 1 runs a bare engine");
            };
            println!(
                "{:<20} {:>8} {:>12.1} {:>11.2} {:>10.2} {:>9} {:>11} {:>9} {:>7.0}% {:>11.1}",
                report.policy,
                report.steps.len(),
                report.tokens_per_second(clock_hz),
                report.mean_ttft_steps(),
                report.mean_queue_wait_steps(),
                report.preemptions,
                report.total_reprefill_cycles(),
                report.total_prefix_hit_tokens(),
                100.0 * report.deadline_attainment(),
                report.goodput_tokens_per_second(clock_hz)
            );
        }
        return Ok(());
    }

    let policy: PolicyKind = policy_flag.parse()?;
    let (trace, report, clock_hz) = serve_run(&opts, policy)?;
    let token_picker::accel::RunReport::Engine(report) = report else {
        unreachable!("shards <= 1 runs a bare engine");
    };
    if let Some(kind) = opts.scenario {
        println!("scenario {} (seed {})", kind.name(), opts.scenario_seed);
    }
    println!(
        "mode {:?}, policy {}: {} requests, {} tokens in {} steps",
        opts.mode,
        report.policy,
        report.requests.len(),
        report.tokens_generated,
        report.steps.len()
    );
    println!("total cycles   : {}", report.total_cycles);
    println!("mean step      : {:.0} cycles", report.mean_step_cycles());
    println!(
        "throughput     : {:.1} tokens/s",
        report.tokens_per_second(clock_hz)
    );
    println!("mean TTFT      : {:.2} steps", report.mean_ttft_steps());
    println!(
        "mean queue wait: {:.2} steps",
        report.mean_queue_wait_steps()
    );
    println!("preemptions    : {}", report.preemptions);
    println!(
        "reprefill      : {} cycles ({} tokens; {} KV tokens retained)",
        report.total_reprefill_cycles(),
        report.total_reprefilled_tokens(),
        report.total_retained_tokens()
    );
    if opts.host_pages > 0 {
        println!(
            "host swap      : {} cycles ({} tokens copied back, {} host pages)",
            report.total_swap_cycles(),
            report.total_swapped_tokens(),
            opts.host_pages
        );
    }
    if opts.slo_reject {
        println!(
            "rejections     : {} expired-TTFT requests",
            report.rejections
        );
    }
    println!(
        "prefill        : {} cycles ({} prompt tokens served from the prefix cache, {:.0}% hit rate)",
        report.total_prefill_cycles(),
        report.total_prefix_hit_tokens(),
        100.0 * report.prefix_hit_rate()
    );
    if report.requests.iter().any(|r| r.has_deadline()) {
        println!(
            "SLO            : {:.0}% deadline attainment, {:.1} good tokens/s ({} good tokens)",
            100.0 * report.deadline_attainment(),
            report.goodput_tokens_per_second(clock_hz),
            report.total_good_tokens()
        );
        println!(
            "TTFT p99       : {} steps (max prefill stall {} cycles/step)",
            report.ttft_p99_steps(),
            report.max_prefill_stall_cycles()
        );
    }
    println!("V reduction    : {:.2}x", report.prune.v_reduction());
    save_trace(&trace, opts.record.as_deref())?;
    Ok(())
}

/// The multi-shard `serve` output: one combined row per policy under
/// `--policy all`, or a combined summary plus a per-shard breakdown for a
/// single policy.
fn cmd_serve_cluster(
    opts: &ServeOpts,
    policy_flag: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use token_picker::accel::PolicyKind;

    if policy_flag == "all" {
        println!(
            "{:<20} {:>8} {:>12} {:>8} {:>10} {:>9} {:>9}",
            "policy", "steps", "tokens/s", "steals", "imbalance", "preempts", "KV hits"
        );
        for kind in PolicyKind::all() {
            let (_, report, clock_hz) = serve_run(opts, kind)?;
            let token_picker::accel::RunReport::Cluster(report) = report else {
                unreachable!("shards > 1 runs a cluster");
            };
            println!(
                "{:<20} {:>8} {:>12.1} {:>8} {:>10.2} {:>9} {:>9}",
                report.policy,
                report.cluster_steps,
                report.tokens_per_second(clock_hz),
                report.steals,
                report.load_imbalance(),
                report.preemptions(),
                report.total_prefix_hit_tokens()
            );
        }
        return Ok(());
    }

    let policy: PolicyKind = policy_flag.parse()?;
    let (trace, report, clock_hz) = serve_run(opts, policy)?;
    let token_picker::accel::RunReport::Cluster(report) = report else {
        unreachable!("shards > 1 runs a cluster");
    };
    if let Some(kind) = opts.scenario {
        println!("scenario {} (seed {})", kind.name(), opts.scenario_seed);
    }
    println!(
        "mode {:?}, policy {}, routing {}{}: {} shards on {} thread{}, {} requests, {} tokens in {} steps",
        opts.mode,
        report.policy,
        report.routing,
        if report.stealing { " + stealing" } else { "" },
        report.shards.len(),
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        report.requests().count(),
        report.tokens_generated(),
        report.cluster_steps
    );
    println!("makespan       : {} cycles (modeled)", report.total_cycles);
    println!(
        "wall clock     : {:.1} ms (measured, {} thread{})",
        report.wall_seconds * 1e3,
        report.threads,
        if report.threads == 1 { "" } else { "s" }
    );
    println!(
        "throughput     : {:.1} tokens/s",
        report.tokens_per_second(clock_hz)
    );
    println!("steals         : {}", report.steals);
    if opts.ship_cost > 0.0 {
        println!(
            "page shipping  : {} running migrations, {} transfer cycles",
            report.ships,
            report.total_ship_cycles()
        );
    }
    if opts.host_pages > 0 {
        println!(
            "host swap      : {} copy-back cycles ({} host pages per shard)",
            report.total_swap_cycles(),
            opts.host_pages
        );
    }
    if opts.slo_reject {
        println!(
            "rejections     : {} expired-TTFT requests",
            report.rejections()
        );
    }
    println!("load imbalance : {:.2}", report.load_imbalance());
    println!("preemptions    : {}", report.preemptions());
    println!(
        "prefix cache   : {} prompt tokens served, {:.0}% hit rate",
        report.total_prefix_hit_tokens(),
        100.0 * report.prefix_hit_rate()
    );
    if report.requests().any(|(_, r)| r.has_deadline()) {
        println!(
            "SLO            : {:.0}% deadline attainment, {:.1} good tokens/s ({} good tokens)",
            100.0 * report.deadline_attainment(),
            report.goodput_tokens_per_second(clock_hz),
            report.total_good_tokens()
        );
        println!(
            "TTFT p99       : {} steps (pooled across shards)",
            report.ttft_p99_steps()
        );
    }
    println!(
        "{:>6} {:>9} {:>8} {:>12} {:>11} {:>9}",
        "shard", "requests", "tokens", "busy cycles", "mean TTFT", "KV hits"
    );
    for (i, shard) in report.shards.iter().enumerate() {
        println!(
            "{:>6} {:>9} {:>8} {:>12} {:>11.2} {:>9}",
            i,
            shard.requests.len(),
            shard.tokens_generated,
            shard.total_cycles,
            shard.mean_ttft_steps(),
            shard.total_prefix_hit_tokens()
        );
    }
    save_trace(&trace, opts.record.as_deref())?;
    Ok(())
}

/// `topick trace diff A B`: loads two trace files and localizes the first
/// diverging event (exit status 1 when the schedules differ, like `diff`).
fn cmd_trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use token_picker::accel::Trace;

    match args.first().map(String::as_str) {
        Some("diff") => {
            let (Some(path_a), Some(path_b)) = (args.get(1), args.get(2)) else {
                return Err("usage: topick trace diff <A> <B>".into());
            };
            let a = Trace::load(path_a)?;
            let b = Trace::load(path_b)?;
            println!(
                "A: {path_a} ({} requests, {} events, digest {:#018x})",
                a.requests.len(),
                a.events.len(),
                a.digest
            );
            println!(
                "B: {path_b} ({} requests, {} events, digest {:#018x})",
                b.requests.len(),
                b.events.len(),
                b.digest
            );
            match a.diff(&b) {
                None => {
                    println!("schedules identical");
                    Ok(())
                }
                Some(report) => {
                    print!("{report}");
                    Err("schedules diverge".into())
                }
            }
        }
        _ => Err("usage: topick trace diff <A> <B>".into()),
    }
}

fn usage() {
    println!("topick — Token-Picker (DAC 2024) reproduction driver");
    println!();
    println!("commands:");
    println!("  prune    run the progressive pruner on one synthetic instance");
    println!("           [--context N] [--dim D] [--threshold T] [--seed S]");
    println!("  sweep    threshold sweep on one instance");
    println!("           [--context N] [--dim D] [--seed S]");
    println!("  accel    cycle-level accelerator comparison");
    println!("           [--context N] [--threshold T] [--seed S]");
    println!("  traffic  Fig. 2-style memory traffic breakdown");
    println!("           [--model NAME] [--context N]");
    println!("  serve    continuous-batching serving engine");
    println!("           [--requests N] [--batch B] [--threshold T] [--seed S] [--baseline]");
    println!("           [--policy fifo|priority|sjf|fair|slo|all] [--preemption]");
    println!("           [--page-size P] [--retention none|<pages>|<fraction>]");
    println!("           [--prefix-cache] [--prefill-factor F] [--prefill-chunk PAGES]");
    println!("           [--slo-ttft STEPS] [--slo-itl STEPS] [--slo-reject]");
    println!("           [--host-pages N] [--swap-cost F] [--ship-cost F]");
    println!("           [--shards N] [--routing rr|least|affinity] [--stealing] [--threads N]");
    println!("           [--scenario NAME [--scenario-seed S]] [--list-scenarios]");
    println!("           [--record PATH | --replay PATH]");
    println!("           [--real-tokens]  serve real synth-model tokens from the paged KV store");
    println!("  trace    trace-file tooling");
    println!("           diff <A> <B>   localize the first diverging event of two traces");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    let result = match cmd {
        "prune" => cmd_prune(&flags),
        "sweep" => cmd_sweep(&flags),
        "accel" => cmd_accel(&flags),
        "traffic" => cmd_traffic(&flags),
        "serve" => cmd_serve(&flags),
        "trace" => cmd_trace(&args[1..]),
        _ => {
            usage();
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
