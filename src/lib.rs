//! Facade crate re-exporting the Token-Picker reproduction workspace.
pub use topick_accel as accel;
pub use topick_core as core;
pub use topick_dram as dram;
pub use topick_energy as energy;
pub use topick_model as model;
pub use topick_spatten as spatten;
