//! Batched serving economics: why KV-cache traffic dominates at large batch
//! sizes (paper §2.2.1 / Fig. 2), what Token-Picker's reduction buys, and
//! how the serving engine's scheduler policies shape latency under a
//! skewed multi-tenant workload.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use token_picker::accel::{
    AccelConfig, AccelMode, PolicyKind, RetentionPolicy, RoutingKind, ServeEvent, ServingEngine,
};
use token_picker::core::{PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector};
use token_picker::model::{InstanceSampler, ModelSpec, TrafficBreakdown};

/// Serves the canonical skewed workload (four long "elephants" from one
/// client, twelve short high-priority "mice" from three others) under one
/// policy.
fn serve_skewed(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
) -> Result<token_picker::accel::ServingReport, Box<dyn std::error::Error>> {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(policy);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    for r in skewed_elephant_mice(4, 12) {
        engine.enqueue(r)?;
    }
    let report = engine.run_to_completion(4096)?;

    // The event stream narrates scheduling decisions per token; show the
    // preemptions, the part a final report can't reconstruct.
    for e in engine.events() {
        if let ServeEvent::Preempted {
            id,
            step,
            generated,
            retained_tokens,
            dropped_tokens,
        } = e
        {
            println!(
                "    [{}] step {step}: request {id} evicted after {generated} token(s) \
                 (KV kept {retained_tokens}, dropped {dropped_tokens})",
                report.policy
            );
        }
    }
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::opt_6_7b();
    let context = 2048;

    // Measure Token-Picker's KV reduction on this shape once.
    let pc = PrecisionConfig::paper();
    let dim = spec.head_dim();
    let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3)?);
    let sampler = InstanceSampler::realistic(context, dim);
    let mut agg = token_picker::core::PruneStats::new(0, pc.num_chunks());
    for i in 0..8 {
        let inst = sampler.sample(i);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc)?;
        agg.merge(&pruner.run(&q, &keys)?.stats);
    }
    let kv_reduction = agg.total_reduction(dim, &pc);
    println!(
        "{} @ context {}: measured KV access reduction {:.2}x\n",
        spec.name, context, kv_reduction
    );

    println!(
        "{:>5}  {:>9} {:>9}  {:>10} {:>10}  {:>8}",
        "batch", "KV share", "KV GB", "total GB", "pruned GB", "saved"
    );
    for batch in [1usize, 4, 16, 64, 128] {
        let t = TrafficBreakdown::compute(&spec, batch, context);
        let total_gb = t.total() as f64 / 1e9;
        let kv_gb = t.kv_bytes as f64 / 1e9;
        let pruned_total_gb = total_gb - kv_gb + kv_gb / kv_reduction;
        println!(
            "{:>5}  {:>8.1}% {:>9.2}  {:>10.2} {:>10.2}  {:>7.1}%",
            batch,
            100.0 * t.kv_fraction(),
            kv_gb,
            total_gb,
            pruned_total_gb,
            100.0 * (1.0 - pruned_total_gb / total_gb),
        );
    }
    println!();
    println!("(per generation step; the bigger the batch, the more Token-Picker saves)");

    // Part two: the same KV budget, four scheduling answers. Elephants
    // hog the batch; policies differ in what the mice experience. The
    // last column pairs show what preemption really costs — and what
    // paged KV retention (keep half the victim's pages, re-prefill only
    // the dropped suffix) claws back.
    println!();
    println!("scheduler policies on a skewed workload (4 elephants + 12 mice):");
    println!(
        "{:<26} {:>6} {:>11} {:>10} {:>9} {:>11} {:>9}",
        "policy", "steps", "tokens/s", "mean TTFT", "preempts", "reprefill", "KV kept"
    );
    for (policy, preemption, retention) in [
        (PolicyKind::Fifo, false, RetentionPolicy::None),
        (PolicyKind::ShortestJobFirst, false, RetentionPolicy::None),
        (PolicyKind::FairRoundRobin, true, RetentionPolicy::None),
        (PolicyKind::PriorityAging, true, RetentionPolicy::None),
        (
            PolicyKind::PriorityAging,
            true,
            RetentionPolicy::Fraction(0.5),
        ),
        (
            PolicyKind::ShortestJobFirst,
            true,
            RetentionPolicy::Fraction(0.5),
        ),
    ] {
        let report = serve_skewed(policy, preemption, retention)?;
        let label = match (preemption, retention) {
            (false, _) => report.policy.clone(),
            (true, RetentionPolicy::None) => format!("{}+preempt", report.policy),
            (true, _) => format!("{}+retain", report.policy),
        };
        println!(
            "{:<26} {:>6} {:>11.1} {:>10.2} {:>9} {:>11} {:>9}",
            label,
            report.steps.len(),
            report.tokens_per_second(500e6),
            report.mean_ttft_steps(),
            report.preemptions,
            report.total_reprefill_cycles(),
            report.total_retained_tokens(),
        );
    }
    println!();
    println!("(preemption trades elephant re-prefill cycles for mouse latency;");
    println!(" paged retention keeps KV prefixes so evictions re-prefill less)");

    // Part three: prefix caching. Four tenants' requests share their
    // system prompts; with the cache on, shared prompt pages are adopted
    // copy-on-write and only the unique suffix is prefilled.
    println!();
    println!("prefix caching on the shared-prefix chat workload (4 tenants x 6 requests):");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>10} {:>9}",
        "prefix cache", "steps", "cycles", "prefill", "KV hits", "hit rate"
    );
    for prefix_cache in [false, true] {
        let report = serve_shared_prefix(prefix_cache)?;
        println!(
            "{:<14} {:>6} {:>12} {:>12} {:>10} {:>8.0}%",
            if prefix_cache { "on" } else { "off" },
            report.steps.len(),
            report.total_cycles,
            report.total_prefill_cycles(),
            report.total_prefix_hit_tokens(),
            100.0 * report.prefix_hit_rate(),
        );
    }
    println!();
    println!("(same tokens out either way; the cache pays the prompt prefill once");
    println!(" per tenant instead of once per request)");

    // Part four: sharding. The same shared-prefix workload across 1, 2
    // and 4 engines: throughput is measured over the parallel makespan,
    // and because each shard's prefix cache is independent, the routing
    // policy decides whether the cluster keeps the cache hit rate
    // (affinity) or scatters it (round-robin).
    println!();
    println!("multi-engine sharding on the shared-prefix chat workload:");
    println!(
        "{:<28} {:>6} {:>11} {:>8} {:>10} {:>9}",
        "shards x routing", "steps", "tokens/s", "steals", "imbalance", "hit rate"
    );
    for (shards, routing, stealing) in [
        (1, RoutingKind::RoundRobin, false),
        (2, RoutingKind::RoundRobin, false),
        (2, RoutingKind::LeastLoaded, true),
        (2, RoutingKind::PrefixAffinity, false),
        (4, RoutingKind::RoundRobin, false),
        (4, RoutingKind::LeastLoaded, true),
        (4, RoutingKind::PrefixAffinity, false),
    ] {
        let report = serve_sharded(shards, routing, stealing)?;
        let label = format!(
            "{}x {}{}",
            shards,
            report.routing,
            if stealing { "+steal" } else { "" }
        );
        println!(
            "{:<28} {:>6} {:>11.1} {:>8} {:>10.2} {:>8.0}%",
            label,
            report.cluster_steps,
            report.tokens_per_second(500e6),
            report.steals,
            report.load_imbalance(),
            100.0 * report.prefix_hit_rate(),
        );
    }
    println!();
    println!("(tokens/s is over the parallel makespan — the busiest shard per step;");
    println!(" affinity routing keeps each tenant on one shard, so the independent");
    println!(" per-shard caches still see every repeat of their prompts)");
    Ok(())
}

/// Serves the shared-prefix chat workload on a cluster of identically
/// configured shards under one routing policy.
fn serve_sharded(
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
) -> Result<token_picker::accel::ClusterReport, Box<dyn std::error::Error>> {
    use token_picker::accel::serve::workloads::{shared_prefix_chat, shared_prefix_cluster};

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
    let mut cluster = shared_prefix_cluster(accel, true)
        .shards(shards)
        .routing(routing)
        .stealing(stealing)
        .build();
    for r in shared_prefix_chat(11, 4, 6) {
        cluster.enqueue(r)?;
    }
    Ok(cluster.run_to_completion(4096)?)
}

/// Serves the shared-prefix chat workload with prompt prefill priced,
/// toggling only the prefix cache.
fn serve_shared_prefix(
    prefix_cache: bool,
) -> Result<token_picker::accel::ServingReport, Box<dyn std::error::Error>> {
    use token_picker::accel::serve::workloads::{shared_prefix_chat, shared_prefix_engine};

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
    let mut engine = shared_prefix_engine(accel, prefix_cache).build();
    for r in shared_prefix_chat(11, 4, 6) {
        engine.enqueue(r)?;
    }
    Ok(engine.run_to_completion(4096)?)
}
