//! Batched serving economics: why KV-cache traffic dominates at large batch
//! sizes (paper §2.2.1 / Fig. 2) and what Token-Picker's reduction buys.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use token_picker::core::{PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector};
use token_picker::model::{InstanceSampler, ModelSpec, TrafficBreakdown};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::opt_6_7b();
    let context = 2048;

    // Measure Token-Picker's KV reduction on this shape once.
    let pc = PrecisionConfig::paper();
    let dim = spec.head_dim();
    let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3)?);
    let sampler = InstanceSampler::realistic(context, dim);
    let mut agg = token_picker::core::PruneStats::new(0, pc.num_chunks());
    for i in 0..8 {
        let inst = sampler.sample(i);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc)?;
        agg.merge(&pruner.run(&q, &keys)?.stats);
    }
    let kv_reduction = agg.total_reduction(dim, &pc);
    println!(
        "{} @ context {}: measured KV access reduction {:.2}x\n",
        spec.name, context, kv_reduction
    );

    println!(
        "{:>5}  {:>9} {:>9}  {:>10} {:>10}  {:>8}",
        "batch", "KV share", "KV GB", "total GB", "pruned GB", "saved"
    );
    for batch in [1usize, 4, 16, 64, 128] {
        let t = TrafficBreakdown::compute(&spec, batch, context);
        let total_gb = t.total() as f64 / 1e9;
        let kv_gb = t.kv_bytes as f64 / 1e9;
        let pruned_total_gb = total_gb - kv_gb + kv_gb / kv_reduction;
        println!(
            "{:>5}  {:>8.1}% {:>9.2}  {:>10.2} {:>10.2}  {:>7.1}%",
            batch,
            100.0 * t.kv_fraction(),
            kv_gb,
            total_gb,
            pruned_total_gb,
            100.0 * (1.0 - pruned_total_gb / total_gb),
        );
    }
    println!();
    println!("(per generation step; the bigger the batch, the more Token-Picker saves)");
    Ok(())
}
