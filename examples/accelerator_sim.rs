//! Cycle-level accelerator comparison: run the same attention step on the
//! baseline accelerator and on ToPick, and compare cycles, DRAM traffic and
//! energy.
//!
//! ```sh
//! cargo run --release --example accelerator_sim
//! ```

use token_picker::accel::{AccelConfig, AccelMode, ToPickAccelerator};
use token_picker::core::{PrecisionConfig, QMatrix, QVector};
use token_picker::model::{InstanceSampler, SynthInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let context = 1024;
    let dim = 64;
    let pc = PrecisionConfig::paper();
    let instance: SynthInstance = InstanceSampler::realistic(context, dim).sample(3);
    let query = QVector::quantize(&instance.query, pc);
    let keys = QMatrix::quantize_flat(instance.keys().data(), dim, pc)?;

    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "mode", "cycles", "kept", "DRAM MB", "energy uJ", "vs baseline"
    );
    let mut baseline_cycles = 0u64;
    for (name, mode, thr) in [
        ("Baseline", AccelMode::Baseline, 0.5),
        ("EstimateOnly", AccelMode::EstimateOnly, 1e-3),
        ("ToPick (OoO)", AccelMode::OutOfOrder, 1e-3),
        ("ToPick-0.3", AccelMode::OutOfOrder, 4e-3),
        ("Blocking", AccelMode::Blocking, 1e-3),
    ] {
        let accel = ToPickAccelerator::new(AccelConfig::paper(mode, thr)?);
        let r = accel.run_attention(&query, &keys, instance.values())?;
        if name == "Baseline" {
            baseline_cycles = r.cycles;
        }
        println!(
            "{:<14} {:>8} {:>8} {:>10.3} {:>12.2} {:>11.2}x",
            name,
            r.cycles,
            r.kept.len(),
            r.dram_stats.bytes(&accel.config().dram) as f64 / 1e6,
            r.energy.total_pj() / 1e6,
            baseline_cycles as f64 / r.cycles as f64,
        );
    }
    println!();
    println!("(out-of-order hides on-demand DRAM latency; blocking shows what happens without it)");
    Ok(())
}
