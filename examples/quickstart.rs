//! Quickstart: prune attention tokens with conservative probability
//! estimation and check what it saved.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use token_picker::core::{
    exact_probabilities, weighted_value_sum, PrecisionConfig, ProgressivePruner, PrunerConfig,
    QMatrix, QVector,
};
use token_picker::model::{SynthInstance, SynthProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic attention instance: 512 cached tokens, 64-dim head,
    // locality toward recent tokens and the first token.
    let profile = SynthProfile::realistic(512, 64);
    let instance = SynthInstance::generate(&profile, 42);

    // Quantize to the paper's 12-bit / three 4-bit-chunk format.
    let pc = PrecisionConfig::paper();
    let query = QVector::quantize(&instance.query, pc);
    let keys = QMatrix::quantize_flat(instance.keys().data(), instance.dim(), pc)?;

    // Prune tokens whose probability upper bound falls below 1e-3.
    let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3)?);
    let outcome = pruner.run(&query, &keys)?;

    let stats = &outcome.stats;
    println!("context tokens : {}", stats.tokens);
    println!("tokens kept    : {}", stats.kept);
    println!(
        "chunk fetches  : {:?} (of {} per chunk)",
        stats.chunk_fetches, stats.tokens
    );
    println!("V reduction    : {:.1}x", stats.v_reduction());
    println!("K reduction    : {:.2}x", stats.k_reduction(64, &pc));
    println!("total reduction: {:.2}x", stats.total_reduction(64, &pc));

    // Safety check: every truly dominant token survived.
    let exact = exact_probabilities(&query, &keys);
    let dominant = exact.iter().filter(|&&p| p > 1e-3).count();
    let kept: std::collections::HashSet<usize> = outcome.kept.iter().map(|k| k.index).collect();
    let retained = exact
        .iter()
        .enumerate()
        .filter(|(t, &p)| p > 1e-3 && kept.contains(t))
        .count();
    println!("dominant tokens retained: {retained}/{dominant}");

    // The attention output over survivors.
    let output = weighted_value_sum(&outcome.probability_pairs(), instance.values());
    println!("output[0..4]   : {:?}", &output[..4]);
    Ok(())
}
