//! Chatbot-style text generation with pruned attention — the workload the
//! paper's introduction motivates.
//!
//! Generates a continuation twice (exact attention vs Token-Picker) and
//! reports whether outputs diverge and how much KV traffic was avoided.
//!
//! ```sh
//! cargo run --release --example chatbot_generation
//! ```

use token_picker::core::{PrecisionConfig, PrunerConfig};
use token_picker::model::{
    AttentionBackend, ExactAttention, ModelSpec, TokenPickerAttention, TransformerModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A laptop-scale model with GPT-2 family character.
    let spec = ModelSpec {
        name: "Chatbot-Mini",
        d_model: 128,
        n_layers: 4,
        n_heads: 8,
        d_ff: 256,
        vocab: 512,
        max_context: 256,
        gated_ffn: false,
    };
    let model = TransformerModel::new_random(spec, 7);

    let prompt: Vec<usize> = vec![12, 87, 3, 101, 55, 9, 200, 41]; // "What is your job?"
    let steps = 48;

    // Temperature sampling with a fixed seed: identical outputs unless
    // pruning perturbs the logits enough to flip a sample.
    let mut exact = ExactAttention::new();
    let reply_exact = model.generate(&prompt, steps, 0.8, 0, &mut exact);

    let mut pruned = TokenPickerAttention::new(PrunerConfig::new(1e-4)?);
    let reply_pruned = model.generate(&prompt, steps, 0.8, 0, &mut pruned);

    let matching = reply_exact
        .iter()
        .zip(&reply_pruned)
        .take_while(|(a, b)| a == b)
        .count();
    println!("generated {steps} tokens");
    println!("exact  : {:?}...", &reply_exact[..8.min(reply_exact.len())]);
    println!(
        "pruned : {:?}...",
        &reply_pruned[..8.min(reply_pruned.len())]
    );
    println!("tokens identical before first divergence: {matching}/{steps}");

    let stats = pruned
        .accumulated_stats()
        .expect("token-picker tracks statistics");
    let pc = PrecisionConfig::paper();
    let head_dim = 16;
    println!();
    println!("across all layers/heads/steps of the pruned run:");
    println!("  attention token evaluations: {}", stats.tokens);
    println!("  kept (V rows fetched)      : {}", stats.kept);
    println!("  V access reduction         : {:.1}x", stats.v_reduction());
    println!(
        "  K access reduction         : {:.2}x",
        stats.k_reduction(head_dim, &pc)
    );
    println!(
        "  total KV access reduction  : {:.2}x",
        stats.total_reduction(head_dim, &pc)
    );
    println!();
    println!(
        "note: this model has random (untrained) weights, so its attention is \
         far less concentrated than a trained LLM's; see the quickstart and \
         accelerator_sim examples for realistic-distribution workloads."
    );
    Ok(())
}
