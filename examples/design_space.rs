//! Design-space exploration: how the ToPick speedup responds to the
//! architectural knobs — PE lane count, scoreboard depth, DRAM channels —
//! using the generation-phase simulator.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use token_picker::accel::{AccelConfig, AccelMode, GenerationConfig, GenerationSimulator};
use token_picker::core::{PrecisionConfig, QMatrix, QVector};
use token_picker::model::{InstanceSampler, SynthInstance};

fn factory(seed: u64) -> impl FnMut(usize, usize, usize) -> (QVector, QMatrix, Vec<f32>) {
    move |step, head, ctx| {
        let pc = PrecisionConfig::paper();
        let inst: SynthInstance =
            InstanceSampler::realistic(ctx, 64).sample(seed + step as u64 * 101 + head as u64);
        (
            QVector::quantize(&inst.query, pc),
            QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty"),
            inst.into_values(),
        )
    }
}

fn run_with(mutate: impl FnOnce(&mut AccelConfig)) -> Result<u64, Box<dyn std::error::Error>> {
    let mut accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
    mutate(&mut accel);
    let cfg = GenerationConfig {
        accel,
        prompt_len: 512,
        steps: 2,
        heads: 2,
        model_kv_writes: true,
    };
    Ok(GenerationSimulator::new(cfg).run(factory(11))?.cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("knob sweeps (total cycles for a 2-step, 2-head run at context 512)\n");

    println!("PE lanes:");
    for lanes in [4usize, 8, 16, 32] {
        let cycles = run_with(|c| c.lanes = lanes)?;
        println!("  {lanes:>3} lanes      -> {cycles:>7} cycles");
    }

    println!("scoreboard entries per lane:");
    for sb in [1usize, 4, 8, 32] {
        let cycles = run_with(|c| c.scoreboard_entries = sb)?;
        println!("  {sb:>3} entries    -> {cycles:>7} cycles");
    }

    println!("DRAM channels:");
    for ch in [2usize, 4, 8] {
        let cycles = run_with(|c| c.dram.channels = ch)?;
        println!("  {ch:>3} channels   -> {cycles:>7} cycles");
    }

    println!();
    println!("(the paper's 16 lanes saturate 8 HBM2 channels; fewer channels starve the lanes)");
    Ok(())
}
