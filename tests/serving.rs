//! Workspace integration tests of the continuous-batching serving engine:
//! a 16-request mixed-context workload must complete under both
//! accelerator modes, conserve its token accounting, price bigger batches
//! higher, run measurably faster under Token-Picker pruning — and, after
//! the scheduler redesign, the `Fifo` policy must reproduce the
//! pre-refactor engine's schedule bit for bit while preemption-enabled
//! policies bend the latency profile on skewed workloads.

use std::collections::BTreeSet;

use token_picker::accel::serve::trace::run_recorded;
use token_picker::accel::{
    AccelConfig, AccelMode, AdmissionConfig, ClusterEngine, ClusterEvent, ClusterReport,
    PolicyKind, PreemptionConfig, RetentionPolicy, RoutingKind, RunReport, ScenarioKind,
    ServeEvent, ServingConfig, ServingEngine, ServingReport, ServingRequest, TraceMeta,
    TraceReplay,
};

fn mixed_workload() -> Vec<ServingRequest> {
    // 16 requests with heterogeneous prompts (128..=464 tokens) and
    // targets (2..=6 new tokens) — contexts in one batch intentionally
    // disagree, and they are long enough for attention (not weight
    // streaming) to be a visible share of each step, the regime the paper
    // evaluates.
    (0..16u64)
        .map(|id| ServingRequest::new(id, 128 + (id as usize % 8) * 48, 2 + (id as usize % 5)))
        .collect()
}

fn serving_config(mode: AccelMode, threshold: f64) -> ServingConfig {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission = AdmissionConfig {
        max_batch: 6,
        max_batch_tokens: 4096,
        page_size: 16,
        prefix_cache: false,
    };
    cfg.seed = 7;
    cfg
}

fn serve(mode: AccelMode, threshold: f64) -> token_picker::accel::ServingReport {
    let mut engine = ServingEngine::new(serving_config(mode, threshold));
    for r in mixed_workload() {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(256).expect("workload completes")
}

#[test]
fn sixteen_request_workload_completes_with_conservation() {
    let report = serve(AccelMode::OutOfOrder, 1e-3);
    let workload = mixed_workload();

    // Conservation: every request finished, generating exactly its target.
    assert_eq!(report.requests.len(), workload.len());
    let expected: usize = workload.iter().map(|r| r.max_new_tokens).sum();
    assert_eq!(report.tokens_generated, expected);
    for req in &workload {
        let stats = report
            .requests
            .iter()
            .find(|s| s.id == req.id)
            .expect("request finished");
        assert_eq!(stats.generated, req.max_new_tokens, "request {}", req.id);
        assert!(stats.admitted_at.is_some());
        assert!(stats.finished_at.unwrap() >= stats.admitted_at.unwrap());
        assert!(stats.attention_cycles > 0);
    }

    // Admission control held at every step.
    for step in &report.steps {
        assert!(step.batch <= 6, "batch {} exceeds limit", step.batch);
        assert!(step.context_tokens <= 4096);
    }

    // Continuous batching actually batched: some step decoded multiple
    // requests concurrently.
    assert!(report.steps.iter().any(|s| s.batch > 1));

    // Cycle accounting is closed: steps sum to the total.
    let sum: u64 = report.steps.iter().map(|s| s.total_cycles()).sum();
    assert_eq!(sum, report.total_cycles);
}

/// Golden schedule of the pre-refactor (PR 1) engine on the 16-request
/// mixed workload above, captured before the scheduler redesign:
/// `(batch, context_tokens, weight_cycles, attention_cycles)` per step.
const GOLDEN_STEPS: [(usize, usize, u64, u64); 13] = [
    (6, 1488, 19532, 1768),
    (6, 1494, 19532, 1796),
    (6, 1880, 19532, 1972),
    (6, 1835, 19532, 1968),
    (6, 1789, 19532, 1964),
    (6, 1595, 19532, 1872),
    (6, 1495, 19532, 1604),
    (6, 1691, 19532, 1916),
    (5, 1753, 19532, 1896),
    (5, 1758, 19532, 1884),
    (2, 791, 19532, 828),
    (1, 420, 19532, 448),
    (1, 421, 19532, 420),
];

/// Golden per-request lifecycle, in completion order:
/// `(id, prompt_len, generated, admitted_at, finished_at, attention_cycles)`.
const GOLDEN_REQUESTS: [(u64, usize, usize, usize, usize, u64); 16] = [
    (0, 128, 2, 0, 1, 440),
    (5, 368, 2, 0, 1, 724),
    (1, 176, 3, 0, 2, 744),
    (2, 224, 4, 0, 3, 1104),
    (3, 272, 5, 0, 4, 1508),
    (6, 416, 3, 2, 4, 1264),
    (4, 320, 6, 0, 5, 2060),
    (7, 464, 4, 2, 5, 1804),
    (10, 224, 2, 5, 6, 584),
    (8, 128, 5, 3, 7, 952),
    (11, 272, 3, 5, 7, 844),
    (9, 176, 6, 4, 9, 1528),
    (12, 320, 4, 6, 9, 1384),
    (15, 464, 2, 8, 9, 932),
    (13, 368, 5, 6, 10, 1876),
    (14, 416, 6, 7, 12, 2588),
];

const GOLDEN_TOTAL_CYCLES: u64 = 274_252;
const GOLDEN_TOKENS: usize = 62;
const GOLDEN_PRUNE_KEPT: usize = 4959;
const GOLDEN_PRUNE_TOKENS: usize = 18_410;
const GOLDEN_CHUNK_FETCHES: [u64; 3] = [18_410, 10_129, 5795];

#[test]
fn fifo_policy_reproduces_the_pre_refactor_engine_exactly() {
    let mut engine = ServingEngine::new(serving_config(AccelMode::OutOfOrder, 1e-3));
    for r in mixed_workload() {
        engine.enqueue(r).expect("valid request");
    }
    let report = engine.run_to_completion(256).expect("workload completes");

    assert_eq!(report.policy, "fifo");
    assert_eq!(report.steps.len(), GOLDEN_STEPS.len());
    for (step, &(batch, ctx, wcyc, acyc)) in report.steps.iter().zip(&GOLDEN_STEPS) {
        assert_eq!(
            (
                step.batch,
                step.context_tokens,
                step.weight_cycles,
                step.attention_cycles
            ),
            (batch, ctx, wcyc, acyc),
            "step {} diverged from the pre-refactor schedule",
            step.index
        );
        assert_eq!(step.reprefill_cycles, 0);
    }

    assert_eq!(report.requests.len(), GOLDEN_REQUESTS.len());
    for (stats, &(id, prompt, gen, adm, fin, acyc)) in report.requests.iter().zip(&GOLDEN_REQUESTS)
    {
        assert_eq!(stats.id, id, "completion order diverged");
        assert_eq!(stats.prompt_len, prompt);
        assert_eq!(stats.generated, gen);
        assert_eq!(stats.enqueued_at, 0);
        assert_eq!(stats.admitted_at, Some(adm), "request {id}");
        assert_eq!(stats.finished_at, Some(fin), "request {id}");
        assert_eq!(stats.attention_cycles, acyc, "request {id}");
        assert_eq!(stats.preemptions, 0);
    }

    assert_eq!(report.total_cycles, GOLDEN_TOTAL_CYCLES);
    assert_eq!(report.tokens_generated, GOLDEN_TOKENS);
    assert_eq!(report.preemptions, 0);
    assert_eq!(report.prune.kept, GOLDEN_PRUNE_KEPT);
    assert_eq!(report.prune.tokens, GOLDEN_PRUNE_TOKENS);
    assert_eq!(report.prune.chunk_fetches, GOLDEN_CHUNK_FETCHES);

    // The event stream agrees with the golden per-step admitted/retired
    // sets derived from the request lifecycles.
    for step in 0..GOLDEN_STEPS.len() {
        let golden_admitted: BTreeSet<u64> = GOLDEN_REQUESTS
            .iter()
            .filter(|&&(_, _, _, adm, _, _)| adm == step)
            .map(|&(id, ..)| id)
            .collect();
        let golden_retired: BTreeSet<u64> = GOLDEN_REQUESTS
            .iter()
            .filter(|&&(_, _, _, _, fin, _)| fin == step)
            .map(|&(id, ..)| id)
            .collect();
        let admitted: BTreeSet<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Admitted { id, step: s, .. } if *s == step => Some(*id),
                _ => None,
            })
            .collect();
        let retired: BTreeSet<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Finished { id, step: s, .. } if *s == step => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(admitted, golden_admitted, "admitted set at step {step}");
        assert_eq!(retired, golden_retired, "retired set at step {step}");
    }
}

#[test]
fn step_cycles_are_monotone_in_batch_attention_work() {
    // Under the baseline (no pruning), a step's attention cycles grow with
    // the attention work it performs (total context tokens in the batch).
    // Compare the extremes, which are far apart in work.
    let report = serve(AccelMode::Baseline, 0.5);
    let min_work = report
        .steps
        .iter()
        .min_by_key(|s| s.context_tokens)
        .expect("steps exist");
    let max_work = report
        .steps
        .iter()
        .max_by_key(|s| s.context_tokens)
        .expect("steps exist");
    assert!(
        max_work.context_tokens > min_work.context_tokens,
        "workload produced uniform steps; test needs heterogeneous work"
    );
    assert!(
        max_work.attention_cycles > min_work.attention_cycles,
        "attention cycles not monotone: work {} -> {} cycles vs work {} -> {} cycles",
        min_work.context_tokens,
        min_work.attention_cycles,
        max_work.context_tokens,
        max_work.attention_cycles
    );

    // Weight streaming is shared per step and constant across steps.
    for w in report.steps.windows(2) {
        assert_eq!(w[0].weight_cycles, w[1].weight_cycles);
    }
}

#[test]
fn topick_serves_more_tokens_per_second_than_baseline() {
    let baseline = serve(AccelMode::Baseline, 0.5);
    let topick = serve(AccelMode::OutOfOrder, 1e-3);

    // Identical workloads (same seeds, same admission) ...
    assert_eq!(baseline.tokens_generated, topick.tokens_generated);

    // ... but pruned attention shrinks every step, so throughput rises.
    let clock_hz = 500e6;
    let base_tps = baseline.tokens_per_second(clock_hz);
    let tp_tps = topick.tokens_per_second(clock_hz);
    assert!(
        tp_tps > base_tps,
        "ToPick {tp_tps:.1} tokens/s should beat baseline {base_tps:.1} tokens/s"
    );
    assert!(topick.total_cycles < baseline.total_cycles);

    // The pruning statistics show why: most V rows were never fetched.
    assert!(topick.prune.v_reduction() > 1.5);
}

fn serve_skewed(policy: PolicyKind, preemption: bool) -> token_picker::accel::ServingReport {
    serve_skewed_with_retention(policy, preemption, RetentionPolicy::None)
}

fn serve_skewed_with_retention(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
) -> token_picker::accel::ServingReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(policy);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    for r in skewed_elephant_mice(4, 12) {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(2048).expect("workload completes")
}

#[test]
fn preemption_bends_the_latency_profile_on_a_skewed_workload() {
    let fifo = serve_skewed(PolicyKind::Fifo, false);
    let preempting = serve_skewed(PolicyKind::PriorityAging, true);

    // Same work either way.
    assert_eq!(fifo.tokens_generated, preempting.tokens_generated);
    assert_eq!(fifo.preemptions, 0);

    // Under FIFO the mice sit behind the elephants; priority-with-
    // preemption evicts elephants and serves the mice first, so mean
    // time-to-first-token drops.
    assert!(preempting.preemptions > 0, "no evictions happened");
    assert!(
        preempting.mean_ttft_steps() < fifo.mean_ttft_steps(),
        "preemption should cut mean TTFT: {} vs fifo {}",
        preempting.mean_ttft_steps(),
        fifo.mean_ttft_steps()
    );

    // Eviction is never free: the re-prefill charge makes the two runs'
    // cycle totals (and thus tokens/s) genuinely different profiles.
    let reprefill: u64 = preempting.steps.iter().map(|s| s.reprefill_cycles).sum();
    assert!(reprefill > 0);
    assert_ne!(fifo.total_cycles, preempting.total_cycles);
}

/// FNV-1a fold of every pre-prefix-caching schedule observable: per-step
/// tuples, per-request lifecycles and the report totals. New fields
/// (`prefill_cycles`, `prefix_hit_tokens`) are deliberately *excluded* and
/// asserted zero separately, so these digests are comparable with the
/// PR 3 engine they were captured from.
fn schedule_digest(report: &ServingReport) -> u64 {
    fn fnv(h: &mut u64, v: u64) {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in &report.steps {
        for v in [
            s.index as u64,
            s.batch as u64,
            s.context_tokens as u64,
            s.weight_cycles,
            s.attention_cycles,
            s.reprefill_cycles,
        ] {
            fnv(&mut h, v);
        }
    }
    for r in &report.requests {
        for v in [
            r.id,
            r.prompt_len as u64,
            r.generated as u64,
            u64::from(r.priority),
            r.client_id,
            r.enqueued_at as u64,
            r.admitted_at.map_or(u64::MAX, |s| s as u64),
            r.first_token_at.map_or(u64::MAX, |s| s as u64),
            r.finished_at.map_or(u64::MAX, |s| s as u64),
            u64::from(r.preemptions),
            r.attention_cycles,
            r.reprefill_cycles,
            r.retained_tokens as u64,
            r.reprefilled_tokens as u64,
        ] {
            fnv(&mut h, v);
        }
    }
    fnv(&mut h, report.total_cycles);
    fnv(&mut h, report.tokens_generated as u64);
    fnv(&mut h, report.preemptions as u64);
    h
}

/// Golden schedule digests of the PR 3 engine (captured before prefix
/// caching existed) on the canonical skewed workload: every policy,
/// without preemption and with preemption + 0.75-fraction paged
/// retention.
const GOLDEN_POLICY_DIGESTS: [(PolicyKind, bool, u64); 8] = [
    (PolicyKind::Fifo, false, 0xcfd8e5bfc39f65b8),
    (PolicyKind::Fifo, true, 0xcfd8e5bfc39f65b8),
    (PolicyKind::PriorityAging, false, 0xf2534e6ff39652df),
    (PolicyKind::PriorityAging, true, 0xa621ccffc353bdf4),
    (PolicyKind::ShortestJobFirst, false, 0xea6cf1fed6d69c34),
    (PolicyKind::ShortestJobFirst, true, 0xe4e6cde81d376586),
    (PolicyKind::FairRoundRobin, false, 0xb98fc934d9b2935f),
    (PolicyKind::FairRoundRobin, true, 0x03d59e4836f2e5fe),
];

#[test]
fn every_policy_reproduces_the_pre_prefix_caching_schedule_exactly() {
    for &(policy, preemption, digest) in &GOLDEN_POLICY_DIGESTS {
        let report =
            serve_skewed_with_retention(policy, preemption, RetentionPolicy::Fraction(0.75));
        // Prefix caching off and prefill unpriced: the new machinery must
        // be completely invisible...
        for s in &report.steps {
            assert_eq!(s.prefill_cycles, 0, "{policy}: prefill charged");
        }
        for r in &report.requests {
            assert_eq!(r.prefill_cycles, 0, "{policy}: prefill charged");
            assert_eq!(r.prefix_hit_tokens, 0, "{policy}: phantom cache hit");
        }
        // ...and the schedule bit-identical to the captured PR 3 run.
        assert_eq!(
            schedule_digest(&report),
            digest,
            "{policy} (preemption: {preemption}) diverged from the PR 3 schedule"
        );
    }
}

/// The canonical shared-prefix configuration: the `shared_prefix_chat`
/// workload under FIFO with prompt prefill priced, toggling only the
/// prefix cache.
fn serve_shared_prefix(prefix_cache: bool) -> ServingReport {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine =
        token_picker::accel::serve::workloads::shared_prefix_engine(accel, prefix_cache).build();
    for r in token_picker::accel::serve::workloads::shared_prefix_chat(11, 4, 6) {
        engine.enqueue(r).expect("valid request");
    }
    let report = engine.run_to_completion(4096).expect("workload completes");
    // The pager conserves pages throughout and drains to nothing mapped.
    engine.kv_pager().validate();
    assert_eq!(engine.kv_pager().allocated_pages(), 0);
    report
}

#[test]
fn prefix_caching_is_invisible_to_results_and_strictly_cheaper() {
    let off = serve_shared_prefix(false);
    let on = serve_shared_prefix(true);

    // Sharing must be invisible to results: the same tokens come out of
    // every request either way.
    assert_eq!(off.tokens_generated, on.tokens_generated);
    assert_eq!(off.requests.len(), on.requests.len());
    let on_by_id: std::collections::HashMap<u64, _> =
        on.requests.iter().map(|r| (r.id, r)).collect();
    for r_off in &off.requests {
        let r_on = on_by_id[&r_off.id];
        assert_eq!(r_off.generated, r_on.generated, "request {}", r_off.id);
        // Without preemption each request decodes at each of its contexts
        // exactly once, so its attention bill is schedule-independent.
        assert_eq!(
            r_off.attention_cycles, r_on.attention_cycles,
            "request {}",
            r_off.id
        );
        // Cached prefill never exceeds uncached: the cache can only
        // shrink the prompt share a request must prefill.
        assert!(
            r_on.prefill_cycles <= r_off.prefill_cycles,
            "request {}: cached prefill {} > uncached {}",
            r_off.id,
            r_on.prefill_cycles,
            r_off.prefill_cycles
        );
        assert_eq!(r_off.prefix_hit_tokens, 0);
    }

    // The savings are prefix-hit-consistent: hits happened, and every hit
    // token is a prompt token some request did not re-prefill.
    assert_eq!(off.total_prefix_hit_tokens(), 0);
    assert!(on.total_prefix_hit_tokens() > 0, "no prefix hits at all");
    assert!(
        on.prefix_hit_rate() > 0.3,
        "hit rate {}",
        on.prefix_hit_rate()
    );
    assert!(on.total_prefill_cycles() < off.total_prefill_cycles());
    assert_eq!(off.preemptions, 0);
    assert_eq!(on.preemptions, 0);
}

#[test]
fn prefix_caching_cuts_prefill_cycles_by_at_least_thirty_percent() {
    let off = serve_shared_prefix(false);
    let on = serve_shared_prefix(true);
    assert_eq!(off.tokens_generated, on.tokens_generated, "unequal work");
    let bill_off = off.total_prefill_cycles() + off.total_reprefill_cycles();
    let bill_on = on.total_prefill_cycles() + on.total_reprefill_cycles();
    assert!(bill_off > 0, "workload must actually prefill");
    let saved = 1.0 - bill_on as f64 / bill_off as f64;
    assert!(
        saved >= 0.30,
        "prefix caching saved only {:.1}% of the prefill bill ({} -> {} cycles)",
        saved * 100.0,
        bill_off,
        bill_on
    );
}

#[test]
fn admission_events_report_cached_tokens() {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(4)
        .max_batch_tokens(1600)
        .prefix_cache(true)
        .build();
    // Two requests sharing a 64-token (4-page) prefix; the second adopts
    // all four shared pages.
    engine
        .enqueue(ServingRequest::new(0, 80, 2).with_shared_prefix(9, 64))
        .expect("valid");
    engine
        .enqueue(ServingRequest::new(1, 96, 2).with_shared_prefix(9, 64))
        .expect("valid");
    engine.run_to_completion(16).expect("completes");
    let cached: Vec<(u64, usize)> = engine
        .events()
        .iter()
        .filter_map(|e| match e {
            ServeEvent::Admitted {
                id, cached_tokens, ..
            } => Some((*id, *cached_tokens)),
            _ => None,
        })
        .collect();
    assert_eq!(cached, vec![(0, 0), (1, 64)]);
    let hit = engine
        .report()
        .requests
        .iter()
        .find(|r| r.id == 1)
        .unwrap()
        .prefix_hit_tokens;
    assert_eq!(hit, 64);
}

#[test]
fn reclaim_never_strips_shared_retained_pages_for_no_gain() {
    // A and B share a 64-token (4-page) prompt prefix; B is preempted
    // with those shared pages retained while A keeps running. A later
    // page-starved candidate must NOT reclaim B's retained pages: they
    // are shared with A, so dropping B's mappings frees no capacity and
    // would only charge B re-prefill debt for nothing.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(3)
        .max_batch_tokens(192) // 12 pages of 16 tokens
        .page_size(16)
        .prefix_cache(true)
        .policy(PolicyKind::PriorityAging)
        .preemption(
            token_picker::accel::PreemptionConfig::enabled()
                .with_retention(RetentionPolicy::Fraction(0.8)),
        )
        .build();
    engine
        .enqueue(
            ServingRequest::new(0, 64, 8)
                .with_priority(5)
                .with_shared_prefix(1, 64),
        )
        .expect("valid");
    engine
        .enqueue(
            ServingRequest::new(1, 64, 4)
                .with_priority(1)
                .with_shared_prefix(1, 64),
        )
        .expect("valid");
    engine.step().expect("step").expect("report"); // A and B run
                                                   // C needs 7 pages with 6 free: evicts B (lowest priority), which
                                                   // retains its 4 shared prompt pages in the queue.
    engine
        .enqueue(ServingRequest::new(2, 96, 8).with_priority(9))
        .expect("valid");
    engine.step().expect("step").expect("report");
    // D needs 6 pages with 0 free and a slot available: the reclaim path
    // runs, finds only B's shared retained pages, and must leave them
    // alone — dropping B's mappings would free nothing (A still maps the
    // same pages) while charging B re-prefill debt.
    engine
        .enqueue(ServingRequest::new(3, 80, 4).with_priority(9))
        .expect("valid");
    engine.step().expect("step").expect("report");
    // A (5 pages), C (7) and queued B (4, all shared with A) all keep
    // their mappings through D's failed reclaim pressure.
    assert_eq!(engine.kv_pager().mapped_pages(), 16, "B was stripped");
    assert_eq!(engine.kv_pager().cached_pages(), 0);
    engine.kv_pager().validate();

    let report = engine.run_to_completion(64).expect("completes");
    engine.kv_pager().validate();
    assert_eq!(report.requests.len(), 4);
    let b = report.requests.iter().find(|r| r.id == 1).expect("B done");
    assert_eq!(b.preemptions, 1, "B evicted exactly once");
    // B's first admission adopted A's whole 64-token shared prefix.
    assert_eq!(b.prefix_hit_tokens, 64);
}

#[test]
fn retention_cannot_keep_kv_that_was_never_prefilled() {
    // A is admitted and evicted within the same admission round (aging
    // lets it beat B's effective priority, raw priority lets B evict it)
    // — before its first decode step ever built any KV. Retention keeps
    // its pages, but the "retained" KV was never prefilled: the model
    // must charge the full context as re-prefill debt, or the skipped
    // prefill would be billed to no one.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(1)
        .max_batch_tokens(512)
        .page_size(16)
        .prefix_cache(true)
        .prefill_factor(1.0)
        .policy(PolicyKind::PriorityAging)
        .preemption(
            token_picker::accel::PreemptionConfig::enabled()
                .with_retention(RetentionPolicy::Fraction(0.75)),
        )
        .build();
    // C holds the only slot through step 16; A queues and ages from
    // effective priority 2 to 4.
    engine
        .enqueue(ServingRequest::new(0, 16, 17).with_priority(9))
        .expect("valid");
    engine
        .enqueue(ServingRequest::new(1, 64, 2).with_priority(2))
        .expect("valid");
    // B arrives exactly when C retires: step 17 admits A first (aged
    // effective 4 beats B's 3), then B evicts it on raw priority (3 > 2).
    engine
        .enqueue(
            ServingRequest::new(2, 16, 2)
                .with_priority(3)
                .arriving_at(17),
        )
        .expect("valid");
    let report = engine.run_to_completion(64).expect("completes");
    engine.kv_pager().validate();

    let a = report.requests.iter().find(|r| r.id == 1).expect("A done");
    assert_eq!(a.preemptions, 1, "A evicted exactly once");
    // Nothing of A's KV existed at eviction time, so nothing counts as
    // retained and the whole 64-token context is re-prefilled...
    assert_eq!(a.retained_tokens, 0);
    assert_eq!(a.reprefilled_tokens, 64);
    assert!(a.reprefill_cycles > 0);
    // ...through the re-prefill path alone; the folded prefill charge
    // must not ALSO be billed.
    assert_eq!(a.prefill_cycles, 0);
    let evicted_before_first_decode = engine.events().iter().any(|e| {
        matches!(
            e,
            ServeEvent::Preempted {
                id: 1,
                generated: 0,
                retained_tokens: 0,
                dropped_tokens: 64,
                ..
            }
        )
    });
    assert!(
        evicted_before_first_decode,
        "scenario must preempt A before its first decode"
    );
}

#[test]
fn reclaim_never_strips_pages_the_candidate_would_adopt() {
    // Queued victim B retains its 4 registered prompt pages at refcount 1.
    // A page-starved same-tenant candidate C would adopt exactly those
    // pages, so reclaiming them gains C nothing (they just move into the
    // cache C's admission arithmetic already counts) while charging B
    // re-prefill debt. The reclaim path must leave B alone.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(2)
        .max_batch_tokens(160) // 10 pages of 16 tokens
        .page_size(16)
        .prefix_cache(true)
        .policy(PolicyKind::PriorityAging)
        .preemption(
            token_picker::accel::PreemptionConfig::enabled()
                .with_retention(RetentionPolicy::Fraction(0.8)),
        )
        .build();
    // F1 (5 pages) and B (5 pages) fill the budget.
    engine
        .enqueue(ServingRequest::new(0, 48, 20).with_priority(9))
        .expect("valid");
    engine
        .enqueue(
            ServingRequest::new(1, 64, 4)
                .with_priority(1)
                .with_shared_prefix(7, 64),
        )
        .expect("valid");
    engine.step().expect("step").expect("report");
    // F2 evicts B (1-page need, slot shortage): B queues retaining its 4
    // registered prompt pages, sole holder.
    engine
        .enqueue(ServingRequest::new(2, 8, 8).with_priority(9).arriving_at(1))
        .expect("valid");
    // C shares B's prompt; its 6-page need exceeds free + its 4 adoptable
    // hits once F2 retires, so the reclaim path runs while C stays
    // head-of-line blocked until F1 retires.
    engine
        .enqueue(
            ServingRequest::new(3, 64, 24)
                .with_priority(9)
                .with_shared_prefix(7, 64)
                .arriving_at(2),
        )
        .expect("valid");
    let report = engine.run_to_completion(256).expect("completes");
    engine.kv_pager().validate();

    let b = report.requests.iter().find(|r| r.id == 1).expect("B done");
    assert_eq!(b.preemptions, 1, "B evicted exactly once");
    // B's retained prefix survived C's reclaim pressure untouched; only
    // the 1-token eviction suffix was ever re-prefilled.
    assert_eq!(b.retained_tokens, 64);
    assert_eq!(b.reprefilled_tokens, 1);
    // And C genuinely adopted B's pages at admission.
    let c = report.requests.iter().find(|r| r.id == 3).expect("C done");
    assert_eq!(c.prefix_hit_tokens, 64);
}

#[test]
fn retention_cannot_keep_kv_whose_rebuild_was_never_charged() {
    // The symmetric re-prefill case: A is evicted, re-admitted (its
    // rebuild debt still uncharged), and evicted AGAIN before the decode
    // step that would have rebuilt its KV. The second eviction must not
    // convert the outstanding 64-token debt into "retained" KV.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(1)
        .max_batch_tokens(512)
        .page_size(16)
        .prefix_cache(true)
        .prefill_factor(1.0)
        .policy(PolicyKind::PriorityAging)
        .preemption(
            token_picker::accel::PreemptionConfig::enabled()
                .with_retention(RetentionPolicy::Fraction(0.75)),
        )
        .build();
    // C occupies the slot while A ages; B evicts A the moment it is
    // first admitted (step 17, before any decode).
    engine
        .enqueue(ServingRequest::new(0, 16, 17).with_priority(9))
        .expect("valid");
    engine
        .enqueue(ServingRequest::new(1, 64, 2).with_priority(2))
        .expect("valid");
    engine
        .enqueue(
            ServingRequest::new(2, 16, 2)
                .with_priority(3)
                .arriving_at(17),
        )
        .expect("valid");
    // C2 re-occupies the slot while A ages again; D then evicts A at its
    // re-admission (step 34), again before any decode.
    engine
        .enqueue(
            ServingRequest::new(3, 16, 15)
                .with_priority(9)
                .arriving_at(18),
        )
        .expect("valid");
    engine
        .enqueue(
            ServingRequest::new(4, 16, 2)
                .with_priority(3)
                .arriving_at(34),
        )
        .expect("valid");
    let report = engine.run_to_completion(64).expect("completes");
    engine.kv_pager().validate();

    let a = report.requests.iter().find(|r| r.id == 1).expect("A done");
    assert_eq!(a.preemptions, 2, "A evicted at both admissions");
    assert_eq!(a.generated, 2);
    // Neither eviction had any built KV to retain, and the full context
    // is eventually rebuilt through the re-prefill path exactly once.
    assert_eq!(a.retained_tokens, 0);
    assert_eq!(a.reprefilled_tokens, 64);
    assert!(a.reprefill_cycles > 0);
    assert_eq!(a.prefill_cycles, 0);
}

#[test]
fn paged_retention_reprefills_strictly_less_than_full_reprefill() {
    // SRPT (shortest-job-first with preemption) on the canonical skewed
    // workload: under full re-prefill every eviction pays for the victim's
    // whole context; with paged retention only the dropped suffix is
    // rebuilt, so the total re-prefill bill must strictly shrink.
    let full =
        serve_skewed_with_retention(PolicyKind::ShortestJobFirst, true, RetentionPolicy::None);
    let paged = serve_skewed_with_retention(
        PolicyKind::ShortestJobFirst,
        true,
        RetentionPolicy::Fraction(0.75),
    );

    assert!(full.preemptions > 0, "workload must actually preempt");
    assert!(paged.preemptions > 0, "workload must actually preempt");
    assert_eq!(full.tokens_generated, paged.tokens_generated);

    // Full re-prefill retains nothing; paged retention carries real KV
    // prefixes across evictions and re-prefills fewer tokens.
    assert_eq!(full.total_retained_tokens(), 0);
    assert!(paged.total_retained_tokens() > 0);
    assert!(paged.total_reprefilled_tokens() < full.total_reprefilled_tokens());

    // The cycle charge follows the token accounting.
    assert!(
        paged.total_reprefill_cycles() < full.total_reprefill_cycles(),
        "paged retention must cut the re-prefill bill: {} vs {} cycles",
        paged.total_reprefill_cycles(),
        full.total_reprefill_cycles()
    );

    // Per-step and per-request accounting agree.
    for report in [&full, &paged] {
        let by_request: u64 = report.requests.iter().map(|r| r.reprefill_cycles).sum();
        assert_eq!(report.total_reprefill_cycles(), by_request);
    }
}

/// The canonical skewed workload served by a [`ClusterEngine`] under the
/// same per-shard configuration as [`serve_skewed_with_retention`].
fn serve_skewed_cluster(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
    threads: usize,
) -> ClusterReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ClusterEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(policy)
        .shards(shards)
        .routing(routing)
        .stealing(stealing)
        .threads(threads);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut cluster = builder.build();
    for r in skewed_elephant_mice(4, 12) {
        cluster.enqueue(r).expect("valid request");
    }
    let report = cluster.run_to_completion(2048).expect("workload completes");
    for i in 0..cluster.shard_count() {
        cluster.shard(i).kv_pager().validate();
        assert_eq!(cluster.shard(i).kv_pager().allocated_pages(), 0);
    }
    report
}

#[test]
fn one_shard_cluster_reproduces_the_bare_engine_bit_for_bit() {
    // A 1-shard cluster under round-robin routing is the identity wrapper:
    // for every scheduler policy, with and without preemption + paged
    // retention, the shard's schedule digest must equal the bare engine's
    // PR 3 golden — and that must hold with stealing on too (there is no
    // second shard to steal for).
    for &(policy, preemption, digest) in &GOLDEN_POLICY_DIGESTS {
        for stealing in [false, true] {
            let report = serve_skewed_cluster(
                policy,
                preemption,
                RetentionPolicy::Fraction(0.75),
                1,
                RoutingKind::RoundRobin,
                stealing,
                1,
            );
            assert_eq!(report.shards.len(), 1);
            assert_eq!(report.steals, 0, "{policy}: a 1-shard cluster stole");
            assert_eq!(
                schedule_digest(&report.shards[0]),
                digest,
                "{policy} (preemption: {preemption}, stealing: {stealing}) \
                 diverged from the bare engine's golden schedule"
            );
            // Cluster-level accounting degenerates to the shard's own.
            assert_eq!(report.total_cycles, report.shards[0].total_cycles);
            assert_eq!(report.cluster_steps, report.shards[0].steps.len());
            assert_eq!(report.tokens_generated(), report.shards[0].tokens_generated);
        }
    }
}

#[test]
fn four_shard_least_loaded_with_stealing_beats_one_shard_throughput() {
    // The acceptance bar: on the canonical skewed workload, four shards
    // under least-loaded routing with work stealing must finish the same
    // tokens in strictly fewer makespan cycles than a single engine.
    let single = serve_skewed_cluster(
        PolicyKind::Fifo,
        false,
        RetentionPolicy::None,
        1,
        RoutingKind::RoundRobin,
        false,
        1,
    );
    let four = serve_skewed_cluster(
        PolicyKind::Fifo,
        false,
        RetentionPolicy::None,
        4,
        RoutingKind::LeastLoaded,
        true,
        1,
    );
    assert_eq!(single.tokens_generated(), four.tokens_generated());
    assert!(
        four.total_cycles < single.total_cycles,
        "4-shard makespan {} must beat 1-shard {}",
        four.total_cycles,
        single.total_cycles
    );
    let clock_hz = 500e6;
    assert!(
        four.tokens_per_second(clock_hz) > single.tokens_per_second(clock_hz),
        "4 shards {:.1} tok/s must beat 1 shard {:.1} tok/s",
        four.tokens_per_second(clock_hz),
        single.tokens_per_second(clock_hz)
    );
    // Sharding spread the work: no shard did everything.
    assert!(four.shards.iter().all(|s| !s.requests.is_empty()));
}

/// Asserts two cluster runs produced the same schedule: per-shard
/// digests, makespan, step count and steal count all equal. Wall-clock
/// (`wall_seconds`) is deliberately *not* compared — it is the one
/// measured, run-varying field.
fn assert_same_schedule(threaded: &ClusterReport, sequential: &ClusterReport, label: &str) {
    assert_eq!(
        threaded.shards.len(),
        sequential.shards.len(),
        "{label}: shard count diverged"
    );
    for (shard, (t, s)) in threaded
        .shards
        .iter()
        .zip(sequential.shards.iter())
        .enumerate()
    {
        assert_eq!(
            schedule_digest(t),
            schedule_digest(s),
            "{label}: shard {shard} schedule diverged under threading"
        );
    }
    assert_eq!(threaded.steals, sequential.steals, "{label}: steals");
    assert_eq!(
        threaded.total_cycles, sequential.total_cycles,
        "{label}: makespan"
    );
    assert_eq!(
        threaded.cluster_steps, sequential.cluster_steps,
        "{label}: step count"
    );
    assert_eq!(
        threaded.tokens_generated(),
        sequential.tokens_generated(),
        "{label}: tokens"
    );
}

#[test]
fn threaded_cluster_is_digest_identical_to_sequential() {
    // The tentpole guarantee: stepping shards on scoped worker threads
    // changes wall-clock only, never the schedule. Sweep the full golden
    // matrix — every scheduler policy × preemption (with 0.75 paged
    // retention) × stealing on/off — on a 4-shard least-loaded cluster,
    // comparing per-shard digests between threads = 1 and threads = 4.
    // The sequential side of this comparison is itself pinned against the
    // PR 3 goldens by `one_shard_cluster_reproduces_the_bare_engine…`.
    for &(policy, preemption, _) in &GOLDEN_POLICY_DIGESTS {
        for stealing in [false, true] {
            let run = |threads: usize| {
                serve_skewed_cluster(
                    policy,
                    preemption,
                    RetentionPolicy::Fraction(0.75),
                    4,
                    RoutingKind::LeastLoaded,
                    stealing,
                    threads,
                )
            };
            let sequential = run(1);
            let threaded = run(4);
            assert_eq!(threaded.threads, 4);
            assert_same_schedule(
                &threaded,
                &sequential,
                &format!("{policy} (preemption: {preemption}, stealing: {stealing})"),
            );
        }
    }
}

#[test]
fn threaded_cluster_is_digest_identical_across_routers() {
    // Same guarantee along the routing axis: for every routing policy
    // (including prefix-affinity, whose bindings live on the coordinator
    // thread), a threaded 4-shard run under preemption + stealing matches
    // its sequential twin shard for shard. Threads beyond the shard count
    // must also change nothing — workers are capped at one slice each.
    for routing in RoutingKind::all() {
        let run = |threads: usize| {
            serve_skewed_cluster(
                PolicyKind::PriorityAging,
                true,
                RetentionPolicy::Fraction(0.75),
                4,
                routing,
                true,
                threads,
            )
        };
        let sequential = run(1);
        for threads in [2, 4, 16] {
            assert_same_schedule(
                &run(threads),
                &sequential,
                &format!("{routing} with {threads} threads"),
            );
        }
    }
}

/// The shared-prefix chat workload served by a cluster under the
/// canonical shared-prefix engine configuration (prefix cache on, prompt
/// prefill priced).
fn serve_shared_prefix_cluster(
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
) -> ClusterReport {
    use token_picker::accel::serve::workloads::{shared_prefix_chat, shared_prefix_cluster};

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cluster = shared_prefix_cluster(accel, true)
        .shards(shards)
        .routing(routing)
        .stealing(stealing)
        .build();
    for r in shared_prefix_chat(11, 4, 6) {
        cluster.enqueue(r).expect("valid request");
    }
    let report = cluster.run_to_completion(4096).expect("workload completes");
    for i in 0..cluster.shard_count() {
        cluster.shard(i).kv_pager().validate();
        assert_eq!(cluster.shard(i).kv_pager().allocated_pages(), 0);
    }
    report
}

#[test]
fn routing_policies_agree_on_results_and_affinity_recovers_the_hit_rate() {
    // Routing changes *placement*, never results: every policy must
    // generate the same tokens per request on the seeded shared-prefix
    // workload — and because shards share the engine seed, even each
    // request's attention bill is placement-independent.
    let reports: Vec<(RoutingKind, ClusterReport)> = RoutingKind::all()
        .into_iter()
        .map(|kind| (kind, serve_shared_prefix_cluster(4, kind, false)))
        .collect();
    let baseline: std::collections::HashMap<u64, (usize, u64)> = reports[0]
        .1
        .requests()
        .map(|(_, r)| (r.id, (r.generated, r.attention_cycles)))
        .collect();
    for (kind, report) in &reports {
        assert_eq!(
            report.requests().count(),
            baseline.len(),
            "{kind}: request count diverged"
        );
        for (_, r) in report.requests() {
            let &(generated, attention) = baseline.get(&r.id).expect("same request set");
            assert_eq!(r.generated, generated, "{kind}: request {} tokens", r.id);
            assert_eq!(
                r.attention_cycles, attention,
                "{kind}: request {} attention bill",
                r.id
            );
        }
    }

    // Per-shard prefix caches are independent, so round-robin scatters
    // each tenant's requests across shards and every shard re-prefills the
    // tenant prefix — while prefix-affinity keeps a tenant on one shard
    // and recovers (most of) the single-engine hit rate. Pin the margin.
    let rr = &reports[0].1;
    let affinity = &reports[2].1;
    assert_eq!(reports[0].0, RoutingKind::RoundRobin);
    assert_eq!(reports[2].0, RoutingKind::PrefixAffinity);
    assert!(
        affinity.prefix_hit_rate() >= rr.prefix_hit_rate() + 0.15,
        "affinity hit rate {:.3} must beat round-robin {:.3} by ≥ 0.15",
        affinity.prefix_hit_rate(),
        rr.prefix_hit_rate()
    );
    // And affinity's cluster prefill bill is accordingly strictly smaller.
    assert!(affinity.total_prefill_cycles() < rr.total_prefill_cycles());
}

#[test]
fn stealing_terminates_and_preserves_results_on_staggered_arrivals() {
    // Regression: the shared-prefix workload's staggered arrivals can
    // leave a donor with exactly one queued and one running request while
    // an equal-occupancy peer idles — the shape where an unbounded steal
    // loop used to ping-pong the queued request between the two shards
    // forever. Stealing must terminate and change placement only.
    let baseline = serve_shared_prefix_cluster(4, RoutingKind::RoundRobin, false);
    for kind in RoutingKind::all() {
        let stolen = serve_shared_prefix_cluster(4, kind, true);
        assert_eq!(
            stolen.tokens_generated(),
            baseline.tokens_generated(),
            "{kind}: stealing changed the work done"
        );
        assert_eq!(stolen.requests().count(), baseline.requests().count());
    }
}

// ---------------------------------------------------------------------------
// Scenario library + trace record/replay
// ---------------------------------------------------------------------------

/// Builds the trace meta for a scenario run: the scenario's canonical
/// engine shape, optionally with preemption (0.75 fractional retention)
/// and a cluster topology layered on top.
fn scenario_trace_meta(
    kind: ScenarioKind,
    seed: u64,
    policy: PolicyKind,
    preemption: bool,
    cluster: Option<(usize, RoutingKind, bool, usize)>,
) -> TraceMeta {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cfg = kind.build().serving_config(accel);
    if preemption {
        cfg.preemption =
            PreemptionConfig::enabled().with_retention(RetentionPolicy::Fraction(0.75));
    }
    let mut meta = TraceMeta::new(&cfg, policy.name()).for_scenario(kind.name(), seed);
    if let Some((shards, routing, stealing, threads)) = cluster {
        meta = meta.for_cluster(shards, routing.name(), stealing, threads);
    }
    meta
}

#[test]
fn engine_record_replay_record_is_a_fixed_point_for_every_scenario_and_policy() {
    // The tentpole correctness anchor on a bare engine: recording a run,
    // replaying the trace and recording the replay must reproduce the
    // event stream (and hence the digest) exactly — for every scenario
    // under every policy, with preemption + fractional retention on so
    // the Preempted/retained path is inside the fixed point.
    for kind in ScenarioKind::all() {
        let requests = kind.build().generate(11);
        for policy in PolicyKind::all() {
            let meta = scenario_trace_meta(kind, 11, policy, true, None);
            let (first, report_a) = run_recorded(&meta, &requests)
                .unwrap_or_else(|e| panic!("{kind}/{policy}: record failed: {e}"));
            let (second, report_b) = first
                .replay()
                .unwrap_or_else(|e| panic!("{kind}/{policy}: replay failed: {e}"));
            if let Some(diff) = first.diff(&second) {
                panic!("{kind}/{policy}: replay diverged from the recording:\n{diff}");
            }
            assert_eq!(first.digest, second.digest, "{kind}/{policy}: trace digest");
            let (RunReport::Engine(a), RunReport::Engine(b)) = (report_a, report_b) else {
                panic!("{kind}/{policy}: shards <= 1 must run a bare engine");
            };
            assert_eq!(
                schedule_digest(&a),
                schedule_digest(&b),
                "{kind}/{policy}: schedule digest"
            );
        }
    }
}

#[test]
fn cluster_record_replay_is_a_fixed_point_across_routing_stealing_and_threads() {
    // Covering array over (policy, routing, stealing, threads) at four
    // shards: every policy, every router, both stealing settings and
    // threads ∈ {1, 4} all appear, paired so no dimension hides behind a
    // fixed partner. Each scenario runs half the combos (offset by its
    // index), so every combo is still exercised by three scenarios — the
    // full cross product would quintuple the runtime without covering
    // anything these pairings miss.
    const COMBOS: [(PolicyKind, RoutingKind, bool, usize); 8] = [
        (PolicyKind::Fifo, RoutingKind::RoundRobin, false, 1),
        (PolicyKind::Fifo, RoutingKind::LeastLoaded, true, 4),
        (
            PolicyKind::PriorityAging,
            RoutingKind::LeastLoaded,
            false,
            4,
        ),
        (
            PolicyKind::PriorityAging,
            RoutingKind::PrefixAffinity,
            true,
            1,
        ),
        (
            PolicyKind::ShortestJobFirst,
            RoutingKind::PrefixAffinity,
            false,
            4,
        ),
        (
            PolicyKind::ShortestJobFirst,
            RoutingKind::RoundRobin,
            true,
            1,
        ),
        (PolicyKind::FairRoundRobin, RoutingKind::RoundRobin, true, 4),
        (
            PolicyKind::FairRoundRobin,
            RoutingKind::PrefixAffinity,
            false,
            1,
        ),
    ];
    for (i, kind) in ScenarioKind::all().iter().copied().enumerate() {
        let requests = kind.build().generate(11);
        for (j, &(policy, routing, stealing, threads)) in COMBOS.iter().enumerate() {
            if (i + j) % 2 != 0 {
                continue;
            }
            let label = format!("{kind}/{policy}/{routing} stealing={stealing} threads={threads}");
            let meta = scenario_trace_meta(
                kind,
                11,
                policy,
                true,
                Some((4, routing, stealing, threads)),
            );
            let (first, report_a) =
                run_recorded(&meta, &requests).unwrap_or_else(|e| panic!("{label}: record: {e}"));
            let (second, report_b) = first
                .replay()
                .unwrap_or_else(|e| panic!("{label}: replay: {e}"));
            if let Some(diff) = first.diff(&second) {
                panic!("{label}: replay diverged from the recording:\n{diff}");
            }
            assert_eq!(first.digest, second.digest, "{label}: trace digest");
            let (RunReport::Cluster(a), RunReport::Cluster(b)) = (report_a, report_b) else {
                panic!("{label}: shards > 1 must run a cluster");
            };
            assert_same_schedule(&a, &b, &label);
        }
    }
}

#[test]
fn agentic_scenario_affinity_beats_round_robin_by_the_pinned_margin() {
    // The agentic tool-call loops re-submit growing per-session prefixes,
    // so prefix-affinity routing keeps each session's pages on one shard
    // while round-robin scatters them across all four and hits nothing.
    // The margin is pinned well below the measured gap (0.544 vs 0.0 at
    // seed 11, recorded in BENCH_serving_scenarios.json) so modeling
    // drift trips it before the effect disappears.
    let kind = ScenarioKind::AgenticToolLoops;
    let requests = kind.build().generate(11);
    let run = |routing: RoutingKind| {
        let meta = scenario_trace_meta(
            kind,
            11,
            PolicyKind::Fifo,
            false,
            Some((4, routing, false, 1)),
        );
        let (_, report) =
            run_recorded(&meta, &requests).unwrap_or_else(|e| panic!("{routing}: run failed: {e}"));
        let RunReport::Cluster(report) = report else {
            panic!("{routing}: expected a cluster run");
        };
        report
    };
    let round_robin = run(RoutingKind::RoundRobin);
    let affinity = run(RoutingKind::PrefixAffinity);
    assert_eq!(
        affinity.tokens_generated(),
        round_robin.tokens_generated(),
        "routing must change placement, not the work done"
    );
    assert!(
        affinity.prefix_hit_rate() >= round_robin.prefix_hit_rate() + 0.30,
        "affinity hit rate {:.3} does not clear round-robin {:.3} by 0.30",
        affinity.prefix_hit_rate(),
        round_robin.prefix_hit_rate()
    );
}

// ---------------------------------------------------------------------------
// Chunked prefill + SLO-aware scheduling
// ---------------------------------------------------------------------------

/// The canonical skewed workload with a chunked-prefill budget layered on
/// the [`serve_skewed_with_retention`] engine shape.
fn serve_skewed_chunked(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    chunk_pages: usize,
) -> ServingReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(policy)
        .prefill_chunk_pages(chunk_pages);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    for r in skewed_elephant_mice(4, 12) {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(2048).expect("workload completes")
}

/// Records the long-doc-summarize scenario (the canonical chunked-prefill
/// workload: 384-816 token prompts, prefill priced at full weight, every
/// request carrying TTFT/ITL deadlines) through the trace layer, with the
/// chunk budget, policy, preemption, arrival compression and cluster
/// topology under test.
fn long_doc_recorded(
    docs: u64,
    policy: PolicyKind,
    chunk_pages: usize,
    preemption: bool,
    zero_arrivals: bool,
    cluster: Option<(usize, RoutingKind)>,
) -> (token_picker::accel::Trace, RunReport) {
    use token_picker::accel::serve::scenario::{LongDocSummarize, Scenario};

    let scenario = LongDocSummarize { docs };
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cfg = scenario.serving_config(accel);
    cfg.prefill_chunk_pages = chunk_pages;
    if preemption {
        cfg.preemption =
            PreemptionConfig::enabled().with_retention(RetentionPolicy::Fraction(0.75));
    }
    let mut meta = TraceMeta::new(&cfg, policy.name()).for_scenario(scenario.name(), 11);
    if let Some((shards, routing)) = cluster {
        meta = meta.for_cluster(shards, routing.name(), false, 1);
    }
    let mut requests = scenario.generate(11);
    if zero_arrivals {
        for r in &mut requests {
            *r = r.arriving_at(0);
        }
    }
    run_recorded(&meta, &requests)
        .unwrap_or_else(|e| panic!("long-doc run (chunk {chunk_pages}) failed: {e}"))
}

fn engine_report(report: RunReport, label: &str) -> ServingReport {
    match report {
        RunReport::Engine(r) => r,
        RunReport::Cluster(_) => panic!("{label}: expected a bare engine run"),
    }
}

#[test]
fn finite_but_unbinding_chunk_budgets_reproduce_every_golden_schedule() {
    // The equivalence matrix's first face: on the canonical skewed
    // workload prefill is unpriced (`prefill_factor` 0), so *no* chunk
    // budget — generous or absurdly tight — may perturb the schedule.
    // Every policy × preemption golden must come back bit-identical under
    // both a never-binding budget and a 1-page budget.
    for &(policy, preemption, digest) in &GOLDEN_POLICY_DIGESTS {
        for chunk_pages in [1024, 1] {
            let report = serve_skewed_chunked(
                policy,
                preemption,
                RetentionPolicy::Fraction(0.75),
                chunk_pages,
            );
            assert_eq!(
                schedule_digest(&report),
                digest,
                "{policy} (preemption: {preemption}, chunk: {chunk_pages} pages) \
                 diverged from the PR 3 golden schedule"
            );
        }
    }
}

#[test]
fn unbinding_chunk_budget_is_event_identical_on_priced_prefill_for_every_policy() {
    // The matrix's second face, where prefill actually costs cycles: the
    // long-doc scenario prices prefill at full weight, and its batch
    // budget is 2048 tokens = 128 pages — so a 128-page chunk budget can
    // never bind. For every policy, with and without preemption, the
    // finite-budget run must replay the unlimited run's event stream (and
    // digest) exactly.
    for policy in PolicyKind::all() {
        for preemption in [false, true] {
            let label = format!("{policy} (preemption: {preemption})");
            let (unlimited, report_a) = long_doc_recorded(8, policy, 0, preemption, false, None);
            let (bounded, report_b) = long_doc_recorded(8, policy, 128, preemption, false, None);
            assert_eq!(
                unlimited.digest,
                bounded.digest,
                "{label}: trace digest moved under an unbinding budget:\n{}",
                unlimited.diff(&bounded).unwrap_or_default()
            );
            assert_eq!(unlimited.events, bounded.events, "{label}: event stream");
            let a = engine_report(report_a, &label);
            let b = engine_report(report_b, &label);
            assert_eq!(
                schedule_digest(&a),
                schedule_digest(&b),
                "{label}: schedule digest"
            );
        }
    }
}

#[test]
fn unbinding_chunk_budget_is_schedule_identical_across_every_router() {
    // The matrix's cluster face: at four shards, each router must produce
    // the same per-shard schedules whether the budget is unlimited or
    // finite-but-unbinding.
    for routing in RoutingKind::all() {
        let label = format!("cluster/{routing}");
        let (unlimited, report_a) =
            long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, Some((4, routing)));
        let (bounded, report_b) =
            long_doc_recorded(8, PolicyKind::Fifo, 128, false, false, Some((4, routing)));
        assert_eq!(
            unlimited.digest,
            bounded.digest,
            "{label}: trace digest moved under an unbinding budget:\n{}",
            unlimited.diff(&bounded).unwrap_or_default()
        );
        let (RunReport::Cluster(a), RunReport::Cluster(b)) = (report_a, report_b) else {
            panic!("{label}: four shards must run a cluster");
        };
        assert_same_schedule(&a, &b, &label);
    }
}

#[test]
fn chunked_prefill_conserves_tokens_and_the_exact_prefill_bill() {
    // Chunk charges telescope: splitting a prompt across pure-prefill
    // steps must leave every request's generated-token count *and* its
    // total prefill bill exactly where the one-lump engine put them — the
    // budget reshapes when the cycles land, never how many there are.
    let unchunked = engine_report(
        long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, None).1,
        "unchunked",
    );
    let chunked = engine_report(
        long_doc_recorded(8, PolicyKind::Fifo, 8, false, false, None).1,
        "chunked",
    );
    assert_eq!(unchunked.tokens_generated, chunked.tokens_generated);
    assert_eq!(unchunked.requests.len(), chunked.requests.len());
    for lump in &unchunked.requests {
        let split = chunked
            .requests
            .iter()
            .find(|r| r.id == lump.id)
            .expect("request finished under chunking");
        assert_eq!(
            split.generated, lump.generated,
            "request {}: tokens",
            lump.id
        );
        assert_eq!(
            split.prefill_cycles, lump.prefill_cycles,
            "request {}: chunk charges must telescope to the lump prefill bill",
            lump.id
        );
        assert_eq!(
            split.attention_cycles, lump.attention_cycles,
            "request {}: decode attention is untouched by chunking",
            lump.id
        );
    }
    // Chunking genuinely spread the work: more, smaller steps.
    assert!(chunked.steps.len() > unchunked.steps.len());
}

#[test]
fn chunked_prefill_cuts_the_max_decode_stall_at_least_3x_at_equal_tokens() {
    // The acceptance bar: on long-doc-summarize an 816-token prompt lands
    // a 712-cycle prefill lump into whatever step admits it, stalling
    // every co-resident decode. An 8-page (128-token) budget caps the
    // worst per-step prefill charge at 144 cycles (measured at seed 11;
    // pinned at the required 3x, well under the observed 4.9x) without
    // changing a single generated token.
    let unchunked = engine_report(
        long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, None).1,
        "unchunked",
    );
    let chunked = engine_report(
        long_doc_recorded(8, PolicyKind::Fifo, 8, false, false, None).1,
        "chunked",
    );
    assert_eq!(unchunked.tokens_generated, chunked.tokens_generated);
    let (lump, capped) = (
        unchunked.max_prefill_stall_cycles(),
        chunked.max_prefill_stall_cycles(),
    );
    assert!(capped > 0, "chunked run charged no prefill at all");
    assert!(
        lump >= 3 * capped,
        "max decode-step prefill stall must drop >= 3x: {lump} unchunked vs {capped} chunked"
    );
}

#[test]
fn prefill_chunk_events_walk_a_monotone_frontier_to_the_prompt_boundary() {
    use std::collections::HashMap;
    use token_picker::accel::serve::scenario::{LongDocSummarize, Scenario};

    // Every chunk event advances its request's frontier strictly, the
    // frontier and remainder always tile the prompt exactly, and no chunk
    // is ever built after the request's first token (the step completing
    // the prompt emits TokenGenerated instead). Unlimited budgets emit no
    // chunk events at all.
    let prompts: HashMap<u64, usize> = LongDocSummarize { docs: 8 }
        .generate(11)
        .into_iter()
        .map(|r| (r.id, r.prompt_len))
        .collect();
    let (trace, _) = long_doc_recorded(8, PolicyKind::Fifo, 4, false, false, None);
    let mut frontier: HashMap<u64, usize> = HashMap::new();
    let mut first_token: HashMap<u64, usize> = HashMap::new();
    let mut chunk_events = 0usize;
    for event in &trace.events {
        let ClusterEvent::Shard { event, .. } = *event else {
            continue;
        };
        match event {
            ServeEvent::PrefillChunk {
                id,
                step,
                built_tokens,
                remaining_tokens,
            } => {
                chunk_events += 1;
                assert!(
                    !first_token.contains_key(&id),
                    "request {id}: chunk built at step {step} after its first token"
                );
                let prev = frontier.insert(id, built_tokens).unwrap_or(0);
                assert!(
                    built_tokens > prev,
                    "request {id}: frontier moved {prev} -> {built_tokens}"
                );
                assert_eq!(
                    built_tokens + remaining_tokens,
                    prompts[&id],
                    "request {id}: frontier + remainder must tile the prompt"
                );
                assert!(remaining_tokens > 0, "a completing chunk decodes instead");
            }
            ServeEvent::TokenGenerated { id, step, .. } => {
                first_token.entry(id).or_insert(step);
            }
            _ => {}
        }
    }
    assert!(chunk_events > 0, "a 4-page budget must split these prompts");
    // Unlimited budget: whole-prompt prefill, zero chunk events.
    let (unlimited, _) = long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, None);
    assert!(
        !unlimited.events.iter().any(|e| matches!(
            e,
            ClusterEvent::Shard {
                event: ServeEvent::PrefillChunk { .. },
                ..
            }
        )),
        "unlimited chunking must never emit PrefillChunk"
    );
}

#[test]
fn ttft_is_judged_at_the_first_token_not_at_admission() {
    // One 256-token prompt with a 3-step TTFT deadline, admitted at step 0
    // either way. Unchunked, prefill and the first token land in step 0:
    // TTFT 1, attained. Under a 2-page (32-token) budget the first token
    // waits for 7 pure-prefill steps: TTFT 8 blows the deadline even
    // though admission was just as instant — and every token the request
    // goes on to generate is excluded from goodput.
    let run = |chunk_pages: usize| {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut engine = ServingEngine::builder(accel)
            .heads(4)
            .weight_bytes(10_000_000)
            .max_batch(2)
            .max_batch_tokens(2048)
            .page_size(16)
            .prefill_factor(1.0)
            .prefill_chunk_pages(chunk_pages)
            .seed(7)
            .build();
        engine
            .enqueue(ServingRequest::new(0, 256, 4).with_ttft_deadline(3))
            .expect("valid request");
        engine.run_to_completion(256).expect("completes")
    };

    let instant = run(0);
    let delayed = run(2);
    for (label, report) in [("unchunked", &instant), ("chunked", &delayed)] {
        let r = &report.requests[0];
        assert_eq!(r.admitted_at, Some(0), "{label}: admission was instant");
        assert_eq!(r.generated, 4, "{label}: the deadline never stops decoding");
    }

    let on_time = &instant.requests[0];
    assert!(on_time.slo_attained());
    assert_eq!(on_time.first_token_at, Some(0));
    assert_eq!(on_time.good_tokens, on_time.generated);
    assert!((instant.deadline_attainment() - 1.0).abs() < f64::EPSILON);

    let late = &delayed.requests[0];
    assert!(late.slo_violated, "TTFT must be judged at the first token");
    assert!(late.first_token_at.unwrap() + 1 > 3, "first token was late");
    assert_eq!(
        late.good_tokens, 0,
        "a missed TTFT means even the first token was already late"
    );
    assert_eq!(delayed.deadline_attainment(), 0.0);
    assert_eq!(delayed.total_good_tokens(), 0);
    assert!(delayed.goodput_tokens_per_second(500e6) == 0.0);
}

#[test]
fn deadline_free_requests_trivially_attain_and_count_every_token_as_good() {
    // The mixed workload predates SLOs entirely: with no deadlines
    // declared, attainment is vacuously perfect and goodput equals
    // throughput.
    let report = serve(AccelMode::OutOfOrder, 1e-3);
    assert!(report.requests.iter().all(|r| !r.has_deadline()));
    assert!((report.deadline_attainment() - 1.0).abs() < f64::EPSILON);
    assert_eq!(report.total_good_tokens(), report.tokens_generated);
    for r in &report.requests {
        assert!(r.slo_attained());
        assert_eq!(r.good_tokens, r.generated);
    }
}

#[test]
fn a_blown_inter_token_deadline_stops_goodput_but_not_generation() {
    // Request 0 decodes with a 2-step inter-token deadline; a
    // higher-priority arrival preempts it from the single slot, and the
    // re-admission gap blows the ITL budget. Its early tokens stay good,
    // everything after the gap does not, and generation still runs to the
    // target.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(1)
        .max_batch_tokens(2048)
        .seed(7)
        .policy(PolicyKind::PriorityAging)
        .enable_preemption()
        .build();
    engine
        .enqueue(
            ServingRequest::new(0, 64, 8)
                .with_priority(0)
                .with_itl_deadline(2),
        )
        .expect("valid request");
    engine
        .enqueue(
            ServingRequest::new(1, 64, 2)
                .with_priority(5)
                .arriving_at(2),
        )
        .expect("valid request");
    let report = engine.run_to_completion(256).expect("completes");
    assert!(report.preemptions > 0, "the arrival must evict the decoder");

    let victim = report
        .requests
        .iter()
        .find(|r| r.id == 0)
        .expect("finished");
    assert_eq!(victim.generated, 8, "a blown SLO never stops decoding");
    assert!(
        victim.slo_violated,
        "the re-admission gap blew the ITL budget"
    );
    assert!(
        victim.good_tokens >= 1 && victim.good_tokens < victim.generated,
        "pre-gap tokens stay good, post-gap tokens do not: {} of {}",
        victim.good_tokens,
        victim.generated
    );

    let usurper = report
        .requests
        .iter()
        .find(|r| r.id == 1)
        .expect("finished");
    assert!(
        usurper.slo_attained(),
        "the deadline-free usurper can't violate"
    );
    assert!(report.deadline_attainment() < 1.0);
}

#[test]
fn slo_aware_preempts_on_slack_where_deadline_blind_policies_sit_still() {
    // Sixteen long documents arriving simultaneously into three slots:
    // the SLO-aware policy sees negative-slack arrivals and evicts the
    // slackest residents, while FIFO and SJF (preemption *enabled* but
    // deadline-blind) never find a victim worth the re-prefill.
    let run = |policy: PolicyKind| {
        engine_report(
            long_doc_recorded(16, policy, 0, true, true, None).1,
            policy.name(),
        )
    };
    let fifo = run(PolicyKind::Fifo);
    let sjf = run(PolicyKind::ShortestJobFirst);
    let slo = run(PolicyKind::SloAware);
    assert_eq!(fifo.preemptions, 0);
    assert_eq!(sjf.preemptions, 0);
    assert!(
        slo.preemptions > 0,
        "SLO-aware scheduling must preempt on slack under deadline pressure"
    );
    // Same tokens delivered regardless of who got evicted along the way.
    assert_eq!(slo.tokens_generated, fifo.tokens_generated);
}

#[test]
fn slo_aware_beats_sjf_on_ttft_p99_under_contention_at_equal_tokens() {
    // Sixteen simultaneous documents through a 16-page chunk budget: SJF
    // orders by remaining work, so the longest documents queue behind
    // every shorter one and the TTFT tail stretches; deadline-ordered
    // admission bounds it. Equal tokens either way — the policies move
    // latency, not work (56 tokens, p99 39 vs 40 steps at seed 11).
    let sjf = engine_report(
        long_doc_recorded(16, PolicyKind::ShortestJobFirst, 16, false, true, None).1,
        "sjf",
    );
    let slo = engine_report(
        long_doc_recorded(16, PolicyKind::SloAware, 16, false, true, None).1,
        "slo",
    );
    assert_eq!(sjf.tokens_generated, slo.tokens_generated, "equal work");
    assert!(
        slo.ttft_p99_steps() < sjf.ttft_p99_steps(),
        "SLO-aware TTFT p99 {} must beat SJF {}",
        slo.ttft_p99_steps(),
        sjf.ttft_p99_steps()
    );
}

#[test]
fn trace_diff_pinpoints_the_first_divergence_between_recorded_runs() {
    // Identical runs diff to None; runs that genuinely diverge (an 8-page
    // budget against unlimited) are localized to their first differing
    // event with `<`/`>` markers — the same report `topick trace diff`
    // prints and replay-digest failures embed.
    let (a, _) = long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, None);
    let (same, _) = long_doc_recorded(8, PolicyKind::Fifo, 0, false, false, None);
    assert_eq!(a.diff(&same), None, "identical runs must not diff");

    let (b, _) = long_doc_recorded(8, PolicyKind::Fifo, 8, false, false, None);
    let report = a.diff(&b).expect("an 8-page budget changes the schedule");
    assert!(
        report.contains("diverge at event"),
        "diff must localize the divergence:\n{report}"
    );
    assert!(
        report.contains("< ["),
        "diff must print the left event:\n{report}"
    );
    assert!(
        report.contains("> ["),
        "diff must print the right event:\n{report}"
    );
    assert!(
        report.contains("note: trace metas differ"),
        "the chunk budget lives in the meta, so the diff must flag it:\n{report}"
    );
}

#[test]
fn golden_trace_replays_to_its_recorded_digest() {
    // Golden regression: a trace recorded by `topick serve --record` is
    // checked in under tests/data/; replaying it must land on the digest
    // in its own footer. Any schedule-affecting change to the engine,
    // cluster, policies, routing or stealing shows up here as a diff
    // against a file in the repo rather than a silently moved digest.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/agentic_affinity_cluster.trace"
    );
    let replay = TraceReplay::load(path).expect("golden trace loads and verifies");
    let recorded = replay.trace().digest;
    let (trace, report) = replay.run().expect("replay reproduces the recording");
    assert_eq!(trace.digest, recorded, "replay digest moved off the golden");
    let RunReport::Cluster(report) = report else {
        panic!("the golden trace records a 4-shard cluster run");
    };
    assert_eq!(report.shards.len(), 4);
    assert!(report.tokens_generated() > 0);
}

// ---------------------------------------------------------------------------
// Tiered KV memory: host swap, cross-shard shipping, SLO rejection
// ---------------------------------------------------------------------------

/// The canonical skewed workload on the [`serve_skewed_with_retention`]
/// engine shape (priority-aging, preemption, 0.75 paged retention) with
/// the host tier configured.
fn serve_skewed_tiered(host_pages: usize, swap_cost_factor: f64) -> ServingReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(PolicyKind::PriorityAging)
        .enable_preemption()
        .retention(RetentionPolicy::Fraction(0.75))
        .host_pages(host_pages)
        .swap_cost_factor(swap_cost_factor)
        .build();
    for r in skewed_elephant_mice(4, 12) {
        engine.enqueue(r).expect("valid request");
    }
    let report = engine.run_to_completion(2048).expect("workload completes");
    engine.kv_pager().validate();
    assert_eq!(engine.kv_pager().allocated_pages(), 0);
    assert_eq!(
        engine.kv_pager().host_pages_used(),
        0,
        "the host tier must drain with the run"
    );
    report
}

#[test]
fn tier_off_cost_factors_reproduce_every_golden_schedule() {
    // The tiered equivalence face: with `host_pages` 0 the host tier is
    // off no matter how the cost factors are set, the ship factor is
    // meaningless on a bare engine, and the rejection flag has nothing to
    // reject in a deadline-free workload — every golden must come back
    // bit-identical with all three configured.
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    for &(policy, preemption, digest) in &GOLDEN_POLICY_DIGESTS {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut builder = ServingEngine::builder(accel)
            .heads(4)
            .weight_bytes(10_000_000)
            .max_batch(4)
            .max_batch_tokens(2200)
            .seed(7)
            .policy(policy)
            .host_pages(0)
            .swap_cost_factor(0.1)
            .ship_cost_factor(0.25)
            .reject_expired_ttft(true);
        if preemption {
            builder = builder
                .enable_preemption()
                .retention(RetentionPolicy::Fraction(0.75));
        }
        let mut engine = builder.build();
        for r in skewed_elephant_mice(4, 12) {
            engine.enqueue(r).expect("valid request");
        }
        let report = engine.run_to_completion(2048).expect("workload completes");
        assert_eq!(report.total_swap_cycles(), 0, "{policy}: phantom swap bill");
        assert_eq!(report.total_ship_cycles(), 0, "{policy}: phantom ship bill");
        assert_eq!(report.rejections, 0, "{policy}: deadline-free rejection");
        assert_eq!(
            schedule_digest(&report),
            digest,
            "{policy} (preemption: {preemption}) diverged with tier-off factors set"
        );
    }
}

#[test]
fn host_swap_strictly_beats_drop_and_reprefill_at_equal_tokens() {
    // The swap-cost crossover: evicted KV copied back from the host tier
    // at a quarter of the re-prefill price must strictly cut total cycles
    // at equal tokens on the canonical skewed workload — and copy-back
    // priced *above* re-prefill (1.5x) must strictly cost more, so the
    // tier is a priced trade-off, not a free lunch.
    let dropped = serve_skewed_with_retention(
        PolicyKind::PriorityAging,
        true,
        RetentionPolicy::Fraction(0.75),
    );
    assert!(dropped.preemptions > 0, "no evictions — nothing to compare");

    let swapped = serve_skewed_tiered(1024, 0.25);
    assert_eq!(swapped.tokens_generated, dropped.tokens_generated);
    assert_eq!(
        swapped.preemptions, dropped.preemptions,
        "pricing copy-back must not change the schedule's shape"
    );
    assert!(
        swapped.total_swapped_tokens() > 0,
        "nothing was copied back"
    );
    assert!(swapped.total_swap_cycles() > 0, "copy-back must be priced");
    assert!(
        swapped.total_reprefill_cycles() < dropped.total_reprefill_cycles(),
        "swapping in must displace re-prefill: {} vs {} cycles",
        swapped.total_reprefill_cycles(),
        dropped.total_reprefill_cycles()
    );
    assert!(
        swapped.total_cycles < dropped.total_cycles,
        "cheap copy-back must beat drop-and-reprefill: {} vs {} cycles",
        swapped.total_cycles,
        dropped.total_cycles
    );

    let overpriced = serve_skewed_tiered(1024, 1.5);
    assert_eq!(overpriced.tokens_generated, dropped.tokens_generated);
    assert!(
        overpriced.total_cycles > dropped.total_cycles,
        "copy-back above the re-prefill price must lose: {} vs {} cycles",
        overpriced.total_cycles,
        dropped.total_cycles
    );
}

#[test]
fn swap_events_account_for_every_copied_back_token() {
    use token_picker::accel::serve::scenario::{Scenario, SkewedElephantMice};

    // Record the tiered skewed run through the trace layer: SwappedOut/
    // SwappedIn must replay to the same digest, and the SwappedIn event
    // tokens must sum to exactly the copy-back the requests were billed.
    let scenario = SkewedElephantMice {
        elephants: 4,
        mice: 12,
    };
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cfg = scenario.serving_config(accel);
    cfg.preemption = PreemptionConfig::enabled().with_retention(RetentionPolicy::Fraction(0.75));
    cfg.host_pages = 1024;
    cfg.swap_cost_factor = 0.25;
    let meta = TraceMeta::new(&cfg, PolicyKind::PriorityAging.name());
    let requests = scenario.generate(0);
    let (first, report) = run_recorded(&meta, &requests).expect("tiered run records");
    let (second, _) = first.replay().expect("tiered trace replays");
    if let Some(diff) = first.diff(&second) {
        panic!("tiered replay diverged from the recording:\n{diff}");
    }
    assert_eq!(
        first.digest, second.digest,
        "swap events must digest stably"
    );

    let report = engine_report(report, "tiered skewed");
    let (mut out_tokens, mut in_tokens) = (0usize, 0usize);
    for e in &first.events {
        let ClusterEvent::Shard { event, .. } = *e else {
            continue;
        };
        match event {
            ServeEvent::SwappedOut { tokens, .. } => out_tokens += tokens,
            ServeEvent::SwappedIn { tokens, .. } => in_tokens += tokens,
            _ => {}
        }
    }
    assert!(out_tokens > 0, "no eviction ever swapped KV out");
    assert!(in_tokens > 0, "no re-admission ever copied KV back");
    assert!(
        in_tokens <= out_tokens,
        "cannot copy back more than was swapped out: {in_tokens} vs {out_tokens}"
    );
    assert_eq!(
        in_tokens,
        report.total_swapped_tokens(),
        "SwappedIn events and per-request accounting must agree"
    );
    assert!(report.total_swap_cycles() > 0);
}

/// The shared-prefix chat workload on a 4-shard round-robin cluster with
/// prefix-pull shipping priced at `ship`.
fn serve_shared_prefix_cluster_shipped(ship: f64) -> ClusterReport {
    use token_picker::accel::serve::workloads::{shared_prefix_chat, shared_prefix_cluster};

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cluster = shared_prefix_cluster(accel, true)
        .shards(4)
        .routing(RoutingKind::RoundRobin)
        .stealing(false)
        .ship_cost_factor(ship)
        .build();
    for r in shared_prefix_chat(11, 4, 6) {
        cluster.enqueue(r).expect("valid request");
    }
    let report = cluster.run_to_completion(4096).expect("workload completes");
    for i in 0..cluster.shard_count() {
        cluster.shard(i).kv_pager().validate();
        assert_eq!(cluster.shard(i).kv_pager().allocated_pages(), 0);
    }
    report
}

#[test]
fn prefix_pull_shipping_strictly_cuts_the_round_robin_prefill_bill() {
    // Round-robin scatters every tenant's requests across all four
    // shards, so without shipping each shard re-prefills the tenant
    // prefix from scratch. With shipping priced at a quarter of prefill,
    // an arriving request pulls the already-built prefix pages from a
    // sibling shard instead — the combined prefill + transfer bill must
    // come in strictly under re-prefilling, at equal tokens.
    let base = serve_shared_prefix_cluster(4, RoutingKind::RoundRobin, false);
    let shipped = serve_shared_prefix_cluster_shipped(0.25);

    assert_eq!(shipped.tokens_generated(), base.tokens_generated());
    assert!(
        shipped.total_ship_cycles() > 0,
        "no prefix pages were ever pulled"
    );
    assert!(
        shipped.prefix_hit_rate() > base.prefix_hit_rate(),
        "pulled pages must land as cache hits: {:.3} vs {:.3}",
        shipped.prefix_hit_rate(),
        base.prefix_hit_rate()
    );
    for report in [&base, &shipped] {
        let rate = report.prefix_hit_rate();
        assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
    }
    let base_bill = base.total_prefill_cycles() + base.total_reprefill_cycles();
    let shipped_bill = shipped.total_prefill_cycles()
        + shipped.total_reprefill_cycles()
        + shipped.total_ship_cycles();
    assert!(
        shipped_bill < base_bill,
        "pulling shared prefixes at transfer price must beat re-prefilling: \
         {shipped_bill} vs {base_bill} cycles"
    );
}

#[test]
fn shipped_prefix_pulls_record_and_replay_to_the_same_digest() {
    use token_picker::accel::serve::scenario::{Scenario, SharedPrefixChat};

    let scenario = SharedPrefixChat {
        tenants: 4,
        per_tenant: 6,
    };
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cfg = scenario.serving_config(accel);
    cfg.host_pages = 64;
    cfg.swap_cost_factor = 0.25;
    cfg.ship_cost_factor = 0.25;
    let meta = TraceMeta::new(&cfg, PolicyKind::Fifo.name())
        .for_scenario(scenario.name(), 11)
        .for_cluster(4, RoutingKind::RoundRobin.name(), true, 1);
    let requests = scenario.generate(11);
    let (first, report) = run_recorded(&meta, &requests).expect("shipped run records");
    let (second, _) = first.replay().expect("shipped trace replays");
    if let Some(diff) = first.diff(&second) {
        panic!("shipped replay diverged from the recording:\n{diff}");
    }
    assert_eq!(
        first.digest, second.digest,
        "ship events must digest stably"
    );
    assert!(
        first
            .events
            .iter()
            .any(|e| matches!(e, ClusterEvent::Shipped { .. })),
        "no prefix pages were ever shipped"
    );
    let RunReport::Cluster(report) = report else {
        panic!("four shards must run a cluster");
    };
    assert!(report.total_ship_cycles() > 0);
}

/// The canonical skewed workload on a 4-shard least-loaded cluster with
/// preemption, paged retention, the host tier *and* priced shipping all
/// on — the full tiered configuration.
fn serve_skewed_cluster_tiered(threads: usize) -> ClusterReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cluster = ClusterEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(PolicyKind::PriorityAging)
        .enable_preemption()
        .retention(RetentionPolicy::Fraction(0.75))
        .host_pages(256)
        .swap_cost_factor(0.25)
        .ship_cost_factor(0.25)
        .shards(4)
        .routing(RoutingKind::LeastLoaded)
        .stealing(true)
        .threads(threads)
        .build();
    for r in skewed_elephant_mice(4, 12) {
        cluster.enqueue(r).expect("valid request");
    }
    let report = cluster.run_to_completion(2048).expect("workload completes");
    for i in 0..cluster.shard_count() {
        cluster.shard(i).kv_pager().validate();
        assert_eq!(cluster.shard(i).kv_pager().allocated_pages(), 0);
        assert_eq!(cluster.shard(i).kv_pager().host_pages_used(), 0);
    }
    report
}

#[test]
fn tiered_threaded_cluster_is_digest_identical_to_sequential() {
    // Swap decisions live inside each shard's step; ship decisions live
    // on the coordinator between step barriers. Neither may depend on
    // which worker thread stepped which shard: the full tiered cluster
    // must be digest-identical between threads = 1 and threads ∈ {2, 4}.
    let sequential = serve_skewed_cluster_tiered(1);
    for threads in [2, 4] {
        let threaded = serve_skewed_cluster_tiered(threads);
        assert_eq!(
            threaded.ships, sequential.ships,
            "{threads} threads: ship count diverged"
        );
        assert_eq!(
            threaded.total_swap_cycles(),
            sequential.total_swap_cycles(),
            "{threads} threads: swap bill diverged"
        );
        assert_eq!(
            threaded.total_ship_cycles(),
            sequential.total_ship_cycles(),
            "{threads} threads: ship bill diverged"
        );
        assert_same_schedule(
            &threaded,
            &sequential,
            &format!("tiered cluster, {threads} threads"),
        );
    }
}

#[test]
fn expired_ttft_rejection_is_evented_and_counts_against_attainment() {
    // One slot; request 0 holds it for 10 steps while request 1 queues
    // behind a 3-step TTFT deadline it can no longer meet from step 3 on.
    let run = |reject: bool| {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut engine = ServingEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(1)
            .max_batch_tokens(2048)
            .seed(7)
            .reject_expired_ttft(reject)
            .build();
        engine
            .enqueue(ServingRequest::new(0, 64, 10))
            .expect("valid request");
        engine
            .enqueue(ServingRequest::new(1, 64, 4).with_ttft_deadline(3))
            .expect("valid request");
        let report = engine.run_to_completion(64).expect("completes");
        let rejected: Vec<(u64, usize, usize)> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Rejected {
                    id,
                    step,
                    overdue_steps,
                } => Some((*id, *step, *overdue_steps)),
                _ => None,
            })
            .collect();
        (report, rejected)
    };

    // Off (the default): the late request still runs to target, blows its
    // deadline, and contributes nothing to goodput.
    let (off, no_events) = run(false);
    assert!(no_events.is_empty(), "rejection must be opt-in");
    assert_eq!(off.rejections, 0);
    let late = off.requests.iter().find(|r| r.id == 1).expect("finished");
    assert_eq!(late.generated, 4, "without rejection the late request runs");
    assert!(late.slo_violated);
    assert_eq!(off.deadline_attainment(), 0.0);

    // On: rejected the moment the deadline became unmeetable (step 3 =
    // one step overdue), never decoded, still in the report — and still
    // in the attainment denominator.
    let (on, events) = run(true);
    assert_eq!(on.rejections, 1);
    assert_eq!(events, vec![(1, 3, 1)], "wrong rejection moment");
    let turned_away = on
        .requests
        .iter()
        .find(|r| r.id == 1)
        .expect("rejected requests stay in the report");
    assert_eq!(turned_away.generated, 0);
    assert_eq!(turned_away.first_token_at, None);
    assert!(turned_away.slo_violated);
    assert!(turned_away.finished_at.is_some());
    assert_eq!(
        on.deadline_attainment(),
        0.0,
        "a rejection is a missed deadline, not a vanished one"
    );
    // Shedding the hopeless request costs no goodput and skips its work.
    assert_eq!(on.total_good_tokens(), off.total_good_tokens());
    assert_eq!(on.tokens_generated, off.tokens_generated - 4);
}

#[test]
fn rejecting_expired_queueing_never_costs_goodput_under_deadline_pressure() {
    use token_picker::accel::serve::scenario::{LongDocSummarize, Scenario};

    // Sixteen deadline-carrying documents arriving simultaneously into
    // three slots: the queue tail blows its TTFT budget long before
    // admission. Turning rejection on must shed exactly that hopeless
    // work — goodput may not drop — and the Rejected events must replay.
    let run = |reject: bool| {
        let scenario = LongDocSummarize { docs: 16 };
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut cfg = scenario.serving_config(accel);
        cfg.reject_expired_ttft = reject;
        let mut requests = scenario.generate(11);
        for r in &mut requests {
            *r = r.arriving_at(0);
        }
        let meta = TraceMeta::new(&cfg, PolicyKind::Fifo.name());
        let (trace, report) = run_recorded(&meta, &requests).expect("slo run records");
        let (second, _) = trace.replay().expect("slo trace replays");
        if let Some(diff) = trace.diff(&second) {
            panic!("reject={reject}: replay diverged:\n{diff}");
        }
        (trace, engine_report(report, "slo workload"))
    };

    let (_, off) = run(false);
    let (trace_on, on) = run(true);
    assert!(
        on.rejections > 0,
        "16 simultaneous documents against 3 slots must reject someone"
    );
    assert!(
        trace_on.events.iter().any(|e| matches!(
            e,
            ClusterEvent::Shard {
                event: ServeEvent::Rejected { .. },
                ..
            }
        )),
        "rejections must be evented"
    );
    assert_eq!(
        on.requests.len(),
        off.requests.len(),
        "rejected requests stay in the report"
    );
    assert!(
        on.total_good_tokens() >= off.total_good_tokens(),
        "rejection must never cost goodput: {} vs {} good tokens",
        on.total_good_tokens(),
        off.total_good_tokens()
    );
    assert!(
        on.tokens_generated < off.tokens_generated,
        "rejection must shed the hopeless work"
    );
    for report in [&off, &on] {
        let attainment = report.deadline_attainment();
        assert!((0.0..=1.0).contains(&attainment));
    }
}

#[test]
fn truncated_cluster_snapshots_keep_the_prefix_hit_rate_in_unit_range() {
    // Two tenants' requests share 64-token prefixes and decode for 32
    // steps, so cache hits land at admission long before anything can
    // finish. Snapshot the cluster report after every one of the first
    // six steps: the admission-normalized rate must sit inside [0, 1]
    // with hits already visible — the old finished-only normalization
    // reported 0.0 on every one of these snapshots because its
    // denominator only counted finished requests.
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cluster = ClusterEngine::builder(accel)
        .heads(2)
        .weight_bytes(1_000_000)
        .max_batch(4)
        .max_batch_tokens(1600)
        .page_size(16)
        .prefix_cache(true)
        .prefill_factor(1.0)
        .seed(7)
        .shards(2)
        .routing(RoutingKind::PrefixAffinity)
        .build();
    for i in 0..8u64 {
        let tenant = i % 2;
        // Pairs arrive two steps apart: with prefill priced, a builder's
        // prefix pages publish only after its prefill step, so same-step
        // admissions cannot adopt each other — the stagger lets every
        // later pair hit the prefix its tenant's first request built.
        cluster
            .enqueue(
                ServingRequest::new(i, 80 + (i as usize % 3) * 16, 32)
                    .with_shared_prefix(tenant, 64)
                    .arriving_at((i / 2) * 2),
            )
            .expect("valid request");
    }
    let mut saw_hits_before_any_completion = false;
    for step in 0..6 {
        cluster
            .step()
            .expect("step")
            .expect("a 32-token decode outlives six steps");
        let snapshot = cluster.report();
        let rate = snapshot.prefix_hit_rate();
        assert!(
            (0.0..=1.0).contains(&rate),
            "truncated-run hit rate {rate} left the unit range at step {step}"
        );
        assert_eq!(
            snapshot.requests().count(),
            0,
            "nothing can finish within six steps of a 32-token decode"
        );
        if rate > 0.0 {
            saw_hits_before_any_completion = true;
        }
    }
    assert!(
        saw_hits_before_any_completion,
        "the cache never hit inside the truncated window"
    );
    // Drained, the rate stays in range and strictly positive.
    let report = cluster.run_to_completion(4096).expect("completes");
    let rate = report.prefix_hit_rate();
    assert!(rate > 0.0 && rate <= 1.0, "drained hit rate {rate}");
}

// ---------------------------------------------------------------------------
// Real-token serving: the paged KV store under the serving loop
// ---------------------------------------------------------------------------

/// Serves the canonical 4-tenant `shared_prefix_chat` workload through the
/// token-backed mirror: the engine schedules (and charges) as usual while a
/// `TokenBackedBatch` generates real synth-model tokens whose KV rows live
/// in one shared copy-on-write paged store.
fn run_real_token_chat(
    prefix_cache: bool,
    chunk_pages: usize,
) -> (token_picker::accel::TokenBackedRun, Vec<ServingRequest>) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder =
        token_picker::accel::serve::workloads::shared_prefix_engine(accel, prefix_cache);
    if chunk_pages > 0 {
        builder = builder.prefill_chunk_pages(chunk_pages);
    }
    let mut engine = builder.build();
    let requests = token_picker::accel::serve::workloads::shared_prefix_chat(11, 4, 6);
    let run = token_picker::accel::run_token_backed(
        &mut engine,
        requests.clone(),
        token_picker::model::ModelSpec::toy(),
        11,
        4096,
    )
    .expect("workload completes");
    (run, requests)
}

/// Every request's served tokens must equal a private, unsharded
/// `generate` on the same prompt — token equivalence under physical
/// prefix sharing.
fn assert_token_equivalence(
    run: &token_picker::accel::TokenBackedRun,
    requests: &[ServingRequest],
) {
    for req in requests {
        let got = run.batch.generated(req.id).expect("request was served");
        assert_eq!(
            got.len(),
            req.max_new_tokens,
            "request {} under-generated",
            req.id
        );
        assert_eq!(
            got,
            run.batch.reference_generate(req).as_slice(),
            "request {} diverged from its unsharded generate",
            req.id
        );
    }
}

#[test]
fn real_tokens_physically_share_prefix_kv_and_match_unsharded_generate() {
    let (run, requests) = run_real_token_chat(true, 0);
    // The acceptance criterion: system-prompt KV was physically shared
    // while requests were resident...
    assert!(
        run.batch.peak_shared_pages() > 0,
        "no page was ever shared across sequences"
    );
    // ...and still is after draining (finished sequences stay donors).
    assert!(
        run.batch.shared_pages() > 0,
        "drained store lost all sharing"
    );
    run.batch.validate();
    // Tokens are byte-identical to per-request unsharded generation.
    assert_token_equivalence(&run, &requests);
    // And the engine's own token accounting agrees with the mirror.
    let expected: usize = requests.iter().map(|r| r.max_new_tokens).sum();
    assert_eq!(run.report.tokens_generated, expected);
    let hit_rate = run.report.prefix_hit_rate();
    assert!(
        hit_rate > 0.3 && hit_rate <= 1.0,
        "admission-normalized hit rate {hit_rate} out of the expected band"
    );
}

#[test]
fn real_tokens_without_prefix_cache_share_nothing_but_emit_the_same_tokens() {
    let (off, requests) = run_real_token_chat(false, 0);
    assert_eq!(
        off.batch.peak_shared_pages(),
        0,
        "cache off must mean zero physical sharing"
    );
    assert_token_equivalence(&off, &requests);
    // Same tokens as the cache-on run, request by request.
    let (on, _) = run_real_token_chat(true, 0);
    for req in &requests {
        assert_eq!(
            off.batch.generated(req.id),
            on.batch.generated(req.id),
            "prefix cache changed request {}'s tokens",
            req.id
        );
    }
}

#[test]
fn real_tokens_survive_chunked_prefill_byte_identically() {
    let (chunked, requests) = run_real_token_chat(true, 2);
    assert!(chunked.batch.peak_shared_pages() > 0);
    assert_token_equivalence(&chunked, &requests);
}

/// Preemption with paged retention (and optionally a host swap tier)
/// becomes a real truncate/release of the mirror's pages; re-admission
/// rebuilds exactly, so tokens stay byte-identical.
#[test]
fn real_tokens_survive_preemption_retention_and_host_swap() {
    for host_pages in [0usize, 64] {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut builder = ServingEngine::builder(accel)
            .heads(4)
            .weight_bytes(1_000_000)
            .max_batch(3)
            .max_batch_tokens(192)
            .page_size(16)
            .prefix_cache(true)
            .policy(PolicyKind::PriorityAging)
            .preemption(
                token_picker::accel::PreemptionConfig::enabled()
                    .with_retention(RetentionPolicy::Fraction(0.8)),
            );
        if host_pages > 0 {
            builder = builder.host_pages(host_pages);
        }
        let mut engine = builder.build();
        let requests = vec![
            ServingRequest::new(0, 64, 8)
                .with_priority(5)
                .with_shared_prefix(1, 64),
            ServingRequest::new(1, 64, 6)
                .with_priority(1)
                .with_shared_prefix(1, 64),
            ServingRequest::new(2, 96, 8)
                .with_priority(9)
                .arriving_at(2),
            ServingRequest::new(3, 64, 4)
                .with_priority(7)
                .with_shared_prefix(1, 64)
                .arriving_at(3),
        ];
        let run = token_picker::accel::run_token_backed(
            &mut engine,
            requests.clone(),
            token_picker::model::ModelSpec::toy(),
            3,
            4096,
        )
        .expect("workload completes");
        assert!(
            run.report.preemptions > 0,
            "the tight budget must force at least one eviction (host_pages {host_pages})"
        );
        assert_token_equivalence(&run, &requests);
        let rate = run.report.prefix_hit_rate();
        assert!(
            (0.0..=1.0).contains(&rate),
            "hit rate {rate} left the unit range under retention"
        );
    }
}

/// The charged-vs-measured cycle cross-check on `shared-prefix-chat`: the
/// engine's charged prefill + re-prefill + attention cycles, over the
/// kernel cycles `SimulatedAttention` actually measured in the mirror, is
/// a deterministic constant for this pinned workload and config. The pin
/// (with a ±20% band for headroom against cost-model retuning) trips if
/// either layer's accounting drifts from the other.
#[test]
fn charged_cycles_track_measured_cycles_on_shared_prefix_chat() {
    let (run, _) = run_real_token_chat(true, 0);
    assert!(run.charged_cycles() > 0, "nothing was charged");
    assert!(run.batch.measured_cycles() > 0, "nothing was measured");
    let ratio = run.cycle_ratio();
    const PINNED_RATIO: f64 = 0.0685;
    assert!(
        (ratio - PINNED_RATIO).abs() <= PINNED_RATIO * 0.2,
        "charged/measured cycle ratio {ratio} strayed from the pinned {PINNED_RATIO}"
    );
}
