//! Workspace integration tests of the continuous-batching serving engine:
//! a 16-request mixed-context workload must complete under both
//! accelerator modes, conserve its token accounting, price bigger batches
//! higher, and run measurably faster under Token-Picker pruning.

use token_picker::accel::{
    AccelConfig, AccelMode, AdmissionConfig, ServingConfig, ServingEngine, ServingRequest,
};

fn mixed_workload() -> Vec<ServingRequest> {
    // 16 requests with heterogeneous prompts (128..=464 tokens) and
    // targets (2..=6 new tokens) — contexts in one batch intentionally
    // disagree, and they are long enough for attention (not weight
    // streaming) to be a visible share of each step, the regime the paper
    // evaluates.
    (0..16u64)
        .map(|id| ServingRequest {
            id,
            prompt_len: 128 + (id as usize % 8) * 48,
            max_new_tokens: 2 + (id as usize % 5),
        })
        .collect()
}

fn serve(mode: AccelMode, threshold: f64) -> token_picker::accel::ServingReport {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission = AdmissionConfig {
        max_batch: 6,
        max_batch_tokens: 4096,
    };
    cfg.seed = 7;
    let mut engine = ServingEngine::new(cfg);
    for r in mixed_workload() {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(256).expect("workload completes")
}

#[test]
fn sixteen_request_workload_completes_with_conservation() {
    let report = serve(AccelMode::OutOfOrder, 1e-3);
    let workload = mixed_workload();

    // Conservation: every request finished, generating exactly its target.
    assert_eq!(report.requests.len(), workload.len());
    let expected: usize = workload.iter().map(|r| r.max_new_tokens).sum();
    assert_eq!(report.tokens_generated, expected);
    for req in &workload {
        let stats = report
            .requests
            .iter()
            .find(|s| s.id == req.id)
            .expect("request finished");
        assert_eq!(stats.generated, req.max_new_tokens, "request {}", req.id);
        assert!(stats.admitted_at.is_some());
        assert!(stats.finished_at.unwrap() >= stats.admitted_at.unwrap());
        assert!(stats.attention_cycles > 0);
    }

    // Admission control held at every step.
    for step in &report.steps {
        assert!(step.batch <= 6, "batch {} exceeds limit", step.batch);
        assert!(step.context_tokens <= 4096);
    }

    // Continuous batching actually batched: some step decoded multiple
    // requests concurrently.
    assert!(report.steps.iter().any(|s| s.batch > 1));

    // Cycle accounting is closed: steps sum to the total.
    let sum: u64 = report.steps.iter().map(|s| s.total_cycles()).sum();
    assert_eq!(sum, report.total_cycles);
}

#[test]
fn step_cycles_are_monotone_in_batch_attention_work() {
    // Under the baseline (no pruning), a step's attention cycles grow with
    // the attention work it performs (total context tokens in the batch).
    // Compare the extremes, which are far apart in work.
    let report = serve(AccelMode::Baseline, 0.5);
    let min_work = report
        .steps
        .iter()
        .min_by_key(|s| s.context_tokens)
        .expect("steps exist");
    let max_work = report
        .steps
        .iter()
        .max_by_key(|s| s.context_tokens)
        .expect("steps exist");
    assert!(
        max_work.context_tokens > min_work.context_tokens,
        "workload produced uniform steps; test needs heterogeneous work"
    );
    assert!(
        max_work.attention_cycles > min_work.attention_cycles,
        "attention cycles not monotone: work {} -> {} cycles vs work {} -> {} cycles",
        min_work.context_tokens,
        min_work.attention_cycles,
        max_work.context_tokens,
        max_work.attention_cycles
    );

    // Weight streaming is shared per step and constant across steps.
    for w in report.steps.windows(2) {
        assert_eq!(w[0].weight_cycles, w[1].weight_cycles);
    }
}

#[test]
fn topick_serves_more_tokens_per_second_than_baseline() {
    let baseline = serve(AccelMode::Baseline, 0.5);
    let topick = serve(AccelMode::OutOfOrder, 1e-3);

    // Identical workloads (same seeds, same admission) ...
    assert_eq!(baseline.tokens_generated, topick.tokens_generated);

    // ... but pruned attention shrinks every step, so throughput rises.
    let clock_hz = 500e6;
    let base_tps = baseline.tokens_per_second(clock_hz);
    let tp_tps = topick.tokens_per_second(clock_hz);
    assert!(
        tp_tps > base_tps,
        "ToPick {tp_tps:.1} tokens/s should beat baseline {base_tps:.1} tokens/s"
    );
    assert!(topick.total_cycles < baseline.total_cycles);

    // The pruning statistics show why: most V rows were never fetched.
    assert!(topick.prune.v_reduction() > 1.5);
}
