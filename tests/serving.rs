//! Workspace integration tests of the continuous-batching serving engine:
//! a 16-request mixed-context workload must complete under both
//! accelerator modes, conserve its token accounting, price bigger batches
//! higher, run measurably faster under Token-Picker pruning — and, after
//! the scheduler redesign, the `Fifo` policy must reproduce the
//! pre-refactor engine's schedule bit for bit while preemption-enabled
//! policies bend the latency profile on skewed workloads.

use std::collections::BTreeSet;

use token_picker::accel::{
    AccelConfig, AccelMode, AdmissionConfig, PolicyKind, RetentionPolicy, ServeEvent,
    ServingConfig, ServingEngine, ServingRequest,
};

fn mixed_workload() -> Vec<ServingRequest> {
    // 16 requests with heterogeneous prompts (128..=464 tokens) and
    // targets (2..=6 new tokens) — contexts in one batch intentionally
    // disagree, and they are long enough for attention (not weight
    // streaming) to be a visible share of each step, the regime the paper
    // evaluates.
    (0..16u64)
        .map(|id| ServingRequest::new(id, 128 + (id as usize % 8) * 48, 2 + (id as usize % 5)))
        .collect()
}

fn serving_config(mode: AccelMode, threshold: f64) -> ServingConfig {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission = AdmissionConfig {
        max_batch: 6,
        max_batch_tokens: 4096,
        page_size: 16,
    };
    cfg.seed = 7;
    cfg
}

fn serve(mode: AccelMode, threshold: f64) -> token_picker::accel::ServingReport {
    let mut engine = ServingEngine::new(serving_config(mode, threshold));
    for r in mixed_workload() {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(256).expect("workload completes")
}

#[test]
fn sixteen_request_workload_completes_with_conservation() {
    let report = serve(AccelMode::OutOfOrder, 1e-3);
    let workload = mixed_workload();

    // Conservation: every request finished, generating exactly its target.
    assert_eq!(report.requests.len(), workload.len());
    let expected: usize = workload.iter().map(|r| r.max_new_tokens).sum();
    assert_eq!(report.tokens_generated, expected);
    for req in &workload {
        let stats = report
            .requests
            .iter()
            .find(|s| s.id == req.id)
            .expect("request finished");
        assert_eq!(stats.generated, req.max_new_tokens, "request {}", req.id);
        assert!(stats.admitted_at.is_some());
        assert!(stats.finished_at.unwrap() >= stats.admitted_at.unwrap());
        assert!(stats.attention_cycles > 0);
    }

    // Admission control held at every step.
    for step in &report.steps {
        assert!(step.batch <= 6, "batch {} exceeds limit", step.batch);
        assert!(step.context_tokens <= 4096);
    }

    // Continuous batching actually batched: some step decoded multiple
    // requests concurrently.
    assert!(report.steps.iter().any(|s| s.batch > 1));

    // Cycle accounting is closed: steps sum to the total.
    let sum: u64 = report.steps.iter().map(|s| s.total_cycles()).sum();
    assert_eq!(sum, report.total_cycles);
}

/// Golden schedule of the pre-refactor (PR 1) engine on the 16-request
/// mixed workload above, captured before the scheduler redesign:
/// `(batch, context_tokens, weight_cycles, attention_cycles)` per step.
const GOLDEN_STEPS: [(usize, usize, u64, u64); 13] = [
    (6, 1488, 19532, 1768),
    (6, 1494, 19532, 1796),
    (6, 1880, 19532, 1972),
    (6, 1835, 19532, 1968),
    (6, 1789, 19532, 1964),
    (6, 1595, 19532, 1872),
    (6, 1495, 19532, 1604),
    (6, 1691, 19532, 1916),
    (5, 1753, 19532, 1896),
    (5, 1758, 19532, 1884),
    (2, 791, 19532, 828),
    (1, 420, 19532, 448),
    (1, 421, 19532, 420),
];

/// Golden per-request lifecycle, in completion order:
/// `(id, prompt_len, generated, admitted_at, finished_at, attention_cycles)`.
const GOLDEN_REQUESTS: [(u64, usize, usize, usize, usize, u64); 16] = [
    (0, 128, 2, 0, 1, 440),
    (5, 368, 2, 0, 1, 724),
    (1, 176, 3, 0, 2, 744),
    (2, 224, 4, 0, 3, 1104),
    (3, 272, 5, 0, 4, 1508),
    (6, 416, 3, 2, 4, 1264),
    (4, 320, 6, 0, 5, 2060),
    (7, 464, 4, 2, 5, 1804),
    (10, 224, 2, 5, 6, 584),
    (8, 128, 5, 3, 7, 952),
    (11, 272, 3, 5, 7, 844),
    (9, 176, 6, 4, 9, 1528),
    (12, 320, 4, 6, 9, 1384),
    (15, 464, 2, 8, 9, 932),
    (13, 368, 5, 6, 10, 1876),
    (14, 416, 6, 7, 12, 2588),
];

const GOLDEN_TOTAL_CYCLES: u64 = 274_252;
const GOLDEN_TOKENS: usize = 62;
const GOLDEN_PRUNE_KEPT: usize = 4959;
const GOLDEN_PRUNE_TOKENS: usize = 18_410;
const GOLDEN_CHUNK_FETCHES: [u64; 3] = [18_410, 10_129, 5795];

#[test]
fn fifo_policy_reproduces_the_pre_refactor_engine_exactly() {
    let mut engine = ServingEngine::new(serving_config(AccelMode::OutOfOrder, 1e-3));
    for r in mixed_workload() {
        engine.enqueue(r).expect("valid request");
    }
    let report = engine.run_to_completion(256).expect("workload completes");

    assert_eq!(report.policy, "fifo");
    assert_eq!(report.steps.len(), GOLDEN_STEPS.len());
    for (step, &(batch, ctx, wcyc, acyc)) in report.steps.iter().zip(&GOLDEN_STEPS) {
        assert_eq!(
            (
                step.batch,
                step.context_tokens,
                step.weight_cycles,
                step.attention_cycles
            ),
            (batch, ctx, wcyc, acyc),
            "step {} diverged from the pre-refactor schedule",
            step.index
        );
        assert_eq!(step.reprefill_cycles, 0);
    }

    assert_eq!(report.requests.len(), GOLDEN_REQUESTS.len());
    for (stats, &(id, prompt, gen, adm, fin, acyc)) in report.requests.iter().zip(&GOLDEN_REQUESTS)
    {
        assert_eq!(stats.id, id, "completion order diverged");
        assert_eq!(stats.prompt_len, prompt);
        assert_eq!(stats.generated, gen);
        assert_eq!(stats.enqueued_at, 0);
        assert_eq!(stats.admitted_at, Some(adm), "request {id}");
        assert_eq!(stats.finished_at, Some(fin), "request {id}");
        assert_eq!(stats.attention_cycles, acyc, "request {id}");
        assert_eq!(stats.preemptions, 0);
    }

    assert_eq!(report.total_cycles, GOLDEN_TOTAL_CYCLES);
    assert_eq!(report.tokens_generated, GOLDEN_TOKENS);
    assert_eq!(report.preemptions, 0);
    assert_eq!(report.prune.kept, GOLDEN_PRUNE_KEPT);
    assert_eq!(report.prune.tokens, GOLDEN_PRUNE_TOKENS);
    assert_eq!(report.prune.chunk_fetches, GOLDEN_CHUNK_FETCHES);

    // The event stream agrees with the golden per-step admitted/retired
    // sets derived from the request lifecycles.
    for step in 0..GOLDEN_STEPS.len() {
        let golden_admitted: BTreeSet<u64> = GOLDEN_REQUESTS
            .iter()
            .filter(|&&(_, _, _, adm, _, _)| adm == step)
            .map(|&(id, ..)| id)
            .collect();
        let golden_retired: BTreeSet<u64> = GOLDEN_REQUESTS
            .iter()
            .filter(|&&(_, _, _, _, fin, _)| fin == step)
            .map(|&(id, ..)| id)
            .collect();
        let admitted: BTreeSet<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Admitted { id, step: s, .. } if *s == step => Some(*id),
                _ => None,
            })
            .collect();
        let retired: BTreeSet<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Finished { id, step: s, .. } if *s == step => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(admitted, golden_admitted, "admitted set at step {step}");
        assert_eq!(retired, golden_retired, "retired set at step {step}");
    }
}

#[test]
fn step_cycles_are_monotone_in_batch_attention_work() {
    // Under the baseline (no pruning), a step's attention cycles grow with
    // the attention work it performs (total context tokens in the batch).
    // Compare the extremes, which are far apart in work.
    let report = serve(AccelMode::Baseline, 0.5);
    let min_work = report
        .steps
        .iter()
        .min_by_key(|s| s.context_tokens)
        .expect("steps exist");
    let max_work = report
        .steps
        .iter()
        .max_by_key(|s| s.context_tokens)
        .expect("steps exist");
    assert!(
        max_work.context_tokens > min_work.context_tokens,
        "workload produced uniform steps; test needs heterogeneous work"
    );
    assert!(
        max_work.attention_cycles > min_work.attention_cycles,
        "attention cycles not monotone: work {} -> {} cycles vs work {} -> {} cycles",
        min_work.context_tokens,
        min_work.attention_cycles,
        max_work.context_tokens,
        max_work.attention_cycles
    );

    // Weight streaming is shared per step and constant across steps.
    for w in report.steps.windows(2) {
        assert_eq!(w[0].weight_cycles, w[1].weight_cycles);
    }
}

#[test]
fn topick_serves_more_tokens_per_second_than_baseline() {
    let baseline = serve(AccelMode::Baseline, 0.5);
    let topick = serve(AccelMode::OutOfOrder, 1e-3);

    // Identical workloads (same seeds, same admission) ...
    assert_eq!(baseline.tokens_generated, topick.tokens_generated);

    // ... but pruned attention shrinks every step, so throughput rises.
    let clock_hz = 500e6;
    let base_tps = baseline.tokens_per_second(clock_hz);
    let tp_tps = topick.tokens_per_second(clock_hz);
    assert!(
        tp_tps > base_tps,
        "ToPick {tp_tps:.1} tokens/s should beat baseline {base_tps:.1} tokens/s"
    );
    assert!(topick.total_cycles < baseline.total_cycles);

    // The pruning statistics show why: most V rows were never fetched.
    assert!(topick.prune.v_reduction() > 1.5);
}

fn serve_skewed(policy: PolicyKind, preemption: bool) -> token_picker::accel::ServingReport {
    serve_skewed_with_retention(policy, preemption, RetentionPolicy::None)
}

fn serve_skewed_with_retention(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
) -> token_picker::accel::ServingReport {
    use token_picker::accel::serve::workloads::skewed_elephant_mice;

    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .policy(policy);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    for r in skewed_elephant_mice(4, 12) {
        engine.enqueue(r).expect("valid request");
    }
    engine.run_to_completion(2048).expect("workload completes")
}

#[test]
fn preemption_bends_the_latency_profile_on_a_skewed_workload() {
    let fifo = serve_skewed(PolicyKind::Fifo, false);
    let preempting = serve_skewed(PolicyKind::PriorityAging, true);

    // Same work either way.
    assert_eq!(fifo.tokens_generated, preempting.tokens_generated);
    assert_eq!(fifo.preemptions, 0);

    // Under FIFO the mice sit behind the elephants; priority-with-
    // preemption evicts elephants and serves the mice first, so mean
    // time-to-first-token drops.
    assert!(preempting.preemptions > 0, "no evictions happened");
    assert!(
        preempting.mean_ttft_steps() < fifo.mean_ttft_steps(),
        "preemption should cut mean TTFT: {} vs fifo {}",
        preempting.mean_ttft_steps(),
        fifo.mean_ttft_steps()
    );

    // Eviction is never free: the re-prefill charge makes the two runs'
    // cycle totals (and thus tokens/s) genuinely different profiles.
    let reprefill: u64 = preempting.steps.iter().map(|s| s.reprefill_cycles).sum();
    assert!(reprefill > 0);
    assert_ne!(fifo.total_cycles, preempting.total_cycles);
}

#[test]
fn paged_retention_reprefills_strictly_less_than_full_reprefill() {
    // SRPT (shortest-job-first with preemption) on the canonical skewed
    // workload: under full re-prefill every eviction pays for the victim's
    // whole context; with paged retention only the dropped suffix is
    // rebuilt, so the total re-prefill bill must strictly shrink.
    let full =
        serve_skewed_with_retention(PolicyKind::ShortestJobFirst, true, RetentionPolicy::None);
    let paged = serve_skewed_with_retention(
        PolicyKind::ShortestJobFirst,
        true,
        RetentionPolicy::Fraction(0.75),
    );

    assert!(full.preemptions > 0, "workload must actually preempt");
    assert!(paged.preemptions > 0, "workload must actually preempt");
    assert_eq!(full.tokens_generated, paged.tokens_generated);

    // Full re-prefill retains nothing; paged retention carries real KV
    // prefixes across evictions and re-prefills fewer tokens.
    assert_eq!(full.total_retained_tokens(), 0);
    assert!(paged.total_retained_tokens() > 0);
    assert!(paged.total_reprefilled_tokens() < full.total_reprefilled_tokens());

    // The cycle charge follows the token accounting.
    assert!(
        paged.total_reprefill_cycles() < full.total_reprefill_cycles(),
        "paged retention must cut the re-prefill bill: {} vs {} cycles",
        paged.total_reprefill_cycles(),
        full.total_reprefill_cycles()
    );

    // Per-step and per-request accounting agree.
    for report in [&full, &paged] {
        let by_request: u64 = report.requests.iter().map(|r| r.reprefill_cycles).sum();
        assert_eq!(report.total_reprefill_cycles(), by_request);
    }
}
