//! Workspace-level integration tests spanning every crate: the reference
//! pruner, the transformer substrate, the cycle-level accelerator, the
//! DRAM model, the energy model, and the SpAtten baseline must all agree
//! on the same workloads.

use token_picker::accel::{AccelConfig, AccelMode, ToPickAccelerator};
use token_picker::core::{
    exact_probabilities, weighted_value_sum, PrecisionConfig, ProgressivePruner, PrunerConfig,
    QMatrix, QVector,
};
use token_picker::energy::AreaPowerModel;
use token_picker::model::{
    AttentionBackend, ExactAttention, InstanceSampler, ModelSpec, SynthInstance, SynthProfile,
    TokenPickerAttention, TransformerModel,
};
use token_picker::spatten::TopKAttention;

fn quantized(n: usize, dim: usize, seed: u64) -> (QVector, QMatrix, SynthInstance) {
    let pc = PrecisionConfig::paper();
    let inst = SynthInstance::generate(&SynthProfile::realistic(n, dim), seed);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
    (q, keys, inst)
}

#[test]
fn reference_pruner_and_accelerator_agree_functionally() {
    // The cycle-level OoO accelerator and the reference pruner make
    // decisions in different orders, but both must (a) retain every
    // dominant token and (b) produce outputs close to exact attention.
    let (q, keys, inst) = quantized(256, 64, 9);
    let thr = 1e-3;
    let reference = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr"))
        .run(&q, &keys)
        .expect("reference run");
    let accel =
        ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, thr).expect("cfg"));
    let hw = accel
        .run_attention(&q, &keys, inst.values())
        .expect("accel run");

    let exact = exact_probabilities(&q, &keys);
    let ref_kept: std::collections::HashSet<usize> =
        reference.kept.iter().map(|k| k.index).collect();
    let hw_kept: std::collections::HashSet<usize> = hw.kept.iter().copied().collect();
    for (t, &p) in exact.iter().enumerate() {
        if p > thr {
            assert!(ref_kept.contains(&t), "reference pruned dominant token {t}");
            assert!(
                hw_kept.contains(&t),
                "accelerator pruned dominant token {t}"
            );
        }
    }

    let ref_out = weighted_value_sum(&reference.probability_pairs(), inst.values());
    for (a, b) in ref_out.iter().zip(&hw.output) {
        assert!((a - b).abs() < 0.05, "reference {a} vs accelerator {b}");
    }
}

#[test]
fn end_to_end_generation_with_all_kernels() {
    let model = TransformerModel::new_random(ModelSpec::toy(), 11);
    let prompt = [3usize, 5, 7];
    let mut exact = ExactAttention::new();
    let base = model.generate(&prompt, 12, 0.0, 0, &mut exact);

    // A tight Token-Picker threshold must not change greedy generation.
    let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-7).expect("thr"));
    assert_eq!(base, model.generate(&prompt, 12, 0.0, 0, &mut tp));

    // Fixed-ratio top-k at ratio 1.0 must not change it either.
    let mut topk = TopKAttention::new(1.0);
    assert_eq!(base, model.generate(&prompt, 12, 0.0, 0, &mut topk));
}

#[test]
fn adaptive_beats_fixed_ratio_on_varied_instances() {
    // The core claim of the paper in miniature: over a population with
    // varying dominant-token counts, an adaptive threshold keeps fewer
    // tokens than any fixed ratio that never drops a dominant token.
    let ctx = 384;
    let dim = 64;
    let thr = 1e-3;
    let sampler = InstanceSampler::realistic(ctx, dim);
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr"));

    let mut adaptive_kept = 0usize;
    let mut worst_dominant_frac = 0.0f64;
    let instances = 12usize;
    for i in 0..instances as u64 {
        let inst = sampler.sample(i);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        adaptive_kept += pruner.run(&q, &keys).expect("run").stats.kept;
        worst_dominant_frac =
            worst_dominant_frac.max(inst.dominant_tokens(thr) as f64 / ctx as f64);
    }
    // The safe fixed ratio must be provisioned for the worst instance.
    let fixed_kept = (worst_dominant_frac * ctx as f64).ceil() as usize * instances;
    assert!(
        adaptive_kept < fixed_kept,
        "adaptive {adaptive_kept} should keep fewer than fixed {fixed_kept}"
    );
}

#[test]
fn accelerator_energy_consistent_with_area_power_model() {
    // The energy breakdown and the Table 2 model come from the same 65nm
    // calibration; the accelerator's buffer energy per byte must match the
    // SRAM law the area/power model uses.
    let table = AreaPowerModel::paper().table2();
    let total = table.last().expect("total row");
    assert!(total.area_mm2 > 5.0 && total.area_mm2 < 12.0);

    let (q, keys, inst) = quantized(128, 64, 13);
    let accel = ToPickAccelerator::new(AccelConfig::baseline());
    let r = accel.run_attention(&q, &keys, inst.values()).expect("run");
    assert!(r.energy.dram_pj > 0.0);
    assert!(r.energy.buffer_pj > 0.0);
    assert!(r.energy.compute_pj > 0.0);
    // Memory-bound workload: DRAM dominates.
    let (d, _, _) = r.energy.fractions();
    assert!(d > 0.5, "DRAM fraction {d}");
}

#[test]
fn spatten_and_token_picker_process_identical_caches() {
    // Both kernels must be drop-in replacements over the same KV cache.
    let model = TransformerModel::new_random(ModelSpec::toy(), 17);
    let corpus: Vec<usize> = (0..24).map(|i| (i * 7) % 256).collect();

    let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-3).expect("thr"));
    let mut topk = TopKAttention::new(0.5);
    let a = token_picker::model::evaluate_perplexity(&model, &corpus, &mut tp);
    let b = token_picker::model::evaluate_perplexity(&model, &corpus, &mut topk);
    assert!(a.perplexity.is_finite());
    assert!(b.perplexity.is_finite());
    assert_eq!(a.tokens_scored, b.tokens_scored);
    // Both tracked their accesses.
    assert!(tp.accumulated_stats().expect("stats").tokens > 0);
    assert!(topk.accumulated_stats().expect("stats").tokens > 0);
}

#[test]
fn every_mode_is_sound_on_the_same_instance() {
    let (q, keys, inst) = quantized(192, 64, 21);
    let thr = 1e-3;
    let exact = exact_probabilities(&q, &keys);
    for mode in [
        AccelMode::EstimateOnly,
        AccelMode::OutOfOrder,
        AccelMode::Blocking,
    ] {
        let accel = ToPickAccelerator::new(AccelConfig::paper(mode, thr).expect("cfg"));
        let r = accel.run_attention(&q, &keys, inst.values()).expect("run");
        for (t, &p) in exact.iter().enumerate() {
            if p > thr {
                assert!(r.kept.contains(&t), "{mode:?} pruned dominant token {t}");
            }
        }
    }
}

#[test]
fn value_chunk_extension_composes_with_pruning() {
    // Run the pruner, then plan progressive V fetching over the survivors
    // and verify the truncated output honors its error bound end to end.
    let (q, keys, inst) = quantized(256, 64, 31);
    let pc = PrecisionConfig::paper();
    let outcome = ProgressivePruner::new(PrunerConfig::new(1e-3).expect("thr"))
        .run(&q, &keys)
        .expect("run");
    let pairs = outcome.probability_pairs();
    let qvalues = QMatrix::quantize_flat(inst.values().data(), inst.dim(), pc).expect("non-empty");
    let budget = 1e-2;
    let plan =
        token_picker::core::ValuePlan::compute(&pairs, pc, qvalues.scale(), budget).expect("plan");
    let (approx, bound) = token_picker::core::truncated_weighted_sum(&plan, &pairs, &qvalues);
    assert!(bound <= budget + 1e-12);
    let exact = weighted_value_sum(&pairs, inst.values());
    for (a, b) in approx.iter().zip(&exact) {
        // Budget + quantization slack.
        assert!((a - b).abs() < (budget + 0.05) as f32, "{a} vs {b}");
    }
    assert!(plan.extra_reduction(64) >= 1.0);
}

#[test]
fn decision_trace_explains_accelerator_traffic_shape() {
    // The reference trace's chunk-depth distribution must match the
    // reference pruner's chunk-fetch counters.
    let (q, keys, _) = quantized(128, 64, 37);
    let cfg = PrunerConfig::new(1e-3).expect("thr");
    let events = token_picker::core::trace_pruning(&cfg, &q, &keys).expect("trace");
    let outcome = ProgressivePruner::new(cfg).run(&q, &keys).expect("run");
    let mut per_depth = [0u64; 3];
    for e in &events {
        per_depth[(e.chunks_known - 1) as usize] += 1;
    }
    assert_eq!(per_depth.to_vec(), outcome.stats.chunk_fetches);
}

#[test]
fn prompt_then_generation_pipeline() {
    // Prompt phase preloads and computes causally; generation phase prunes.
    // Run both on consistent shapes to validate the full inference flow.
    let pc = PrecisionConfig::paper();
    let n = 64;
    let inst = SynthInstance::generate(&SynthProfile::realistic(n, 64), 41);
    let queries: Vec<token_picker::core::QVector> = (0..n)
        .map(|i| {
            token_picker::core::QVector::quantize(
                inst.key_row(i), // reuse keys as stand-in queries
                pc,
            )
        })
        .collect();
    let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
    let cfg = AccelConfig::baseline();
    let prompt = token_picker::accel::run_prompt_phase(&cfg, &queries, &keys, inst.values())
        .expect("prompt phase");
    assert_eq!(prompt.outputs.len(), n);

    // Generation step over the same cache.
    let q = QVector::quantize(&inst.query, pc);
    let gen_cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("cfg");
    let gen = ToPickAccelerator::new(gen_cfg)
        .run_attention(&q, &keys, inst.values())
        .expect("generation step");
    assert!(gen.cycles > 0);
}

#[test]
fn batched_step_simulation_uses_model_specs() {
    let (q, keys, inst) = quantized(256, 64, 43);
    let spec = ModelSpec::opt_6_7b();
    let params = token_picker::accel::BatchStepParams {
        weight_bytes: spec.weight_bytes(),
        heads: spec.n_layers * spec.n_heads,
        batch: 64,
    };
    let base_cfg = AccelConfig::baseline();
    let tp_cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("cfg");
    let (base, tp, speedup) = token_picker::accel::compare_batch_step(
        &base_cfg,
        &tp_cfg,
        &params,
        &q,
        &keys,
        inst.values(),
    )
    .expect("batch step");
    // At context 256 (1/8th of the paper's S=2048) the KV share is small
    // but must still be visible and must shrink under ToPick.
    assert!(
        base.attention_fraction > 0.05,
        "{}",
        base.attention_fraction
    );
    assert!(speedup > 1.0, "batched speedup {speedup}");
    assert!(tp.total_cycles() < base.total_cycles());
}
