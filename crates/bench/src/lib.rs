//! # topick-bench
//!
//! Experiment harnesses that regenerate every figure and table in the
//! Token-Picker paper's evaluation (§5), plus the ablation studies listed
//! in DESIGN.md. Each `fig*`/`table*` module exposes a `run(...)` entry
//! point used both by the per-figure binaries (`cargo run -p topick-bench
//! --bin fig8_access_ppl`) and by the `figures` bench target
//! (`cargo bench -p topick-bench --bench figures`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod calibrate;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod json;
pub mod table2;
pub mod util;

pub use calibrate::Calibration;
