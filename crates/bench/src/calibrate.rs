//! ΔPPL-budget calibration of pruning knobs (paper §5.1.3).
//!
//! The paper defines its operating points by allowed perplexity increase on
//! Wikitext-2: ToPick ≤ +0.05 PPL, ToPick-0.3 = +0.3, the Fig. 9 point
//! +0.5. We reproduce the *mechanism* on a teacher-generated corpus (see
//! `topick_model::perplexity`): a bisection finds the loosest threshold
//! (or, for SpAtten, the smallest keep ratio) whose measured ΔPPL stays
//! within budget.

use topick_core::PrunerConfig;
use topick_model::{delta_ppl, teacher_corpus, ModelSpec, TokenPickerAttention, TransformerModel};
use topick_spatten::TopKAttention;

/// A calibration testbed: a model and corpus reused across searches.
#[derive(Debug)]
pub struct Calibration {
    model: TransformerModel,
    corpus: Vec<usize>,
}

impl Calibration {
    /// Builds the standard testbed: a toy-scale model and a 96-token
    /// teacher corpus.
    #[must_use]
    pub fn standard() -> Self {
        let model = TransformerModel::new_random(ModelSpec::toy(), 0xCA11B);
        let corpus = teacher_corpus(&model, 96, 3);
        Self { model, corpus }
    }

    /// Measured ΔPPL of Token-Picker at threshold `thr`.
    #[must_use]
    pub fn topick_delta_ppl(&self, thr: f64) -> f64 {
        let cfg = PrunerConfig::new(thr).expect("threshold in range");
        let mut kernel = TokenPickerAttention::new(cfg);
        delta_ppl(&self.model, &self.corpus, &mut kernel)
    }

    /// Measured ΔPPL of fixed-ratio top-k attention at `keep_ratio`.
    #[must_use]
    pub fn topk_delta_ppl(&self, keep_ratio: f64) -> f64 {
        let mut kernel = TopKAttention::new(keep_ratio);
        delta_ppl(&self.model, &self.corpus, &mut kernel)
    }

    /// Finds the loosest Token-Picker threshold with ΔPPL ≤ `budget` by
    /// bisection over `log10(thr)` in `[-7, -1]`.
    #[must_use]
    pub fn calibrate_topick_threshold(&self, budget: f64) -> f64 {
        let mut lo = -7.0f64; // ΔPPL surely within budget
        let mut hi = -1.0f64; // very aggressive
        if self.topick_delta_ppl(10f64.powf(hi)) <= budget {
            return 10f64.powf(hi);
        }
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if self.topick_delta_ppl(10f64.powf(mid)) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        10f64.powf(lo)
    }

    /// Finds the smallest keep ratio with ΔPPL ≤ `budget` by bisection over
    /// `[0.02, 1.0]`.
    #[must_use]
    pub fn calibrate_topk_ratio(&self, budget: f64) -> f64 {
        let mut lo = 0.02f64; // aggressive
        let mut hi = 1.0f64; // no pruning
        if self.topk_delta_ppl(lo) <= budget {
            return lo;
        }
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if self.topk_delta_ppl(mid) <= budget {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Worst-instance pruned probability mass of Token-Picker at threshold
/// `thr` over a population of synthetic instances at the given context
/// length.
///
/// Pruned mass (the exact-softmax probability of removed tokens) is the
/// accuracy proxy used for the Fig. 9 fairness rule. The *maximum* over the
/// population is what matters: a pruning scheme's accuracy budget must hold
/// on its hardest instances, and that is precisely where a fixed keep ratio
/// loses to adaptive thresholding (paper §2.2.2, Fig. 3).
#[must_use]
pub fn worst_pruned_mass_topick(thr: f64, ctx: usize, dim: usize, instances: usize) -> f64 {
    use topick_core::{exact_probabilities, PrecisionConfig, ProgressivePruner, QMatrix, QVector};
    use topick_model::InstanceSampler;
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr valid"));
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut worst = 0.0f64;
    for i in 0..instances {
        let inst = sampler.sample(0xBA5E + i as u64);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        let outcome = pruner.run(&q, &keys).expect("valid");
        let exact = exact_probabilities(&q, &keys);
        let kept_mass: f64 = outcome.kept.iter().map(|k| exact[k.index]).sum();
        worst = worst.max(1.0 - kept_mass);
    }
    worst
}

/// Worst-instance pruned probability mass of fixed-ratio top-k pruning at
/// `keep_ratio` over the same population.
#[must_use]
pub fn worst_pruned_mass_topk(keep_ratio: f64, ctx: usize, dim: usize, instances: usize) -> f64 {
    use topick_model::InstanceSampler;
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut worst = 0.0f64;
    for i in 0..instances {
        let inst = sampler.sample(0xBA5E + i as u64);
        let mut probs = inst.exact_probabilities();
        probs.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let keep = ((probs.len() as f64) * keep_ratio).ceil() as usize;
        worst = worst.max(probs[keep.min(probs.len())..].iter().sum::<f64>());
    }
    worst
}

/// Finds the loosest Token-Picker threshold whose worst-instance pruned
/// mass stays within `mass_budget` (bisection over `log10(thr)`).
#[must_use]
pub fn calibrate_threshold_to_mass(
    mass_budget: f64,
    ctx: usize,
    dim: usize,
    instances: usize,
) -> f64 {
    let mut lo = -7.0f64;
    let mut hi = -1.0f64;
    if worst_pruned_mass_topick(10f64.powf(hi), ctx, dim, instances) <= mass_budget {
        return 10f64.powf(hi);
    }
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if worst_pruned_mass_topick(10f64.powf(mid), ctx, dim, instances) <= mass_budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    10f64.powf(lo)
}

/// Finds the smallest fixed keep ratio whose worst-instance pruned mass
/// stays within `mass_budget` on the population (bisection over
/// `[0.01, 1.0]`).
#[must_use]
pub fn calibrate_ratio_to_mass(mass_budget: f64, ctx: usize, dim: usize, instances: usize) -> f64 {
    let mut lo = 0.01f64;
    let mut hi = 1.0f64;
    if worst_pruned_mass_topk(lo, ctx, dim, instances) <= mass_budget {
        return lo;
    }
    for _ in 0..14 {
        let mid = 0.5 * (lo + hi);
        if worst_pruned_mass_topk(mid, ctx, dim, instances) <= mass_budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The probability thresholds standing in for the paper's ΔPPL operating
/// points: ToPick (≤ +0.05 PPL), ToPick-0.3, and ToPick-0.5.
///
/// The paper anchors token "dominance" at probability 1e-3 (Fig. 3) and
/// reports that pruning below that scale costs at most +0.05 PPL; the
/// looser operating points trade a little accuracy for pruning ratio. The
/// exact threshold↔ΔPPL correspondence requires the pretrained models we
/// substitute away (DESIGN.md §2), so the reproduction pins the thresholds
/// on the paper's own dominance scale. The ΔPPL *mechanism* is still
/// exercised end-to-end by [`Calibration`] and the Fig. 8 PPL columns.
pub const THR_TOPICK: f64 = 1e-3;
/// ToPick-0.3 operating point (see [`THR_TOPICK`]).
pub const THR_TOPICK_03: f64 = 4e-3;
/// ToPick-0.5 operating point used in Fig. 9 (see [`THR_TOPICK`]).
pub const THR_TOPICK_05: f64 = 8e-3;

/// The largest fraction of *dominant* tokens (exact probability above
/// `p_thr`) in any instance of the population — Fig. 3's "23.5% in
/// instance B". A fixed-ratio scheme that must never drop a dominant token
/// has to provision its keep ratio for this worst case.
#[must_use]
pub fn worst_dominant_fraction(p_thr: f64, ctx: usize, dim: usize, instances: usize) -> f64 {
    use topick_model::InstanceSampler;
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut worst = 0.0f64;
    for i in 0..instances {
        let inst = sampler.sample(0xBA5E + i as u64);
        worst = worst.max(inst.dominant_tokens(p_thr) as f64 / ctx as f64);
    }
    worst
}

/// The largest fraction of tokens that are dominant for *any* of a window
/// of consecutive queries over the same context.
///
/// SpAtten's cascade prunes permanently, ranking tokens by importance
/// accumulated from *past* queries; a token it drops is gone for every
/// future query too. Without fine-tuning, its keep ratio therefore has to
/// cover the union of the dominant sets across upcoming queries, not just
/// one query's — and dominant sets shift from query to query (Fig. 4a's
/// locality window slides; background dominance is query-dependent). This
/// is the mechanism behind the paper's "1.64× higher reduction without
/// fine-tuning" claim, and fine-tuning (SpAtten*) is what relaxes it.
#[must_use]
pub fn worst_union_dominant_fraction(
    p_thr: f64,
    ctx: usize,
    dim: usize,
    instances: usize,
    window: usize,
) -> f64 {
    use topick_model::InstanceSampler;
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut worst = 0.0f64;
    for i in 0..instances {
        let mut dominant = vec![false; ctx];
        for w in 0..window {
            let inst = sampler.sample(0xBA5E + (i * window + w) as u64);
            for (t, &p) in inst.exact_probabilities().iter().enumerate() {
                if p > p_thr {
                    dominant[t] = true;
                }
            }
        }
        let frac = dominant.iter().filter(|&&d| d).count() as f64 / ctx as f64;
        worst = worst.max(frac);
    }
    worst
}

/// The largest fraction of tokens Token-Picker keeps in any instance of
/// the population — the count a *fixed-ratio* scheme must provision for to
/// retain every dominant token in its worst case (the paper's §2.2.2
/// argument for why fixed ratios are wasteful).
#[must_use]
pub fn worst_kept_fraction_topick(thr: f64, ctx: usize, dim: usize, instances: usize) -> f64 {
    use topick_core::{PrecisionConfig, ProgressivePruner, QMatrix, QVector};
    use topick_model::InstanceSampler;
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr valid"));
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut worst = 0.0f64;
    for i in 0..instances {
        let inst = sampler.sample(0xBA5E + i as u64);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        let outcome = pruner.run(&q, &keys).expect("valid");
        worst = worst.max(outcome.stats.kept as f64 / ctx as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn operating_points_are_ordered() {
        assert!(THR_TOPICK < THR_TOPICK_03 && THR_TOPICK_03 < THR_TOPICK_05);
    }

    #[test]
    fn worst_kept_fraction_exceeds_mean() {
        // The whole point of adaptive pruning: the worst instance needs far
        // more tokens than the average one.
        use topick_core::{PrecisionConfig, ProgressivePruner, QMatrix, QVector};
        use topick_model::InstanceSampler;
        let (ctx, dim, instances) = (384, 64, 8);
        let worst = worst_kept_fraction_topick(THR_TOPICK, ctx, dim, instances);
        let pc = PrecisionConfig::paper();
        let pruner = ProgressivePruner::new(PrunerConfig::new(THR_TOPICK).unwrap());
        let sampler = InstanceSampler::realistic(ctx, dim);
        let mut mean = 0.0;
        for i in 0..instances {
            let inst = sampler.sample(0xBA5E + i as u64);
            let q = QVector::quantize(&inst.query, pc);
            let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).unwrap();
            mean += pruner.run(&q, &keys).unwrap().stats.kept as f64 / ctx as f64;
        }
        mean /= instances as f64;
        assert!(worst > 1.3 * mean, "worst {worst} vs mean {mean}");
    }

    #[test]
    fn calibration_budgets_are_monotone() {
        let cal = Calibration::standard();
        let tight = cal.calibrate_topick_threshold(0.05);
        let loose = cal.calibrate_topick_threshold(0.5);
        assert!(
            tight <= loose * 1.001,
            "tighter budget must give tighter threshold: {tight} vs {loose}"
        );
    }

    #[test]
    fn calibrated_threshold_respects_budget() {
        let cal = Calibration::standard();
        let thr = cal.calibrate_topick_threshold(0.3);
        assert!(cal.topick_delta_ppl(thr) <= 0.3 + 1e-9);
    }

    #[test]
    fn topk_ratio_monotone_in_budget() {
        let cal = Calibration::standard();
        let strict = cal.calibrate_topk_ratio(0.05);
        let loose = cal.calibrate_topk_ratio(1.0);
        assert!(loose <= strict + 1e-9);
    }
}
