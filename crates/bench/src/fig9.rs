//! Fig. 9 — normalized memory access of ToPick-0.5 vs SpAtten (and the
//! fine-tuned SpAtten*) on GPT2-Medium across prompt/end length settings.

use topick_core::{PrecisionConfig, ProgressivePruner, PruneStats, PrunerConfig, QMatrix, QVector};
use topick_model::{InstanceSampler, ModelSpec, SynthProfile};
use topick_spatten::{simulate_generation, SpattenConfig};

use crate::util::{bar, header};

/// One prompt/end configuration's normalized accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Prompt length.
    pub prompt: usize,
    /// Total length at the end of generation.
    pub end: usize,
    /// SpAtten normalized access (no fine-tuning).
    pub spatten: f64,
    /// SpAtten* normalized access (fine-tuned operating point).
    pub spatten_ft: f64,
    /// ToPick-0.5 normalized access.
    pub topick: f64,
}

fn topick_normalized(thr: f64, prompt: usize, end: usize, dim: usize, step_stride: usize) -> f64 {
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr valid"));
    let mut agg = PruneStats::new(0, pc.num_chunks());
    let mut step = 0usize;
    while prompt + step < end {
        let ctx = prompt + step;
        let sampler = InstanceSampler::realistic(ctx, dim);
        let inst = sampler.sample(0x919 + step as u64);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        agg.merge(&pruner.run(&q, &keys).expect("valid").stats);
        step += step_stride;
    }
    1.0 / agg.total_reduction(dim, &pc)
}

fn spatten_normalized(
    keep_ratio: f64,
    prompt: usize,
    end: usize,
    layers: usize,
    heads: usize,
    dim: usize,
) -> f64 {
    let cfg = SpattenConfig::new(keep_ratio, layers / 2);
    let access = simulate_generation(
        &cfg,
        prompt,
        end - prompt,
        layers,
        heads,
        dim,
        |step, layer, head, toks| {
            let ctx = prompt + step;
            let profile = SynthProfile::realistic(ctx, dim);
            let seed = 0x5A7 + (step as u64) * 131 + (layer as u64) * 17 + head as u64;
            let scores = profile.sample_scores(seed);
            toks.iter().map(|&t| scores[t]).collect()
        },
    );
    access.normalized()
}

/// Computes every configuration of the figure.
#[must_use]
pub fn compute(fast: bool) -> Vec<Fig9Row> {
    // Fairness rule (paper §2.2.2 / §5.2.1): both designs must retain every
    // token above the paper's dominance scale (p > 1e-3, Fig. 3) for every
    // query. ToPick does this adaptively, per query, by construction.
    // SpAtten prunes *permanently* on past-accumulated importance, so
    // without fine-tuning its fixed ratio must be provisioned for the union
    // of dominant sets across upcoming queries in the worst instance — see
    // `calibrate::worst_union_dominant_fraction`.
    let thr = crate::calibrate::THR_TOPICK;
    let spec = ModelSpec::gpt2_medium();
    let dim = spec.head_dim();
    let cal_instances = if fast { 6 } else { 24 };
    let ratio = crate::calibrate::worst_union_dominant_fraction(thr, 768, dim, cal_instances, 4)
        .clamp(0.02, 1.0);
    // SpAtten*: fine-tuning recovers accuracy, allowing a more aggressive
    // ratio at the same budget (modeled as 40% fewer kept tokens).
    let ratio_ft = (ratio * 0.6).clamp(0.01, ratio);

    let (layers, heads, stride) = if fast { (4, 2, 64) } else { (8, 4, 16) };
    let configs = [
        (256usize, 512usize),
        (256, 768),
        (256, 1024),
        (512, 1024),
        (768, 1024),
    ];
    configs
        .into_iter()
        .map(|(prompt, end)| Fig9Row {
            prompt,
            end,
            spatten: spatten_normalized(ratio, prompt, end, layers, heads, dim),
            spatten_ft: spatten_normalized(ratio_ft, prompt, end, layers, heads, dim),
            topick: topick_normalized(thr, prompt, end, dim, stride),
        })
        .collect()
}

/// Prints the figure.
pub fn run(fast: bool) {
    header("Fig. 9 — normalized memory access vs SpAtten (GPT2-Medium, +0.5 PPL)");
    println!(
        "{:<12} {:>9} {:>10} {:>11}   (lower is better; baseline = 1.00)",
        "prompt-end", "SpAtten", "SpAtten*", "ToPick-0.5"
    );
    let mut adv = 0.0;
    let rows = compute(fast);
    for r in &rows {
        println!(
            "{:<12} {:>9.2} {:>10.2} {:>11.2}   {}",
            format!("{}-{}", r.prompt, r.end),
            r.spatten,
            r.spatten_ft,
            r.topick,
            bar(r.topick, 20)
        );
        adv += r.spatten / r.topick;
    }
    println!();
    println!(
        "mean access advantage over un-fine-tuned SpAtten: {:.2}x (paper: 1.64x)",
        adv / rows.len() as f64
    );
    println!("paper shape: ToPick wins everywhere except the longest-prompt cascade settings");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topick_beats_unfinetuned_spatten_on_average() {
        let rows = compute(true);
        assert_eq!(rows.len(), 5);
        let mean_tp: f64 = rows.iter().map(|r| r.topick).sum::<f64>() / 5.0;
        let mean_sp: f64 = rows.iter().map(|r| r.spatten).sum::<f64>() / 5.0;
        assert!(
            mean_tp < mean_sp,
            "ToPick {mean_tp} should beat SpAtten {mean_sp}"
        );
    }

    #[test]
    fn all_configs_reduce_access() {
        for r in compute(true) {
            assert!(r.spatten < 1.0);
            assert!(r.spatten_ft <= r.spatten + 1e-9);
            assert!(r.topick < 1.0);
        }
    }
}
