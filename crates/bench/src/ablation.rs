//! Ablation studies of the design choices DESIGN.md calls out: scan order,
//! chunk width, and out-of-order vs blocking execution.

use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
use topick_core::{
    PrecisionConfig, ProgressivePruner, PruneStats, PrunerConfig, QMatrix, QVector, ScanOrder,
    ValuePlan,
};
use topick_model::InstanceSampler;

use crate::util::header;

fn aggregate_with(cfg: PrunerConfig, ctx: usize, dim: usize, instances: usize) -> PruneStats {
    let pruner = ProgressivePruner::new(cfg);
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut agg = PruneStats::new(0, cfg.precision().num_chunks());
    for i in 0..instances {
        let inst = sampler.sample(0xAB1 + i as u64);
        let q = QVector::quantize(&inst.query, cfg.precision());
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), cfg.precision())
            .expect("non-empty");
        agg.merge(&pruner.run(&q, &keys).expect("valid").stats);
    }
    agg
}

/// Scan-order ablation: how much K traffic each probe order costs.
pub fn run_order(fast: bool) {
    header("Ablation — scan order (K traffic and pruning at thr=1e-3)");
    let (ctx, instances) = if fast { (512, 4) } else { (1024, 16) };
    let dim = 64;
    let pc = PrecisionConfig::paper();
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "order", "K reduction", "V reduction", "mean chunks"
    );
    for order in [
        ScanOrder::FirstAndReverse,
        ScanOrder::ReverseChronological,
        ScanOrder::Sequential,
    ] {
        let cfg = PrunerConfig::new(1e-3).expect("thr").with_order(order);
        let s = aggregate_with(cfg, ctx, dim, instances);
        let mean_chunks = s.chunk_fetches.iter().sum::<u64>() as f64 / s.tokens as f64;
        println!(
            "{:<22} {:>11.2}x {:>11.1}x {:>12.2}",
            format!("{order:?}"),
            s.k_reduction(dim, &pc),
            s.v_reduction(),
            mean_chunks
        );
    }
    println!("(the paper's first+reverse order should fetch the fewest chunks)");
}

/// Chunk-width ablation: 12-bit operands split 2/4/6/12 ways.
pub fn run_chunks(fast: bool) {
    header("Ablation — chunk width (12-bit operands)");
    let (ctx, instances) = if fast { (512, 4) } else { (1024, 16) };
    let dim = 64;
    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "chunk bits", "K reduction", "V reduction", "decisions/tok"
    );
    for chunk_bits in [2u32, 4, 6, 12] {
        let pc = PrecisionConfig::new(12, chunk_bits).expect("divides 12");
        let cfg = PrunerConfig::new(1e-3).expect("thr").with_precision(pc);
        let s = aggregate_with(cfg, ctx, dim, instances);
        let evals = s.chunk_fetches.iter().sum::<u64>() as f64 / s.tokens as f64;
        println!(
            "{:<14} {:>11.2}x {:>11.1}x {:>14.2}",
            chunk_bits,
            s.k_reduction(dim, &pc),
            s.v_reduction(),
            evals
        );
    }
    println!("(finer chunks prune earlier but pay more decision passes)");
}

/// Out-of-order vs blocking pipeline ablation (cycle counts).
pub fn run_ooo(fast: bool) {
    header("Ablation — out-of-order vs blocking chunk requests");
    let contexts: &[usize] = if fast {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let pc = PrecisionConfig::paper();
    println!(
        "{:<8} {:>12} {:>12} {:>9}",
        "context", "OoO cycles", "blocking", "gain"
    );
    for &ctx in contexts {
        let sampler = InstanceSampler::realistic(ctx, 64);
        let inst = sampler.sample(0x000);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        let run = |mode: AccelMode| {
            ToPickAccelerator::new(AccelConfig::paper(mode, 1e-3).expect("thr"))
                .run_attention(&q, &keys, inst.values())
                .expect("run")
                .cycles
        };
        let ooo = run(AccelMode::OutOfOrder);
        let blocking = run(AccelMode::Blocking);
        println!(
            "{:<8} {:>12} {:>12} {:>8.2}x",
            ctx,
            ooo,
            blocking,
            blocking as f64 / ooo as f64
        );
    }
    println!("(paper: out-of-order contributes ~1.32x of the total speedup)");
}

/// Scoreboard-depth ablation: out-of-order cycles vs entries per lane.
pub fn run_scoreboard(fast: bool) {
    header("Ablation — scoreboard depth (entries per lane)");
    let ctx = if fast { 256 } else { 1024 };
    let pc = PrecisionConfig::paper();
    let inst = InstanceSampler::realistic(ctx, 64).sample(0x5B);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
    println!("{:<10} {:>10}", "entries", "cycles");
    for entries in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        cfg.scoreboard_entries = entries;
        let cycles = ToPickAccelerator::new(cfg)
            .run_attention(&q, &keys, inst.values())
            .expect("run")
            .cycles;
        println!("{entries:<10} {cycles:>10}");
    }
    println!("(the paper's 32 entries are conservative; ~8 suffice at these contexts)");
}

/// Progressive V-fetch extension: extra V reduction vs output-error budget.
pub fn run_vchunks(fast: bool) {
    header("Extension — progressive V chunk fetching (beyond the paper)");
    let ctx = if fast { 256 } else { 1024 };
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).expect("thr"));
    let inst = InstanceSampler::realistic(ctx, 64).sample(0x7C);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
    let values = QMatrix::quantize_flat(inst.values().data(), inst.dim(), pc).expect("non-empty");
    let outcome = pruner.run(&q, &keys).expect("run");
    let pairs = outcome.probability_pairs();
    println!(
        "{:<14} {:>14} {:>14}",
        "error budget", "extra V red.", "error bound"
    );
    for budget in [1e-4, 1e-3, 1e-2, 1e-1] {
        let plan = ValuePlan::compute(&pairs, pc, values.scale(), budget).expect("budget");
        let (_, bound) = topick_core::truncated_weighted_sum(&plan, &pairs, &values);
        println!(
            "{budget:<14.0e} {:>13.2}x {:>14.2e}",
            plan.extra_reduction(64),
            bound
        );
    }
    println!("(low-probability survivors need only their V MSB chunks)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_fetches_fewest_chunks() {
        let dim = 64;
        let mk = |order| {
            let cfg = PrunerConfig::new(1e-3).unwrap().with_order(order);
            aggregate_with(cfg, 384, dim, 4)
                .chunk_fetches
                .iter()
                .sum::<u64>()
        };
        let fr = mk(ScanOrder::FirstAndReverse);
        let seq = mk(ScanOrder::Sequential);
        assert!(fr <= seq, "first+reverse {fr} should beat sequential {seq}");
    }

    #[test]
    fn scoreboard_depth_monotone() {
        let pc = PrecisionConfig::paper();
        let inst = InstanceSampler::realistic(192, 64).sample(1);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).unwrap();
        let run = |entries| {
            let mut cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap();
            cfg.scoreboard_entries = entries;
            ToPickAccelerator::new(cfg)
                .run_attention(&q, &keys, inst.values())
                .unwrap()
                .cycles
        };
        assert!(run(1) >= run(32), "deeper scoreboard should not be slower");
    }

    #[test]
    fn coarser_chunks_reduce_decision_count() {
        let mk = |bits| {
            let pc = PrecisionConfig::new(12, bits).unwrap();
            let cfg = PrunerConfig::new(1e-3).unwrap().with_precision(pc);
            let s = aggregate_with(cfg, 256, 64, 2);
            s.chunk_fetches.iter().sum::<u64>()
        };
        assert!(mk(12) <= mk(4));
        assert!(mk(4) <= mk(2));
    }
}
