//! Runs the scan-order, chunk-width and out-of-order ablations.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::ablation::run_order(fast);
    topick_bench::ablation::run_chunks(fast);
    topick_bench::ablation::run_ooo(fast);
    topick_bench::ablation::run_scoreboard(fast);
    topick_bench::ablation::run_vchunks(fast);
}
