//! `serving_throughput` — sweeps the continuous-batching serving engine
//! over batch size × pruning threshold and emits one JSON document on
//! stdout, so future changes can be regression-checked for tokens/s.
//!
//! ```sh
//! cargo run --release -p topick-bench --bin serving_throughput
//! cargo run --release -p topick-bench --bin serving_throughput -- --requests 32
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use topick_accel::{
    AccelConfig, AccelMode, AdmissionConfig, ServingConfig, ServingEngine, ServingRequest,
};

struct SweepPoint {
    mode: &'static str,
    threshold: f64,
    max_batch: usize,
    tokens: usize,
    steps: usize,
    total_cycles: u64,
    tokens_per_s: f64,
    v_reduction: f64,
}

fn run_point(
    mode: AccelMode,
    mode_name: &'static str,
    threshold: f64,
    max_batch: usize,
    requests: u64,
) -> SweepPoint {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission = AdmissionConfig {
        max_batch,
        max_batch_tokens: max_batch * 600,
    };
    cfg.seed = 1;
    let clock_hz = cfg.clock_hz;
    let mut engine = ServingEngine::new(cfg);
    for id in 0..requests {
        engine
            .enqueue(ServingRequest {
                id,
                prompt_len: 128 + (id as usize % 8) * 48,
                max_new_tokens: 2 + (id as usize % 4),
            })
            .expect("valid request");
    }
    let report = engine.run_to_completion(100_000).expect("completes");
    SweepPoint {
        mode: mode_name,
        threshold,
        max_batch,
        tokens: report.tokens_generated,
        steps: report.steps.len(),
        total_cycles: report.total_cycles,
        tokens_per_s: report.tokens_per_second(clock_hz),
        v_reduction: report.prune.v_reduction(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            flags.insert(name.to_string(), args[i + 1].clone());
        }
        i += 2;
    }
    let requests: u64 = flags
        .get("requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    let mut points = Vec::new();
    for &max_batch in &[1usize, 2, 4, 8] {
        points.push(run_point(
            AccelMode::Baseline,
            "baseline",
            0.5,
            max_batch,
            requests,
        ));
        for &thr in &[1e-2f64, 1e-3, 1e-4] {
            points.push(run_point(
                AccelMode::OutOfOrder,
                "topick",
                thr,
                max_batch,
                requests,
            ));
        }
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let mut out = String::from("{\n  \"bench\": \"serving_throughput\",\n");
    let _ = writeln!(out, "  \"requests\": {requests},");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"threshold\": {:e}, \"max_batch\": {}, \
             \"tokens\": {}, \"steps\": {}, \"total_cycles\": {}, \
             \"tokens_per_s\": {:.1}, \"v_reduction\": {:.3}}}",
            p.mode,
            p.threshold,
            p.max_batch,
            p.tokens,
            p.steps,
            p.total_cycles,
            p.tokens_per_s,
            p.v_reduction
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}");
    println!("{out}");
}
