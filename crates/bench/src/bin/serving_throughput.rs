//! `serving_throughput` — regression bench of the serving engine. Four
//! sweeps, one JSON document on stdout:
//!
//! 1. **Throughput sweep** (`points`): batch size × pruning threshold
//!    under the FIFO policy, so tokens/s regressions are caught.
//! 2. **Policy sweep** (`policies`): every scheduler policy on a skewed
//!    elephant/mice workload, with and without preemption, so scheduling
//!    regressions (mean TTFT, queue wait, eviction counts) are caught too.
//! 3. **Prefix sweep** (`prefix`): the shared-prefix chat workload with
//!    prompt prefill priced, cache off vs on, so the re-prefill saving
//!    and hit rate prefix caching buys are pinned per run.
//! 4. **Shard sweep** (`shards`): the cluster engine at increasing shard
//!    counts — round-robin vs least-loaded + stealing on the skewed
//!    workload (makespan scaling, steal counts, load imbalance) and
//!    round-robin vs prefix-affinity on the shared-prefix workload (the
//!    cluster hit rate affinity routing recovers).
//!
//! ```sh
//! cargo run --release -p topick-bench --bin serving_throughput
//! cargo run --release -p topick-bench --bin serving_throughput -- --requests 32
//! cargo run --release -p topick-bench --bin serving_throughput -- --quick            # CI mode
//! cargo run --release -p topick-bench --bin serving_throughput -- --quick --shards 4
//! ```

use std::collections::HashMap;

use topick_accel::serve::workloads::{shared_prefix_chat, skewed_elephant_mice};
use topick_accel::{
    AccelConfig, AccelMode, ClusterEngine, ClusterReport, PolicyKind, RetentionPolicy, RoutingKind,
    ServingEngine, ServingReport, ServingRequest,
};
use topick_bench::json::{JsonObject, JsonValue};

fn run_point(
    mode: AccelMode,
    mode_name: &'static str,
    threshold: f64,
    max_batch: usize,
    requests: u64,
) -> JsonValue {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(max_batch)
        .max_batch_tokens(max_batch * 600)
        .seed(1)
        .record_events(false)
        .build();
    let clock_hz = engine.config().clock_hz;
    for id in 0..requests {
        engine
            .enqueue(ServingRequest::new(
                id,
                128 + (id as usize % 8) * 48,
                2 + (id as usize % 4),
            ))
            .expect("valid request");
    }
    let report = engine.run_to_completion(100_000).expect("completes");
    JsonObject::new()
        .field("mode", mode_name)
        .field("threshold", JsonValue::Sci(threshold))
        .field("max_batch", max_batch)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field(
            "v_reduction",
            JsonValue::Prec(report.prune.v_reduction(), 3),
        )
        .into()
}

/// Skewed workload: a few long low-priority "elephants" from one client
/// fill the batch, then short high-priority "mice" from other clients
/// arrive behind them — the regime where scheduling policy, preemption
/// and paged KV retention visibly bend the TTFT/re-prefill profile.
fn run_policy(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    mice: u64,
) -> (ServingReport, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .record_events(false)
        .policy(policy);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    let clock_hz = engine.config().clock_hz;
    for r in skewed_elephant_mice(4, mice) {
        engine.enqueue(r).expect("valid request");
    }
    (
        engine.run_to_completion(100_000).expect("completes"),
        clock_hz,
    )
}

fn policy_record(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    mice: u64,
) -> JsonValue {
    let (report, clock_hz) = run_policy(policy, preemption, retention, mice);
    let retention_label = match (preemption, retention) {
        (false, _) => "off",
        (true, RetentionPolicy::None) => "full-reprefill",
        (true, _) => "paged",
    };
    JsonObject::new()
        .field("policy", report.policy.as_str())
        .field("preemption", preemption)
        .field("retention", retention_label)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field(
            "mean_ttft_steps",
            JsonValue::Prec(report.mean_ttft_steps(), 2),
        )
        .field(
            "mean_queue_wait_steps",
            JsonValue::Prec(report.mean_queue_wait_steps(), 2),
        )
        .field("preemptions", report.preemptions)
        .field("reprefill_cycles", report.total_reprefill_cycles())
        .field("reprefilled_tokens", report.total_reprefilled_tokens())
        .field("retained_tokens", report.total_retained_tokens())
        .into()
}

/// Shared-prefix workload with prompt prefill priced: one record per
/// cache setting, pinning the prefill/re-prefill bill and the hit rate.
fn prefix_record(prefix_cache: bool, tenants: u64, per_tenant: u64) -> JsonValue {
    use topick_accel::serve::workloads::shared_prefix_engine;
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = shared_prefix_engine(accel, prefix_cache)
        .record_events(false)
        .build();
    let clock_hz = engine.config().clock_hz;
    for r in shared_prefix_chat(11, tenants, per_tenant) {
        engine.enqueue(r).expect("valid request");
    }
    let report = engine.run_to_completion(100_000).expect("completes");
    JsonObject::new()
        .field("policy", report.policy.as_str())
        .field("prefix_cache", prefix_cache)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field("prefill_cycles", report.total_prefill_cycles())
        .field("reprefill_cycles", report.total_reprefill_cycles())
        .field("prefix_hit_tokens", report.total_prefix_hit_tokens())
        .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
        .into()
}

/// One cluster run: the canonical skewed workload (FIFO per shard) or the
/// shared-prefix chat workload (prefix cache + priced prefill per shard),
/// at the given shard count and routing policy.
fn run_cluster(
    workload: &str,
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
    mice: u64,
    tenants: u64,
    per_tenant: u64,
) -> (ClusterReport, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    // The skewed branch mirrors the canonical policy-sweep engine; the
    // shared-prefix branch is the canonical cluster from serve::workloads
    // so the bench stays comparable with the equivalence tests.
    let builder = if workload == "skewed" {
        ClusterEngine::builder(accel)
            .heads(4)
            .weight_bytes(10_000_000)
            .seed(7)
            .max_batch(4)
            .max_batch_tokens(2200)
    } else {
        topick_accel::serve::workloads::shared_prefix_cluster(accel, true)
    };
    let mut cluster = builder
        .record_events(false)
        .shards(shards)
        .routing(routing)
        .stealing(stealing)
        .build();
    let clock_hz = cluster.shard(0).config().clock_hz;
    let requests = if workload == "skewed" {
        skewed_elephant_mice(4, mice)
    } else {
        shared_prefix_chat(11, tenants, per_tenant)
    };
    for r in requests {
        cluster.enqueue(r).expect("valid request");
    }
    (
        cluster.run_to_completion(100_000).expect("completes"),
        clock_hz,
    )
}

fn shard_record(
    workload: &str,
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
    mice: u64,
    tenants: u64,
    per_tenant: u64,
) -> JsonValue {
    let (report, clock_hz) = run_cluster(
        workload, shards, routing, stealing, mice, tenants, per_tenant,
    );
    JsonObject::new()
        .field("workload", workload)
        .field("shards", shards)
        .field("routing", report.routing.as_str())
        .field("stealing", stealing)
        .field("tokens", report.tokens_generated())
        .field("cluster_steps", report.cluster_steps)
        .field("makespan_cycles", report.total_cycles)
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field("steals", report.steals)
        .field(
            "load_imbalance",
            JsonValue::Prec(report.load_imbalance(), 3),
        )
        .field("prefill_cycles", report.total_prefill_cycles())
        .field("prefix_hit_tokens", report.total_prefix_hit_tokens())
        .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
        .into()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    let quick = flags.contains_key("quick");
    let requests: u64 = flags
        .get("requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 16 });

    let batches: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let thresholds: &[f64] = if quick { &[1e-3] } else { &[1e-2, 1e-3, 1e-4] };
    let mice: u64 = if quick { 6 } else { 12 };

    let mut points = Vec::new();
    for &max_batch in batches {
        points.push(run_point(
            AccelMode::Baseline,
            "baseline",
            0.5,
            max_batch,
            requests,
        ));
        for &thr in thresholds {
            points.push(run_point(
                AccelMode::OutOfOrder,
                "topick",
                thr,
                max_batch,
                requests,
            ));
        }
    }

    // One record per policy without preemption, plus — for each policy
    // that actually preempts (FIFO never does) — a full-re-prefill run
    // and a paged-retention run, so the bench pins the re-prefill saving
    // retention buys per policy.
    let mut policies = Vec::new();
    for kind in PolicyKind::all() {
        policies.push(policy_record(kind, false, RetentionPolicy::None, mice));
    }
    for kind in [
        PolicyKind::PriorityAging,
        PolicyKind::ShortestJobFirst,
        PolicyKind::FairRoundRobin,
    ] {
        policies.push(policy_record(kind, true, RetentionPolicy::None, mice));
        policies.push(policy_record(
            kind,
            true,
            RetentionPolicy::Fraction(0.75),
            mice,
        ));
    }

    // Prefix caching off vs on at equal generated tokens: the off record
    // is the prefill bill sharing exists to shrink, the on record shows
    // what it recovered (hit rate included).
    let (tenants, per_tenant) = if quick { (3, 4) } else { (4, 6) };
    let prefix = vec![
        prefix_record(false, tenants, per_tenant),
        prefix_record(true, tenants, per_tenant),
    ];

    // Shard sweep: 1 shard is the golden-pinned identity baseline; each
    // larger count contrasts load-blind routing against least-loaded +
    // stealing (skewed workload) and against prefix-affinity
    // (shared-prefix workload, where per-shard caches make routing the
    // difference between scattering and recovering the hit rate).
    // `--shards N` narrows the sweep to [1, N] (the CI invocation).
    let shard_counts: Vec<usize> = match flags.get("shards").and_then(|v| v.parse().ok()) {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None if quick => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let mut shards = Vec::new();
    for &n in &shard_counts {
        shards.push(shard_record(
            "skewed",
            n,
            RoutingKind::RoundRobin,
            false,
            mice,
            tenants,
            per_tenant,
        ));
        if n > 1 {
            shards.push(shard_record(
                "skewed",
                n,
                RoutingKind::LeastLoaded,
                true,
                mice,
                tenants,
                per_tenant,
            ));
        }
        shards.push(shard_record(
            "shared-prefix",
            n,
            RoutingKind::RoundRobin,
            false,
            mice,
            tenants,
            per_tenant,
        ));
        if n > 1 {
            shards.push(shard_record(
                "shared-prefix",
                n,
                RoutingKind::PrefixAffinity,
                false,
                mice,
                tenants,
                per_tenant,
            ));
        }
    }

    let doc = JsonObject::new()
        .field("bench", "serving_throughput")
        .field("requests", requests)
        .field("quick", quick)
        .field("points", points)
        .field("policies", policies)
        .field("prefix", prefix)
        .field("shards", shards);
    println!("{}", doc.render());
}
