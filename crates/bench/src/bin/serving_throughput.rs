//! `serving_throughput` — regression bench of the serving engine. Four
//! sweeps, one JSON document on stdout:
//!
//! 1. **Throughput sweep** (`points`): batch size × pruning threshold
//!    under the FIFO policy, so tokens/s regressions are caught.
//! 2. **Policy sweep** (`policies`): every scheduler policy on a skewed
//!    elephant/mice workload, with and without preemption, so scheduling
//!    regressions (mean TTFT, queue wait, eviction counts) are caught too.
//! 3. **Prefix sweep** (`prefix`): the shared-prefix chat workload with
//!    prompt prefill priced, cache off vs on, so the re-prefill saving
//!    and hit rate prefix caching buys are pinned per run.
//! 4. **Shard sweep** (`shards`): the cluster engine at increasing shard
//!    counts — round-robin vs least-loaded + stealing on the skewed
//!    workload (makespan scaling, steal counts, load imbalance) and
//!    round-robin vs prefix-affinity on the shared-prefix workload (the
//!    cluster hit rate affinity routing recovers). With `--threads N`,
//!    every multi-shard point gains a threaded twin stepping shards on
//!    `N` OS threads.
//!
//! Every record carries both the *modeled* cycle count and the *measured*
//! wall-clock milliseconds of the run, side by side.
//!
//! `--threads-sweep` replaces all of the above with the dedicated
//! threading document checked in as `BENCH_serving_threads.json`:
//! shards ∈ {1, 2, 4, 8} on the skewed workload, sequential vs threaded
//! (one worker per shard), best-of-3 wall times, with the
//! threaded-over-sequential speedup computed per shard count.
//!
//! `--scenario-sweep` likewise replaces everything with the scenario
//! document checked in as `BENCH_serving_scenarios.json`: every scenario
//! in the registry on a single engine plus a 4-shard cluster contrast of
//! round-robin vs prefix-affinity routing, each record carrying tokens/s,
//! prefix hit rate, a TTFT-bounded goodput proxy, measured wall_ms and
//! the run's schedule digest — with the agentic scenario's
//! affinity-over-round-robin hit-rate margin pinned at the top level.
//!
//! `--slo-sweep` emits the SLO document checked in as
//! `BENCH_serving_slo.json`: goodput and deadline attainment vs load on
//! the two deadline-carrying scenarios (`long-doc-summarize`, `diurnal`),
//! chunk budgets {unlimited, 4, 16 pages/step} × {fifo, sjf, slo-aware},
//! each record carrying TTFT p99 and the worst per-step prefill stall.
//!
//! `--e2e-sweep` emits the real-token end-to-end document checked in as
//! `BENCH_serving_e2e.json`: the shared-prefix chat workload (cache on,
//! cache off, chunked prefill) and the skewed eviction workload under
//! priority-aging preemption with paged retention, each served through
//! the token-backed mirror so a real synth model generates every token
//! out of one shared paged KV store. Each record carries the engine's
//! charged cycles next to the kernel cycles the mirror measured, the
//! peak/drained shared-page counts, and *asserts* (not just reports)
//! that every request's tokens are byte-identical to a private
//! unsharded `generate` — the checked-in document doubles as the e2e
//! regression gate.
//!
//! `--tiered-sweep` emits the tiered-KV document checked in as
//! `BENCH_serving_tiered.json`: the host-swap cost crossover (copy-back
//! factors {0.25, 0.5, 1.0, 1.5} against drop-and-re-prefill on the
//! skewed eviction workload) and the cross-shard prefix-shipping saving
//! (ship off vs 0.25 on a 4-shard round-robin shared-prefix cluster) —
//! both margins asserted inside the sweep, so the bench doubles as a
//! regression gate.
//!
//! ```sh
//! cargo run --release -p topick-bench --bin serving_throughput
//! cargo run --release -p topick-bench --bin serving_throughput -- --requests 32
//! cargo run --release -p topick-bench --bin serving_throughput -- --quick            # CI mode
//! cargo run --release -p topick-bench --bin serving_throughput -- --quick --shards 4 --threads 4
//! cargo run --release -p topick-bench --bin serving_throughput -- --threads-sweep > BENCH_serving_threads.json
//! cargo run --release -p topick-bench --bin serving_throughput -- --scenario-sweep > BENCH_serving_scenarios.json
//! cargo run --release -p topick-bench --bin serving_throughput -- --slo-sweep > BENCH_serving_slo.json
//! cargo run --release -p topick-bench --bin serving_throughput -- --tiered-sweep > BENCH_serving_tiered.json
//! cargo run --release -p topick-bench --bin serving_throughput -- --e2e-sweep > BENCH_serving_e2e.json
//! ```

use std::collections::HashMap;
use std::time::Instant;

use topick_accel::serve::trace::{run_recorded, RunReport, TraceMeta};
use topick_accel::serve::workloads::{shared_prefix_chat, skewed_elephant_mice};
use topick_accel::{
    AccelConfig, AccelMode, ClusterEngine, ClusterReport, PolicyKind, RequestStats,
    RetentionPolicy, RoutingKind, ScenarioKind, ServingEngine, ServingReport, ServingRequest,
};
use topick_bench::json::{JsonObject, JsonValue};
use topick_model::ModelSpec;

fn run_point(
    mode: AccelMode,
    mode_name: &'static str,
    threshold: f64,
    max_batch: usize,
    requests: u64,
) -> JsonValue {
    let accel = AccelConfig::paper(mode, threshold).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(max_batch)
        .max_batch_tokens(max_batch * 600)
        .seed(1)
        .record_events(false)
        .build();
    let clock_hz = engine.config().clock_hz;
    for id in 0..requests {
        engine
            .enqueue(ServingRequest::new(
                id,
                128 + (id as usize % 8) * 48,
                2 + (id as usize % 4),
            ))
            .expect("valid request");
    }
    let start = Instant::now();
    let report = engine.run_to_completion(100_000).expect("completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    JsonObject::new()
        .field("mode", mode_name)
        .field("threshold", JsonValue::Sci(threshold))
        .field("max_batch", max_batch)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field(
            "v_reduction",
            JsonValue::Prec(report.prune.v_reduction(), 3),
        )
        .into()
}

/// Skewed workload: a few long low-priority "elephants" from one client
/// fill the batch, then short high-priority "mice" from other clients
/// arrive behind them — the regime where scheduling policy, preemption
/// and paged KV retention visibly bend the TTFT/re-prefill profile.
fn run_policy(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    mice: u64,
) -> (ServingReport, f64, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut builder = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .record_events(false)
        .policy(policy);
    if preemption {
        builder = builder.enable_preemption().retention(retention);
    }
    let mut engine = builder.build();
    let clock_hz = engine.config().clock_hz;
    for r in skewed_elephant_mice(4, mice) {
        engine.enqueue(r).expect("valid request");
    }
    let start = Instant::now();
    let report = engine.run_to_completion(100_000).expect("completes");
    (report, clock_hz, start.elapsed().as_secs_f64() * 1e3)
}

fn policy_record(
    policy: PolicyKind,
    preemption: bool,
    retention: RetentionPolicy,
    mice: u64,
) -> JsonValue {
    let (report, clock_hz, wall_ms) = run_policy(policy, preemption, retention, mice);
    let retention_label = match (preemption, retention) {
        (false, _) => "off",
        (true, RetentionPolicy::None) => "full-reprefill",
        (true, _) => "paged",
    };
    JsonObject::new()
        .field("policy", report.policy.as_str())
        .field("preemption", preemption)
        .field("retention", retention_label)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field(
            "mean_ttft_steps",
            JsonValue::Prec(report.mean_ttft_steps(), 2),
        )
        .field(
            "mean_queue_wait_steps",
            JsonValue::Prec(report.mean_queue_wait_steps(), 2),
        )
        .field("preemptions", report.preemptions)
        .field("reprefill_cycles", report.total_reprefill_cycles())
        .field("reprefilled_tokens", report.total_reprefilled_tokens())
        .field("retained_tokens", report.total_retained_tokens())
        .into()
}

/// Shared-prefix workload with prompt prefill priced: one record per
/// cache setting, pinning the prefill/re-prefill bill and the hit rate.
fn prefix_record(prefix_cache: bool, tenants: u64, per_tenant: u64) -> JsonValue {
    use topick_accel::serve::workloads::shared_prefix_engine;
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = shared_prefix_engine(accel, prefix_cache)
        .record_events(false)
        .build();
    let clock_hz = engine.config().clock_hz;
    for r in shared_prefix_chat(11, tenants, per_tenant) {
        engine.enqueue(r).expect("valid request");
    }
    let start = Instant::now();
    let report = engine.run_to_completion(100_000).expect("completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    JsonObject::new()
        .field("policy", report.policy.as_str())
        .field("prefix_cache", prefix_cache)
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field("prefill_cycles", report.total_prefill_cycles())
        .field("reprefill_cycles", report.total_reprefill_cycles())
        .field("prefix_hit_tokens", report.total_prefix_hit_tokens())
        .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
        .into()
}

/// Sizing of the two cluster workloads, shared across the shard sweep.
#[derive(Clone, Copy)]
struct WorkloadSize {
    mice: u64,
    tenants: u64,
    per_tenant: u64,
}

/// One cluster run: the canonical skewed workload (FIFO per shard) or the
/// shared-prefix chat workload (prefix cache + priced prefill per shard),
/// at the given shard count, routing policy and worker thread count.
fn run_cluster(
    workload: &str,
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
    threads: usize,
    size: WorkloadSize,
) -> (ClusterReport, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    // The skewed branch mirrors the canonical policy-sweep engine; the
    // shared-prefix branch is the canonical cluster from serve::workloads
    // so the bench stays comparable with the equivalence tests.
    let builder = if workload == "skewed" {
        ClusterEngine::builder(accel)
            .heads(4)
            .weight_bytes(10_000_000)
            .seed(7)
            .max_batch(4)
            .max_batch_tokens(2200)
    } else {
        topick_accel::serve::workloads::shared_prefix_cluster(accel, true)
    };
    let mut cluster = builder
        .record_events(false)
        .shards(shards)
        .routing(routing)
        .stealing(stealing)
        .threads(threads)
        .build();
    let clock_hz = cluster.shard(0).config().clock_hz;
    let requests = if workload == "skewed" {
        skewed_elephant_mice(4, size.mice)
    } else {
        shared_prefix_chat(11, size.tenants, size.per_tenant)
    };
    for r in requests {
        cluster.enqueue(r).expect("valid request");
    }
    (
        cluster.run_to_completion(100_000).expect("completes"),
        clock_hz,
    )
}

fn shard_record(
    workload: &str,
    shards: usize,
    routing: RoutingKind,
    stealing: bool,
    threads: usize,
    size: WorkloadSize,
) -> JsonValue {
    let (report, clock_hz) = run_cluster(workload, shards, routing, stealing, threads, size);
    JsonObject::new()
        .field("workload", workload)
        .field("shards", shards)
        .field("routing", report.routing.as_str())
        .field("stealing", stealing)
        .field("threads", report.threads)
        .field("tokens", report.tokens_generated())
        .field("cluster_steps", report.cluster_steps)
        .field("makespan_cycles", report.total_cycles)
        .field("wall_ms", JsonValue::Prec(report.wall_seconds * 1e3, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field("steals", report.steals)
        .field(
            "load_imbalance",
            JsonValue::Prec(report.load_imbalance(), 3),
        )
        .field("prefill_cycles", report.total_prefill_cycles())
        .field("prefix_hit_tokens", report.total_prefix_hit_tokens())
        .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
        .into()
}

/// One point of the dedicated threading sweep: the canonical skewed
/// cluster configuration (least-loaded + stealing) at a shard and thread
/// count, run `runs` times. The schedule — and with it every modeled
/// field — is identical across runs and thread counts (that is the
/// tentpole guarantee the digest tests pin), so only the *measured* wall
/// clock varies; the best of the runs is reported to damp scheduler
/// noise.
fn run_threads_point(
    shards: usize,
    threads: usize,
    elephants: u64,
    mice: u64,
    runs: usize,
) -> (ClusterReport, f64) {
    let mut best_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let mut cluster = ClusterEngine::builder(accel)
            .heads(4)
            .weight_bytes(10_000_000)
            .seed(7)
            .max_batch(4)
            .max_batch_tokens(2200)
            .record_events(false)
            .shards(shards)
            .routing(RoutingKind::LeastLoaded)
            .stealing(true)
            .threads(threads)
            .build();
        for r in skewed_elephant_mice(elephants, mice) {
            cluster.enqueue(r).expect("valid request");
        }
        let report = cluster.run_to_completion(1_000_000).expect("completes");
        best_wall = best_wall.min(report.wall_seconds);
        last = Some(report);
    }
    (last.expect("at least one run"), best_wall)
}

/// The `--threads-sweep` document (checked in as
/// `BENCH_serving_threads.json`): shards ∈ {1, 2, 4, 8}, sequential vs
/// threaded (one worker thread per shard), on a skewed workload scaled so
/// eight shards stay busy. Modeled makespan and measured wall clock sit
/// side by side; each threaded record carries its wall-clock speedup over
/// the sequential run at the same shard count.
///
/// The document records `host_parallelism`
/// ([`std::thread::available_parallelism`]) because the speedup column is
/// only meaningful relative to it: threaded stepping cannot beat
/// sequential on a single-core host, however many worker threads fan out
/// — expect ~1.0× there and up to ~min(shards, cores)× on real CI
/// hardware.
fn threads_sweep(elephants: u64, mice: u64, runs: usize) -> JsonValue {
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let clock_hz = 500e6;
    let mut records = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (seq_report, seq_wall) = run_threads_point(shards, 1, elephants, mice, runs);
        let record = |report: &ClusterReport, threads: usize, wall: f64| {
            JsonObject::new()
                .field("shards", shards)
                .field("threads", threads)
                .field("tokens", report.tokens_generated())
                .field("cluster_steps", report.cluster_steps)
                .field("makespan_cycles", report.total_cycles)
                .field(
                    "tokens_per_s",
                    JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
                )
                .field("steals", report.steals)
                .field("wall_ms", JsonValue::Prec(wall * 1e3, 3))
        };
        records.push(record(&seq_report, 1, seq_wall).into());
        if shards > 1 {
            let (thr_report, thr_wall) = run_threads_point(shards, shards, elephants, mice, runs);
            assert_eq!(
                thr_report.total_cycles, seq_report.total_cycles,
                "threaded schedule diverged from sequential at {shards} shards"
            );
            records.push(
                record(&thr_report, shards, thr_wall)
                    .field("speedup", JsonValue::Prec(seq_wall / thr_wall, 3))
                    .into(),
            );
        }
    }
    JsonObject::new()
        .field("bench", "serving_threads")
        .field("workload", "skewed-elephant-mice")
        .field("elephants", elephants)
        .field("mice", mice)
        .field("routing", "least-loaded")
        .field("stealing", true)
        .field("runs_per_point", runs)
        .field("host_parallelism", host_parallelism)
        .field("records", records)
        .into()
}

/// TTFT bound (in steps) under which a request's decode tokens count as
/// "good" for the goodput proxy: tokens served promptly enough to matter,
/// per modeled second — the serving-quality number raw tokens/s hides.
const GOODPUT_TTFT_BOUND_STEPS: usize = 8;

/// Decode tokens of requests whose time-to-first-token stayed within
/// [`GOODPUT_TTFT_BOUND_STEPS`], per modeled second.
fn goodput_tokens_per_s<'a>(
    requests: impl Iterator<Item = &'a RequestStats>,
    total_cycles: u64,
    clock_hz: f64,
) -> f64 {
    let good: usize = requests
        .filter(|r| {
            matches!(r.first_token_at, Some(t)
                if t.saturating_sub(r.enqueued_at) <= GOODPUT_TTFT_BOUND_STEPS)
        })
        .map(|r| r.generated)
        .sum();
    if total_cycles == 0 {
        0.0
    } else {
        good as f64 / (total_cycles as f64 / clock_hz)
    }
}

/// The meta describing a scenario run in the sweep: the scenario's own
/// canonical engine shape, FIFO scheduling (the sweep contrasts
/// *workloads* and *routing*, not policies).
fn scenario_meta(kind: ScenarioKind, seed: u64) -> TraceMeta {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let cfg = kind.build().serving_config(accel);
    TraceMeta::new(&cfg, PolicyKind::Fifo.name())
        .for_scenario(kind.name(), seed)
        .with_max_steps(100_000)
}

/// The `--scenario-sweep` document (checked in as
/// `BENCH_serving_scenarios.json`): one engine record per scenario, plus
/// a 4-shard cluster pair (round-robin vs prefix-affinity) — for every
/// scenario in full mode, for the agentic scenario only under `--quick`.
/// Records carry the schedule digest so a bench diff doubles as a
/// schedule-regression signal, and `host_parallelism` keeps wall_ms
/// honest about the hardware it was measured on.
fn scenario_sweep(seed: u64, quick: bool) -> JsonValue {
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut records = Vec::new();
    let mut agentic_hit_rates = None;
    for kind in ScenarioKind::all() {
        let requests = kind.build().generate(seed);
        let meta = scenario_meta(kind, seed);
        let clock_hz = meta.clock_hz;
        let start = Instant::now();
        let (trace, report) = run_recorded(&meta, &requests).expect("scenario run completes");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let RunReport::Engine(report) = report else {
            unreachable!("shards <= 1 runs a bare engine");
        };
        records.push(
            JsonObject::new()
                .field("scenario", kind.name())
                .field("flavor", "engine")
                .field("requests", requests.len())
                .field("tokens", report.tokens_generated)
                .field("steps", report.steps.len())
                .field("total_cycles", report.total_cycles)
                .field("wall_ms", JsonValue::Prec(wall_ms, 3))
                .field(
                    "tokens_per_s",
                    JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
                )
                .field(
                    "prefix_hit_rate",
                    JsonValue::Prec(report.prefix_hit_rate(), 3),
                )
                .field(
                    "goodput_tokens_per_s",
                    JsonValue::Prec(
                        goodput_tokens_per_s(report.requests.iter(), report.total_cycles, clock_hz),
                        1,
                    ),
                )
                .field("digest", trace.digest)
                .into(),
        );
        // The cluster contrast is where routing earns (or scatters) the
        // per-shard caches' hit rate; the agentic pair always runs
        // because the affinity margin is pinned from it.
        if !quick || kind == ScenarioKind::AgenticToolLoops {
            let mut hit_rates = [0.0f64; 2];
            for (i, routing) in [RoutingKind::RoundRobin, RoutingKind::PrefixAffinity]
                .into_iter()
                .enumerate()
            {
                let meta = scenario_meta(kind, seed).for_cluster(4, routing.name(), false, 1);
                let start = Instant::now();
                let (trace, report) =
                    run_recorded(&meta, &requests).expect("scenario cluster run completes");
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let RunReport::Cluster(report) = report else {
                    unreachable!("shards > 1 runs a cluster");
                };
                hit_rates[i] = report.prefix_hit_rate();
                records.push(
                    JsonObject::new()
                        .field("scenario", kind.name())
                        .field("flavor", "cluster")
                        .field("shards", 4usize)
                        .field("routing", routing.name())
                        .field("requests", requests.len())
                        .field("tokens", report.tokens_generated())
                        .field("cluster_steps", report.cluster_steps)
                        .field("total_cycles", report.total_cycles)
                        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
                        .field(
                            "tokens_per_s",
                            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
                        )
                        .field(
                            "prefix_hit_rate",
                            JsonValue::Prec(report.prefix_hit_rate(), 3),
                        )
                        .field(
                            "goodput_tokens_per_s",
                            JsonValue::Prec(
                                goodput_tokens_per_s(
                                    report.requests().map(|(_, r)| r),
                                    report.total_cycles,
                                    clock_hz,
                                ),
                                1,
                            ),
                        )
                        .field("digest", trace.digest)
                        .into(),
                );
            }
            if kind == ScenarioKind::AgenticToolLoops {
                agentic_hit_rates = Some(hit_rates);
            }
        }
    }
    let [rr, affinity] = agentic_hit_rates.expect("the agentic cluster pair always runs");
    JsonObject::new()
        .field("bench", "serving_scenarios")
        .field("scenario_seed", seed)
        .field("quick", quick)
        .field("policy", "fifo")
        .field("goodput_ttft_bound_steps", GOODPUT_TTFT_BOUND_STEPS)
        .field("host_parallelism", host_parallelism)
        .field("records", records)
        .field(
            "agentic_affinity",
            JsonObject::new()
                .field("scenario", ScenarioKind::AgenticToolLoops.name())
                .field("shards", 4usize)
                .field("round_robin_hit_rate", JsonValue::Prec(rr, 3))
                .field("affinity_hit_rate", JsonValue::Prec(affinity, 3))
                .field("margin", JsonValue::Prec(affinity - rr, 3)),
        )
        .into()
}

/// The deadline-carrying scenario at a load multiplier: `load`× the
/// canonical document count (long-doc) or `load` day cycles (diurnal) —
/// the x-axis goodput is plotted against.
fn slo_workload(kind: ScenarioKind, load: u64, seed: u64) -> Vec<ServingRequest> {
    use topick_accel::serve::scenario::{DiurnalArrivals, LongDocSummarize, Scenario};
    match kind {
        ScenarioKind::LongDocSummarize => LongDocSummarize { docs: 8 * load }.generate(seed),
        ScenarioKind::DiurnalArrivals => DiurnalArrivals {
            clients: 3,
            days: load,
        }
        .generate(seed),
        _ => unreachable!("the SLO sweep runs the deadline-carrying scenarios"),
    }
}

/// One SLO-sweep record: the scenario's canonical engine under `policy`,
/// with `chunk_pages` of per-step chunked-prefill budget (0 = the
/// unchunked lump).
fn slo_record(
    kind: ScenarioKind,
    requests: &[ServingRequest],
    load: u64,
    policy: PolicyKind,
    chunk_pages: usize,
    seed: u64,
) -> JsonValue {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cfg = kind.build().serving_config(accel);
    cfg.prefill_chunk_pages = chunk_pages;
    let meta = TraceMeta::new(&cfg, policy.name())
        .for_scenario(kind.name(), seed)
        .with_max_steps(200_000);
    let clock_hz = meta.clock_hz;
    let start = Instant::now();
    let (trace, report) = run_recorded(&meta, requests).expect("slo run completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let RunReport::Engine(report) = report else {
        unreachable!("shards <= 1 runs a bare engine");
    };
    JsonObject::new()
        .field("scenario", kind.name())
        .field("load", load)
        .field("policy", policy.name())
        .field("prefill_chunk_pages", chunk_pages)
        .field("requests", requests.len())
        .field("tokens", report.tokens_generated)
        .field("good_tokens", report.total_good_tokens())
        .field("steps", report.steps.len())
        .field("total_cycles", report.total_cycles)
        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field(
            "goodput_tokens_per_s",
            JsonValue::Prec(report.goodput_tokens_per_second(clock_hz), 1),
        )
        .field(
            "deadline_attainment",
            JsonValue::Prec(report.deadline_attainment(), 3),
        )
        .field("ttft_p99_steps", report.ttft_p99_steps())
        .field(
            "max_prefill_stall_cycles",
            report.max_prefill_stall_cycles(),
        )
        .field("digest", trace.digest)
        .into()
}

/// The `--slo-sweep` document (checked in as `BENCH_serving_slo.json`):
/// goodput-under-SLO vs load on the deadline-carrying scenarios, chunk
/// budgets {unlimited, 4, 16 pages/step} × {fifo, sjf, slo-aware}. The
/// modeled columns (cycles, goodput, attainment, TTFT p99, stall) are
/// host-independent; `wall_ms` is measured and only comparable at equal
/// `host_parallelism` — on a single-core runner expect it to track total
/// work, not scheduling quality.
fn slo_sweep(seed: u64, quick: bool) -> JsonValue {
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let loads: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let policies = [
        PolicyKind::Fifo,
        PolicyKind::ShortestJobFirst,
        PolicyKind::SloAware,
    ];
    let mut records = Vec::new();
    for kind in [
        ScenarioKind::LongDocSummarize,
        ScenarioKind::DiurnalArrivals,
    ] {
        for &load in loads {
            let requests = slo_workload(kind, load, seed);
            for policy in policies {
                for chunk_pages in [0usize, 4, 16] {
                    records.push(slo_record(kind, &requests, load, policy, chunk_pages, seed));
                }
            }
        }
    }
    JsonObject::new()
        .field("bench", "serving_slo")
        .field("scenario_seed", seed)
        .field("quick", quick)
        .field(
            "chunk_budgets_pages",
            vec![JsonValue::from(0u64), 4u64.into(), 16u64.into()],
        )
        .field("host_parallelism", host_parallelism)
        .field(
            "wall_clock_note",
            "wall_ms is measured on this host (host_parallelism above); the modeled \
             cycle/goodput/attainment columns are the comparable numbers on single-core CI",
        )
        .field("records", records)
        .into()
}

/// One engine run of the canonical skewed workload (priority-aging +
/// preemption + 0.75 paged retention — the eviction-heavy regime) with a
/// host swap tier of `host_pages` priced at `swap_cost`.
fn run_tiered_engine(host_pages: usize, swap_cost: f64, mice: u64) -> (ServingReport, f64, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut engine = ServingEngine::builder(accel)
        .heads(4)
        .weight_bytes(10_000_000)
        .max_batch(4)
        .max_batch_tokens(2200)
        .seed(7)
        .record_events(false)
        .policy(PolicyKind::PriorityAging)
        .enable_preemption()
        .retention(RetentionPolicy::Fraction(0.75))
        .host_pages(host_pages)
        .swap_cost_factor(swap_cost)
        .build();
    let clock_hz = engine.config().clock_hz;
    for r in skewed_elephant_mice(4, mice) {
        engine.enqueue(r).expect("valid request");
    }
    let start = Instant::now();
    let report = engine.run_to_completion(100_000).expect("completes");
    (report, clock_hz, start.elapsed().as_secs_f64() * 1e3)
}

/// One 4-shard round-robin run of the shared-prefix chat workload with
/// cross-shard page shipping priced at `ship_cost` (0 disables it).
fn run_tiered_cluster(ship_cost: f64, size: WorkloadSize) -> (ClusterReport, f64) {
    let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let mut cluster = topick_accel::serve::workloads::shared_prefix_cluster(accel, true)
        .record_events(false)
        .shards(4)
        .routing(RoutingKind::RoundRobin)
        .stealing(false)
        .ship_cost_factor(ship_cost)
        .build();
    let clock_hz = cluster.shard(0).config().clock_hz;
    for r in shared_prefix_chat(11, size.tenants, size.per_tenant) {
        cluster.enqueue(r).expect("valid request");
    }
    (
        cluster.run_to_completion(100_000).expect("completes"),
        clock_hz,
    )
}

/// The `--tiered-sweep` document (checked in as
/// `BENCH_serving_tiered.json`). Two faces of tiered KV memory:
///
/// * **Swap sweep**: the canonical skewed workload under eviction
///   pressure, drop-and-re-prefill (`host_pages` 0) against a host swap
///   tier at copy-back factors {0.25, 0.5, 1.0, 1.5} — the priced
///   crossover where swapping beats recompute below the re-prefill cost
///   and loses above it. The sweep *asserts* the crossover: at equal
///   generated tokens, factor 0.25 must strictly beat the baseline's
///   total cycles and factor 1.5 must strictly lose.
/// * **Ship sweep**: the shared-prefix chat workload scattered over 4
///   round-robin shards, shipping off vs on at 0.25 — pulling a sibling's
///   already-built prefix pages must strictly cut the cluster prefill
///   bill, asserted the same way.
fn tiered_sweep(quick: bool) -> JsonValue {
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mice: u64 = if quick { 6 } else { 12 };
    let mut swap_records = Vec::new();
    let (baseline, clock_hz, base_wall) = run_tiered_engine(0, 0.25, mice);
    let swap_record = |report: &ServingReport, host_pages: usize, factor: f64, wall: f64| {
        JsonObject::new()
            .field("host_pages", host_pages)
            .field("swap_cost_factor", JsonValue::Prec(factor, 2))
            .field("tokens", report.tokens_generated)
            .field("steps", report.steps.len())
            .field("total_cycles", report.total_cycles)
            .field("wall_ms", JsonValue::Prec(wall, 3))
            .field(
                "tokens_per_s",
                JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
            )
            .field("preemptions", report.preemptions)
            .field("swapped_tokens", report.total_swapped_tokens())
            .field("swap_cycles", report.total_swap_cycles())
            .field("reprefill_cycles", report.total_reprefill_cycles())
    };
    swap_records.push(swap_record(&baseline, 0, 0.25, base_wall).into());
    let mut cheap_swap_cycles = None;
    for factor in [0.25f64, 0.5, 1.0, 1.5] {
        let (report, _, wall) = run_tiered_engine(1024, factor, mice);
        assert_eq!(
            report.tokens_generated, baseline.tokens_generated,
            "the host tier changed the schedule's generated tokens"
        );
        if factor == 0.25 {
            assert!(
                report.total_cycles < baseline.total_cycles,
                "cheap copy-back ({}) failed to beat drop-and-re-prefill ({})",
                report.total_cycles,
                baseline.total_cycles
            );
            cheap_swap_cycles = Some(report.total_cycles);
        }
        if factor == 1.5 {
            assert!(
                report.total_cycles > baseline.total_cycles,
                "overpriced copy-back ({}) failed to lose to drop-and-re-prefill ({})",
                report.total_cycles,
                baseline.total_cycles
            );
        }
        swap_records.push(swap_record(&report, 1024, factor, wall).into());
    }
    let (tenants, per_tenant) = if quick { (3, 4) } else { (4, 6) };
    let size = WorkloadSize {
        mice,
        tenants,
        per_tenant,
    };
    let mut ship_records = Vec::new();
    let mut prefill_bills = [0u64; 2];
    for (i, ship) in [0.0f64, 0.25].into_iter().enumerate() {
        let (report, clock_hz) = run_tiered_cluster(ship, size);
        prefill_bills[i] = report.total_prefill_cycles();
        ship_records.push(
            JsonObject::new()
                .field("shards", 4usize)
                .field("routing", report.routing.as_str())
                .field("ship_cost_factor", JsonValue::Prec(ship, 2))
                .field("tokens", report.tokens_generated())
                .field("cluster_steps", report.cluster_steps)
                .field("makespan_cycles", report.total_cycles)
                .field(
                    "tokens_per_s",
                    JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
                )
                .field("prefill_cycles", report.total_prefill_cycles())
                .field("ship_cycles", report.total_ship_cycles())
                .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
                .into(),
        );
    }
    assert!(
        prefill_bills[1] < prefill_bills[0],
        "prefix pulls ({}) failed to cut the round-robin prefill bill ({})",
        prefill_bills[1],
        prefill_bills[0]
    );
    JsonObject::new()
        .field("bench", "serving_tiered")
        .field("quick", quick)
        .field("host_parallelism", host_parallelism)
        .field(
            "swap_sweep",
            JsonObject::new()
                .field("workload", "skewed-elephant-mice")
                .field("policy", PolicyKind::PriorityAging.name())
                .field("retention", "paged-0.75")
                .field("records", swap_records)
                .field(
                    "crossover",
                    JsonObject::new()
                        .field("baseline_cycles", baseline.total_cycles)
                        .field(
                            "swap_0_25_cycles",
                            cheap_swap_cycles.expect("the 0.25 point always runs"),
                        )
                        .field("swap_beats_reprefill", true),
                ),
        )
        .field(
            "ship_sweep",
            JsonObject::new()
                .field("workload", "shared-prefix-chat")
                .field("shards", 4usize)
                .field("routing", "round-robin")
                .field("records", ship_records)
                .field(
                    "prefill_saving",
                    JsonObject::new()
                        .field("ship_off_prefill_cycles", prefill_bills[0])
                        .field("ship_on_prefill_cycles", prefill_bills[1])
                        .field("shipping_cuts_prefill", true),
                ),
        )
        .into()
}

/// One record of the `--e2e-sweep`: `requests` served on `engine` with
/// the token-backed mirror generating real synth-model tokens out of the
/// shared paged KV store. Token equivalence against a per-request
/// unsharded `generate` — and the expected sharing/preemption posture —
/// are asserted, not just reported.
fn e2e_record(
    label: &'static str,
    requests: Vec<ServingRequest>,
    mut engine: ServingEngine,
    expect_sharing: bool,
    expect_preemptions: bool,
) -> JsonValue {
    // The CLI/bench workloads outgrow the toy spec's 256-token window,
    // so the served model is toy-shaped with a longer context.
    let mut spec = ModelSpec::toy();
    spec.max_context = 1024;
    let clock_hz = engine.config().clock_hz;
    let start = Instant::now();
    let run =
        topick_accel::serve::run_token_backed(&mut engine, requests.clone(), spec, 11, 100_000)
            .expect("e2e run completes");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for req in &requests {
        let got = run.batch.generated(req.id).expect("request was served");
        assert_eq!(
            got,
            run.batch.reference_generate(req).as_slice(),
            "{label}: request {} diverged from its unsharded generate",
            req.id
        );
    }
    if expect_sharing {
        assert!(
            run.batch.peak_shared_pages() > 0,
            "{label}: the prefix cache produced no physical page sharing"
        );
    } else {
        assert_eq!(
            run.batch.peak_shared_pages(),
            0,
            "{label}: pages were shared without a prefix cache"
        );
    }
    if expect_preemptions {
        assert!(
            run.report.preemptions > 0,
            "{label}: the eviction regime never preempted"
        );
    }
    run.batch.validate();
    let report = &run.report;
    JsonObject::new()
        .field("config", label)
        .field("requests", requests.len())
        .field("tokens", report.tokens_generated)
        .field("steps", report.steps.len())
        .field("preemptions", report.preemptions)
        .field("wall_ms", JsonValue::Prec(wall_ms, 3))
        .field(
            "tokens_per_s",
            JsonValue::Prec(report.tokens_per_second(clock_hz), 1),
        )
        .field("hit_rate", JsonValue::Prec(report.prefix_hit_rate(), 3))
        .field("peak_shared_pages", run.batch.peak_shared_pages())
        .field("drained_shared_pages", run.batch.shared_pages())
        .field("charged_cycles", run.charged_cycles())
        .field("measured_build_cycles", run.batch.measured_build_cycles())
        .field("measured_decode_cycles", run.batch.measured_decode_cycles())
        .field("cycle_ratio", JsonValue::Prec(run.cycle_ratio(), 4))
        .field("byte_identical", true)
        .into()
}

/// The `--e2e-sweep` document (checked in as `BENCH_serving_e2e.json`):
/// real-token serving across the regimes that stress the paged store
/// differently — prefix sharing (cache on/off), chunked prefill, and
/// preemption with paged retention. See the module docs for what each
/// record asserts.
fn e2e_sweep(quick: bool) -> JsonValue {
    use topick_accel::serve::workloads::shared_prefix_engine;
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let (tenants, per_tenant) = if quick { (3, 4) } else { (4, 6) };
    let mice: u64 = if quick { 4 } else { 8 };
    let accel = || AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
    let chat = shared_prefix_chat(11, tenants, per_tenant);
    let mut records = vec![
        e2e_record(
            "shared-prefix-cache-on",
            chat.clone(),
            shared_prefix_engine(accel(), true).build(),
            true,
            false,
        ),
        e2e_record(
            "shared-prefix-cache-off",
            chat.clone(),
            shared_prefix_engine(accel(), false).build(),
            false,
            false,
        ),
        e2e_record(
            "shared-prefix-chunked-prefill",
            chat,
            shared_prefix_engine(accel(), true)
                .prefill_chunk_pages(2)
                .build(),
            true,
            false,
        ),
    ];
    records.push(e2e_record(
        "skewed-preemptive-retention",
        skewed_elephant_mice(4, mice),
        ServingEngine::builder(accel())
            .heads(4)
            .weight_bytes(10_000_000)
            .max_batch(4)
            .max_batch_tokens(2200)
            .seed(7)
            .policy(PolicyKind::PriorityAging)
            .enable_preemption()
            .retention(RetentionPolicy::Fraction(0.75))
            .build(),
        false,
        true,
    ));
    JsonObject::new()
        .field("bench", "serving_e2e")
        .field("quick", quick)
        .field(
            "model",
            "toy (d_model 64, 2 layers, 4 heads, max_context 1024)",
        )
        .field("model_seed", 11u64)
        .field("host_parallelism", host_parallelism)
        .field(
            "token_equivalence",
            "asserted per record: served tokens byte-identical to a per-request unsharded generate",
        )
        .field("records", records)
        .into()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    let quick = flags.contains_key("quick");
    let threads_flag: usize = flags
        .get("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    if flags.contains_key("e2e-sweep") {
        let doc = e2e_sweep(quick);
        println!("{}", doc.render());
        return;
    }
    if flags.contains_key("tiered-sweep") {
        let doc = tiered_sweep(quick);
        println!("{}", doc.render());
        return;
    }
    if flags.contains_key("slo-sweep") {
        let seed: u64 = flags
            .get("scenario-seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(11);
        let doc = slo_sweep(seed, quick);
        println!("{}", doc.render());
        return;
    }
    if flags.contains_key("scenario-sweep") {
        let seed: u64 = flags
            .get("scenario-seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(11);
        let doc = scenario_sweep(seed, quick);
        println!("{}", doc.render());
        return;
    }
    if flags.contains_key("threads-sweep") {
        let runs = if quick { 1 } else { 3 };
        let (elephants, mice) = if quick { (4, 12) } else { (8, 40) };
        let doc = threads_sweep(elephants, mice, runs);
        println!("{}", doc.render());
        return;
    }
    let requests: u64 = flags
        .get("requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 16 });

    let batches: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let thresholds: &[f64] = if quick { &[1e-3] } else { &[1e-2, 1e-3, 1e-4] };
    let mice: u64 = if quick { 6 } else { 12 };

    let mut points = Vec::new();
    for &max_batch in batches {
        points.push(run_point(
            AccelMode::Baseline,
            "baseline",
            0.5,
            max_batch,
            requests,
        ));
        for &thr in thresholds {
            points.push(run_point(
                AccelMode::OutOfOrder,
                "topick",
                thr,
                max_batch,
                requests,
            ));
        }
    }

    // One record per policy without preemption, plus — for each policy
    // that actually preempts (FIFO never does) — a full-re-prefill run
    // and a paged-retention run, so the bench pins the re-prefill saving
    // retention buys per policy.
    let mut policies = Vec::new();
    for kind in PolicyKind::all() {
        policies.push(policy_record(kind, false, RetentionPolicy::None, mice));
    }
    for kind in [
        PolicyKind::PriorityAging,
        PolicyKind::ShortestJobFirst,
        PolicyKind::FairRoundRobin,
    ] {
        policies.push(policy_record(kind, true, RetentionPolicy::None, mice));
        policies.push(policy_record(
            kind,
            true,
            RetentionPolicy::Fraction(0.75),
            mice,
        ));
    }

    // Prefix caching off vs on at equal generated tokens: the off record
    // is the prefill bill sharing exists to shrink, the on record shows
    // what it recovered (hit rate included).
    let (tenants, per_tenant) = if quick { (3, 4) } else { (4, 6) };
    let prefix = vec![
        prefix_record(false, tenants, per_tenant),
        prefix_record(true, tenants, per_tenant),
    ];
    let size = WorkloadSize {
        mice,
        tenants,
        per_tenant,
    };

    // Shard sweep: 1 shard is the golden-pinned identity baseline; each
    // larger count contrasts load-blind routing against least-loaded +
    // stealing (skewed workload) and against prefix-affinity
    // (shared-prefix workload, where per-shard caches make routing the
    // difference between scattering and recovering the hit rate).
    // `--shards N` narrows the sweep to [1, N] (the CI invocation).
    let shard_counts: Vec<usize> = match flags.get("shards").and_then(|v| v.parse().ok()) {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None if quick => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let mut shards = Vec::new();
    for &n in &shard_counts {
        shards.push(shard_record(
            "skewed",
            n,
            RoutingKind::RoundRobin,
            false,
            1,
            size,
        ));
        if n > 1 {
            shards.push(shard_record(
                "skewed",
                n,
                RoutingKind::LeastLoaded,
                true,
                1,
                size,
            ));
            if threads_flag > 1 {
                // Threaded twin of the least-loaded + stealing point:
                // same schedule by construction, wall_ms is the column
                // that moves.
                shards.push(shard_record(
                    "skewed",
                    n,
                    RoutingKind::LeastLoaded,
                    true,
                    threads_flag,
                    size,
                ));
            }
        }
        shards.push(shard_record(
            "shared-prefix",
            n,
            RoutingKind::RoundRobin,
            false,
            1,
            size,
        ));
        if n > 1 {
            shards.push(shard_record(
                "shared-prefix",
                n,
                RoutingKind::PrefixAffinity,
                false,
                1,
                size,
            ));
            if threads_flag > 1 {
                shards.push(shard_record(
                    "shared-prefix",
                    n,
                    RoutingKind::PrefixAffinity,
                    false,
                    threads_flag,
                    size,
                ));
            }
        }
    }

    let doc = JsonObject::new()
        .field("bench", "serving_throughput")
        .field("requests", requests)
        .field("quick", quick)
        .field("points", points)
        .field("policies", policies)
        .field("prefix", prefix)
        .field("shards", shards);
    println!("{}", doc.render());
}
