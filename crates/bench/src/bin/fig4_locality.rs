//! Regenerates Fig. 4 (locality heatmap and margin brackets).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::fig4::run(fast);
}
