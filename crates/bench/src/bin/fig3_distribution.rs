//! Regenerates Fig. 3 (score distribution variability).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::fig3::run(fast);
}
