//! Regenerates Table 2 (area/power breakdown).
fn main() {
    topick_bench::table2::run();
}
