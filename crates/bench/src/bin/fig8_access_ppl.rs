//! Regenerates Fig. 8 (normalized DRAM access + perplexity across models).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::fig8::run(fast);
}
