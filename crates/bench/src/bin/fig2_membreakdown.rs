//! Regenerates Fig. 2 (memory transfer breakdown).
fn main() {
    topick_bench::fig2::run();
}
