//! Regenerates Fig. 10 (speedup and energy breakdown).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::fig10::run(fast);
}
