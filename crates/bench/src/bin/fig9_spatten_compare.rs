//! Regenerates Fig. 9 (ToPick-0.5 vs SpAtten / SpAtten*).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    topick_bench::fig9::run(fast);
}
