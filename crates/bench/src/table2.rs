//! Table 2 — area and power breakdown of ToPick at 500 MHz, 65 nm.

use topick_energy::AreaPowerModel;

use crate::util::header;

/// Prints the model-vs-paper table and the §5.2.3 overhead summary.
pub fn run() {
    header("Table 2 — area and power breakdown @ 500 MHz (65 nm model)");
    let model = AreaPowerModel::paper();
    println!(
        "{:<32} {:>10} {:>10}   {:>10} {:>10}",
        "module", "area mm2", "power mW", "paper mm2", "paper mW"
    );
    for row in model.table2() {
        println!(
            "{:<32} {:>10.3} {:>10.2}   {:>10.3} {:>10.2}",
            row.name, row.area_mm2, row.power_mw, row.paper_area_mm2, row.paper_power_mw
        );
    }
    let (va, vp, ka, kp) = model.overheads();
    println!();
    println!("overheads over the baseline accelerator (paper values in parentheses):");
    println!(
        "  V-saving modules (Margin Gen, DAG, PEC): {va:.1}% area (1.0%), {vp:.1}% power (1.3%)"
    );
    println!(
        "  K-saving modules (Scoreboard, RPDU):     {ka:.1}% area (4.9%), {kp:.1}% power (5.6%)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_does_not_panic() {
        run();
    }
}
