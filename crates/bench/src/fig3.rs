//! Fig. 3 — instance-to-instance variability of correlation-score
//! distributions: two contrasting instances at context 1024, plus a
//! population sweep of dominant-token fractions.

use topick_model::{InstanceSampler, SynthInstance, SynthProfile};

use crate::util::{bar, header};

/// Histogram of scores in fixed bins over `[-10, 10]`.
#[must_use]
pub fn score_histogram(scores: &[f64], bins: usize) -> Vec<usize> {
    let mut h = vec![0usize; bins];
    for &s in scores {
        let t = ((s + 10.0) / 20.0).clamp(0.0, 0.999_999);
        h[(t * bins as f64) as usize] += 1;
    }
    h
}

/// The two contrasting instances of the figure plus a population sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Data {
    /// Dominant-token count of the wide-spread instance (paper: 48/1024).
    pub wide_dominant: usize,
    /// Dominant-token count of the narrow-spread instance (paper: 241/1024).
    pub narrow_dominant: usize,
    /// Dominant fractions across a sampled population.
    pub population_fractions: Vec<f64>,
}

/// Computes the figure's data at the given context length.
#[must_use]
pub fn compute(context: usize, population: usize) -> Fig3Data {
    let wide = SynthInstance::generate(&SynthProfile::wide_spread(context, 64), 0xA);
    let narrow = SynthInstance::generate(&SynthProfile::narrow_spread(context, 64), 0xA);
    let sampler = InstanceSampler::realistic(context, 64);
    let population_fractions = (0..population)
        .map(|i| sampler.sample(i as u64).dominant_tokens(1e-3) as f64 / context as f64)
        .collect();
    Fig3Data {
        wide_dominant: wide.dominant_tokens(1e-3),
        narrow_dominant: narrow.dominant_tokens(1e-3),
        population_fractions,
    }
}

/// Prints the figure.
pub fn run(fast: bool) {
    let context = 1024;
    let population = if fast { 16 } else { 64 };
    header("Fig. 3 — score-distribution variability across instances");

    let wide = SynthInstance::generate(&SynthProfile::wide_spread(context, 64), 0xA);
    let narrow = SynthInstance::generate(&SynthProfile::narrow_spread(context, 64), 0xA);
    println!("score histograms (context {context}):");
    let hw = score_histogram(&wide.realized_scores(), 20);
    let hn = score_histogram(&narrow.realized_scores(), 20);
    println!(
        "{:>6}  {:<22}  {:<22}",
        "score", "instance A (wide)", "instance B (narrow)"
    );
    for (i, (a, b)) in hw.iter().zip(&hn).enumerate() {
        let lo = -10.0 + i as f64;
        println!(
            "{:>6.0}  {:<22}  {:<22}",
            lo,
            bar(*a as f64 / context as f64 * 4.0, 20),
            bar(*b as f64 / context as f64 * 4.0, 20)
        );
    }
    let data = compute(context, population);
    println!();
    println!(
        "dominant tokens (p > 1e-3): instance A = {} ({:.1}%), instance B = {} ({:.1}%)",
        data.wide_dominant,
        100.0 * data.wide_dominant as f64 / context as f64,
        data.narrow_dominant,
        100.0 * data.narrow_dominant as f64 / context as f64,
    );
    let min = data
        .population_fractions
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = data
        .population_fractions
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    println!(
        "population of {} instances: dominant fraction ranges {:.1}% .. {:.1}%",
        population,
        100.0 * min,
        100.0 * max
    );
    println!("paper anchors: 4.6% (instance A) vs 23.5% (instance B) at context 1024");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variability_reproduced() {
        let d = compute(1024, 16);
        assert!(d.wide_dominant < d.narrow_dominant);
        // Population must actually vary by at least 2x between extremes.
        let min = d
            .population_fractions
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = d
            .population_fractions
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(max > 2.0 * min, "variability too small: {min} .. {max}");
    }

    #[test]
    fn histogram_counts_everything() {
        let h = score_histogram(&[-100.0, 0.0, 100.0, 3.2], 10);
        assert_eq!(h.iter().sum::<usize>(), 4);
    }
}
