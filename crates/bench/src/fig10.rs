//! Fig. 10 — (a) speedup and (b) normalized energy breakdown of the ToPick
//! accelerator configurations over the baseline accelerator, across the
//! eight-model zoo, from the cycle-level simulator.

use topick_accel::{AccelConfig, AccelMode, AttentionStepResult, ToPickAccelerator};
use topick_core::{PrecisionConfig, QMatrix, QVector};
use topick_energy::EnergyBreakdown;
use topick_model::{InstanceSampler, ModelSpec};

use crate::util::header;

/// Aggregated simulation outcome of one (model, mode) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeAggregate {
    /// Total accelerator cycles over all instances.
    pub cycles: u64,
    /// Summed energy breakdown.
    pub energy: EnergyBreakdown,
}

/// One model's row: baseline, estimate-only (ToPick-V), full ToPick, and
/// ToPick-0.3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Model name.
    pub model: &'static str,
    /// Baseline accelerator.
    pub baseline: ModeAggregate,
    /// Estimation-only (full K, pruned V).
    pub estimate_only: ModeAggregate,
    /// Full ToPick (chunked K + out-of-order).
    pub topick: ModeAggregate,
    /// ToPick at the +0.3 PPL threshold.
    pub topick_03: ModeAggregate,
}

impl Fig10Row {
    /// Speedup of a mode vs. the baseline.
    #[must_use]
    pub fn speedup(&self, mode: &ModeAggregate) -> f64 {
        self.baseline.cycles as f64 / mode.cycles as f64
    }

    /// Normalized energy of a mode vs. the baseline.
    #[must_use]
    pub fn energy_norm(&self, mode: &ModeAggregate) -> f64 {
        mode.energy.total_pj() / self.baseline.energy.total_pj()
    }
}

fn aggregate(
    mode: AccelMode,
    thr: f64,
    ctx: usize,
    dim: usize,
    instances: usize,
    seed_base: u64,
) -> ModeAggregate {
    let pc = PrecisionConfig::paper();
    let mut cfg = AccelConfig::paper(mode, thr).expect("valid thr");
    cfg.dim = dim;
    let accel = ToPickAccelerator::new(cfg);
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut cycles = 0u64;
    let mut energy = EnergyBreakdown::default();
    for i in 0..instances {
        let inst = sampler.sample(seed_base + i as u64);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        let r: AttentionStepResult = accel.run_attention(&q, &keys, inst.values()).expect("run");
        cycles += r.cycles;
        energy.dram_pj += r.energy.dram_pj;
        energy.buffer_pj += r.energy.buffer_pj;
        energy.compute_pj += r.energy.compute_pj;
    }
    ModeAggregate { cycles, energy }
}

/// Computes all rows.
#[must_use]
pub fn compute(fast: bool) -> Vec<Fig10Row> {
    let (thr, thr_03) = (
        crate::calibrate::THR_TOPICK,
        crate::calibrate::THR_TOPICK_03,
    );
    let instances = if fast { 2 } else { 6 };
    ModelSpec::paper_sweep()
        .into_iter()
        .enumerate()
        .map(|(mi, spec)| {
            let full_ctx = if spec.name.starts_with("GPT2") {
                1024
            } else {
                2048
            };
            let ctx = if fast { full_ctx.min(384) } else { full_ctx };
            let dim = spec.head_dim();
            let seed = 0xA10 + (mi as u64) * 777;
            Fig10Row {
                model: spec.name,
                baseline: aggregate(AccelMode::Baseline, 0.5, ctx, dim, instances, seed),
                estimate_only: aggregate(AccelMode::EstimateOnly, thr, ctx, dim, instances, seed),
                topick: aggregate(AccelMode::OutOfOrder, thr, ctx, dim, instances, seed),
                topick_03: aggregate(AccelMode::OutOfOrder, thr_03, ctx, dim, instances, seed),
            }
        })
        .collect()
}

/// Prints both panels.
pub fn run(fast: bool) {
    let rows = compute(fast);
    header("Fig. 10a — speedup over the baseline accelerator");
    println!(
        "{:<12} {:>9} {:>9} {:>11}",
        "model", "ToPick-V", "ToPick", "ToPick-0.3"
    );
    let mut sums = (0.0, 0.0, 0.0);
    for r in &rows {
        let (a, b, c) = (
            r.speedup(&r.estimate_only),
            r.speedup(&r.topick),
            r.speedup(&r.topick_03),
        );
        println!("{:<12} {a:>8.2}x {b:>8.2}x {c:>10.2}x", r.model);
        sums.0 += a;
        sums.1 += b;
        sums.2 += c;
    }
    let n = rows.len() as f64;
    println!(
        "{:<12} {:>8.2}x {:>8.2}x {:>10.2}x   (paper: ~1.73x, 2.28x, 2.48x)",
        "mean",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n
    );

    header("Fig. 10b — normalized energy breakdown");
    println!(
        "{:<12} {:>22} {:>22} {:>22}",
        "model", "Baseline", "ToPick", "ToPick-0.3"
    );
    let fmt = |agg: &ModeAggregate, base: f64| {
        let (d, s, c) = agg.energy.fractions();
        let norm = agg.energy.total_pj() / base;
        format!(
            "{:>5.0}% (d{:.0}/b{:.0}/c{:.0})",
            100.0 * norm,
            100.0 * d,
            100.0 * s,
            100.0 * c
        )
    };
    for r in &rows {
        let base = r.baseline.energy.total_pj();
        println!(
            "{:<12} {:>22} {:>22} {:>22}",
            r.model,
            fmt(&r.baseline, base),
            fmt(&r.topick, base),
            fmt(&r.topick_03, base)
        );
    }
    println!("(d/b/c = DRAM / on-chip buffer / compute shares; paper: ToPick ~41-46%, ToPick-0.3 ~37-42%)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_ordered_and_in_band() {
        // One small model is enough for the invariant; full sweep is the
        // harness's job.
        let thr = crate::calibrate::THR_TOPICK;
        let base = aggregate(AccelMode::Baseline, 0.5, 320, 64, 2, 5);
        let est = aggregate(AccelMode::EstimateOnly, thr, 320, 64, 2, 5);
        let ooo = aggregate(AccelMode::OutOfOrder, thr, 320, 64, 2, 5);
        assert!(est.cycles < base.cycles);
        assert!(ooo.cycles < est.cycles);
        let speedup = base.cycles as f64 / ooo.cycles as f64;
        assert!(speedup > 1.5 && speedup < 6.0, "speedup {speedup}");
    }

    #[test]
    fn energy_drops_with_pruning() {
        let thr = crate::calibrate::THR_TOPICK;
        let base = aggregate(AccelMode::Baseline, 0.5, 320, 64, 2, 6);
        let ooo = aggregate(AccelMode::OutOfOrder, thr, 320, 64, 2, 6);
        assert!(ooo.energy.total_pj() < base.energy.total_pj());
    }
}
