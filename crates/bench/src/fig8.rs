//! Fig. 8 — normalized off-chip KV access (bars) and perplexity (lines)
//! for Baseline / ToPick / ToPick-0.3 across the eight-model zoo, plus the
//! §5.2.1 aggregate reduction factors.

use topick_core::{PrecisionConfig, ProgressivePruner, PruneStats, PrunerConfig, QMatrix, QVector};
use topick_model::{
    evaluate_perplexity, AttentionBackend, ExactAttention, InstanceSampler, ModelSpec,
    TokenPickerAttention, TransformerModel,
};

use crate::util::{bar, header};

/// One model's row of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Model name.
    pub model: &'static str,
    /// Context length used.
    pub context: usize,
    /// Aggregate stats at the ToPick threshold.
    pub topick: PruneStats,
    /// Aggregate stats at the ToPick-0.3 threshold.
    pub topick_03: PruneStats,
    /// Head dimension (for bit accounting).
    pub head_dim: usize,
    /// Perplexity proxy: (baseline, topick, topick-0.3).
    pub ppl: (f64, f64, f64),
}

impl Fig8Row {
    /// Normalized (K+V) access of a stats bundle vs. the no-pruning
    /// baseline.
    #[must_use]
    pub fn normalized(&self, stats: &PruneStats) -> f64 {
        1.0 / stats.total_reduction(self.head_dim, &PrecisionConfig::paper())
    }
}

fn paper_context(spec: &ModelSpec) -> usize {
    // §5.1.3: context 1024 for GPT2 models, 2048 for OPT and LLaMa-2.
    if spec.name.starts_with("GPT2") {
        1024
    } else {
        2048
    }
}

fn aggregate_stats(
    thr: f64,
    ctx: usize,
    dim: usize,
    instances: usize,
    seed_base: u64,
) -> PruneStats {
    let pc = PrecisionConfig::paper();
    let pruner = ProgressivePruner::new(PrunerConfig::new(thr).expect("thr valid"));
    let sampler = InstanceSampler::realistic(ctx, dim);
    let mut agg = PruneStats::new(0, pc.num_chunks());
    for i in 0..instances {
        let inst = sampler.sample(seed_base + i as u64);
        let q = QVector::quantize(&inst.query, pc);
        let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty");
        let outcome = pruner.run(&q, &keys).expect("valid run");
        agg.merge(&outcome.stats);
    }
    agg
}

fn ppl_proxy(spec: &ModelSpec, thr: f64, thr_03: f64) -> (f64, f64, f64) {
    // Down-scaled model with the spec's name-shape character; 64-token
    // teacher corpus. Absolute values are proxies (see DESIGN.md §2).
    let scaled = spec.scaled_down(16);
    let model = TransformerModel::new_random(scaled, 0xF1_68);
    let corpus = topick_model::teacher_corpus_with_temperature(&model, 96, 1, 1.5);
    let mut exact = ExactAttention::new();
    let base = evaluate_perplexity(&model, &corpus, &mut exact).perplexity;
    let run = |t: f64| {
        let mut k: Box<dyn AttentionBackend> = Box::new(TokenPickerAttention::new(
            PrunerConfig::new(t).expect("thr"),
        ));
        evaluate_perplexity(&model, &corpus, k.as_mut()).perplexity
    };
    (base, run(thr), run(thr_03))
}

/// Computes every row. `fast` shrinks contexts and instance counts.
#[must_use]
pub fn compute(fast: bool) -> (f64, f64, Vec<Fig8Row>) {
    let instances = if fast { 4 } else { 16 };
    // Operating points on the paper's dominance scale (see
    // `calibrate::THR_TOPICK`).
    let (thr, thr_03) = (
        crate::calibrate::THR_TOPICK,
        crate::calibrate::THR_TOPICK_03,
    );
    let rows = ModelSpec::paper_sweep()
        .into_iter()
        .enumerate()
        .map(|(mi, spec)| {
            let ctx = if fast {
                paper_context(&spec).min(512)
            } else {
                paper_context(&spec)
            };
            let dim = spec.head_dim();
            let seed = 0x800 + (mi as u64) * 1000;
            Fig8Row {
                model: spec.name,
                context: ctx,
                topick: aggregate_stats(thr, ctx, dim, instances, seed),
                topick_03: aggregate_stats(thr_03, ctx, dim, instances, seed),
                head_dim: dim,
                ppl: ppl_proxy(&spec, thr, thr_03),
            }
        })
        .collect();
    (thr, thr_03, rows)
}

/// Prints the figure and the §5.2.1 aggregates.
pub fn run(fast: bool) {
    header("Fig. 8 — normalized DRAM access and perplexity across models");
    let (thr, thr_03, rows) = compute(fast);
    println!("operating points: ToPick thr={thr:.1e}, ToPick-0.3 thr={thr_03:.1e}");
    println!();
    println!(
        "{:<12} {:>5}  {:>9} {:>9}  {:>9} {:>9}  {:>8} {:>8} {:>8}",
        "model", "ctx", "ToPick", "(norm)", "ToPick.3", "(norm)", "PPL", "PPL tp", "PPL .3"
    );
    let pc = PrecisionConfig::paper();
    let mut v_red = (0.0, 0.0);
    let mut k_red = (0.0, 0.0);
    let mut t_red = (0.0, 0.0);
    for r in &rows {
        let n1 = r.normalized(&r.topick);
        let n2 = r.normalized(&r.topick_03);
        println!(
            "{:<12} {:>5}  {} {:>8.3}  {} {:>8.3}  {:>8.2} {:>8.2} {:>8.2}",
            r.model,
            r.context,
            bar(n1, 8),
            n1,
            bar(n2, 8),
            n2,
            r.ppl.0,
            r.ppl.1,
            r.ppl.2
        );
        v_red.0 += r.topick.v_reduction();
        v_red.1 += r.topick_03.v_reduction();
        k_red.0 += r.topick.k_reduction(r.head_dim, &pc);
        k_red.1 += r.topick_03.k_reduction(r.head_dim, &pc);
        t_red.0 += r.topick.total_reduction(r.head_dim, &pc);
        t_red.1 += r.topick_03.total_reduction(r.head_dim, &pc);
    }
    let n = rows.len() as f64;
    println!();
    println!("aggregate reductions (paper targets in parentheses):");
    println!(
        "  V access:    ToPick {:.1}x (12.1x)   ToPick-0.3 {:.1}x (22.2x)",
        v_red.0 / n,
        v_red.1 / n
    );
    println!(
        "  K access:    ToPick {:.2}x (1.45x)   ToPick-0.3 {:.2}x (1.51x)",
        k_red.0 / n,
        k_red.1 / n
    );
    println!(
        "  total (K+V): ToPick {:.2}x (2.57x)   ToPick-0.3 {:.2}x (2.79x)",
        t_red.0 / n,
        t_red.1 / n
    );
    println!("(PPL columns are the synthetic-corpus proxy; see DESIGN.md substitution table)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_in_the_paper_band() {
        let (_, _, rows) = compute(true);
        assert_eq!(rows.len(), 8);
        let pc = PrecisionConfig::paper();
        for r in &rows {
            let v = r.topick.v_reduction();
            assert!(v > 2.0, "{}: V reduction {v} too small", r.model);
            let k = r.topick.k_reduction(r.head_dim, &pc);
            assert!(k > 1.0, "{}: K reduction {k}", r.model);
            // The looser threshold prunes at least as much.
            assert!(r.topick_03.kept <= r.topick.kept);
        }
    }

    #[test]
    fn ppl_ordering_is_sane() {
        let (_, _, rows) = compute(true);
        for r in &rows {
            // Pruned perplexity can only degrade (within noise).
            assert!(r.ppl.1 >= r.ppl.0 - 0.05, "{}: {:?}", r.model, r.ppl);
            assert!(r.ppl.2 >= r.ppl.1 - 0.05, "{}: {:?}", r.model, r.ppl);
        }
    }
}
