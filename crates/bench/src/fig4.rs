//! Fig. 4 — (a) attention-probability locality across token positions and
//! (b) margin ranges from partial bit chunks.

use topick_core::{MarginTable, PrecisionConfig, QVector};
use topick_model::{SynthInstance, SynthProfile};

use crate::util::header;

/// One heatmap row: average probability mass per position bucket
/// (first token, aggregated middle, and the last ten positions).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityRow {
    /// Head label.
    pub head: &'static str,
    /// Probability of the first token.
    pub first: f64,
    /// Aggregated probability of positions `1..n-10`.
    pub middle: f64,
    /// Probabilities of the last ten positions (oldest first).
    pub last10: Vec<f64>,
}

/// Computes the locality heatmap over five synthetic heads with different
/// locality/sink characters, averaged over `samples` instances each.
#[must_use]
pub fn locality_heatmap(context: usize, samples: usize) -> Vec<LocalityRow> {
    let base = SynthProfile {
        // Moderate background spread: the heatmap illustrates the *average*
        // positional pattern, not instance-level variability (that is
        // Fig. 3's job).
        score_std: 1.5,
        ..SynthProfile::realistic(context, 64)
    };
    let heads: [(&'static str, SynthProfile); 5] = [
        (
            "Head A",
            SynthProfile {
                sink_strength: 6.0,
                locality_strength: 2.0,
                ..base.clone()
            },
        ),
        (
            "Head B",
            SynthProfile {
                sink_strength: 5.0,
                locality_strength: 1.0,
                score_std: 1.0,
                ..base.clone()
            },
        ),
        (
            "Head C",
            SynthProfile {
                sink_strength: 2.5,
                locality_strength: 3.0,
                locality_decay: 3.0,
                ..base.clone()
            },
        ),
        (
            "Head D",
            SynthProfile {
                sink_strength: 0.5,
                locality_strength: 5.0,
                locality_decay: 2.0,
                ..base.clone()
            },
        ),
        (
            "Head E",
            SynthProfile {
                sink_strength: 1.0,
                locality_strength: 4.5,
                locality_decay: 12.0,
                ..base
            },
        ),
    ];
    heads
        .into_iter()
        .map(|(name, profile)| {
            let mut first = 0.0;
            let mut middle = 0.0;
            let mut last10 = vec![0.0f64; 10];
            for s in 0..samples {
                let inst = SynthInstance::generate(&profile, 0xF16 + s as u64);
                let p = inst.exact_probabilities();
                let n = p.len();
                first += p[0];
                middle += p[1..n - 10].iter().sum::<f64>();
                for (i, slot) in last10.iter_mut().enumerate() {
                    *slot += p[n - 10 + i];
                }
            }
            let norm = samples as f64;
            LocalityRow {
                head: name,
                first: first / norm,
                middle: middle / norm,
                last10: last10.into_iter().map(|v| v / norm).collect(),
            }
        })
        .collect()
}

/// One margin bracket of Fig. 4(b): score bounds at a chunk depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginRow {
    /// Chunks of the key known.
    pub chunks_known: u32,
    /// Lower score bound (integer domain).
    pub smin: i64,
    /// Upper score bound.
    pub smax: i64,
    /// The exact score the bracket must contain.
    pub exact: i64,
}

/// Computes the Fig. 4(b)-style bracket for the paper's toy operands:
/// a 6-bit format with 2-bit chunks.
#[must_use]
pub fn margin_example() -> Vec<MarginRow> {
    let pc = PrecisionConfig::new(6, 2).expect("6/2 valid");
    // Q = [10, -5] (one positive, one negative element, as in the figure).
    let q = QVector::from_codes(vec![10, -5], 1.0, pc);
    let k = [13i16, -7];
    let table = MarginTable::from_query(&q);
    let exact = q.dot_codes(&k);
    (1..=pc.num_chunks())
        .map(|c| {
            let ps = q.dot_known(&k, c);
            let m = table.pair(c);
            MarginRow {
                chunks_known: c,
                smin: ps + m.min,
                smax: ps + m.max,
                exact,
            }
        })
        .collect()
}

/// Prints both panels.
pub fn run(fast: bool) {
    let samples = if fast { 4 } else { 16 };
    header("Fig. 4a — attention probability locality (heatmap)");
    let rows = locality_heatmap(256, samples);
    print!("{:<8} {:>7} {:>7}", "head", "tok 0", "middle");
    for i in (1..=10).rev() {
        print!(" {:>6}", format!("t-{}", i - 1));
    }
    println!();
    for r in &rows {
        print!("{:<8} {:>7.3} {:>7.3}", r.head, r.first, r.middle);
        for p in &r.last10 {
            print!(" {p:>6.3}");
        }
        println!();
    }
    println!("(recent tokens and the first token carry most probability mass)");

    header("Fig. 4b — margin brackets from partial bit chunks (6-bit toy)");
    println!(
        "{:>7} {:>8} {:>8} {:>8}",
        "chunks", "s_min", "s_max", "exact"
    );
    for r in margin_example() {
        println!(
            "{:>7} {:>8} {:>8} {:>8}",
            r.chunks_known, r.smin, r.smax, r.exact
        );
    }
    println!("(the bracket tightens with each chunk and collapses at full depth)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_rows_favor_recent_and_first() {
        let rows = locality_heatmap(128, 4);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            let newest = *r.last10.last().unwrap();
            let per_middle_token = r.middle / 117.0;
            // Each head is either sink-dominated or recency-dominated; in
            // both cases the favored position must beat an average middle
            // token by a wide margin.
            assert!(
                newest.max(r.first) > 3.0 * per_middle_token,
                "{}: first {} newest {newest} vs per-middle {per_middle_token}",
                r.head,
                r.first
            );
        }
    }

    #[test]
    fn margin_brackets_contain_exact_and_tighten() {
        let rows = margin_example();
        assert_eq!(rows.len(), 3);
        let mut prev_width = i64::MAX;
        for r in &rows {
            assert!(r.smin <= r.exact && r.exact <= r.smax);
            let width = r.smax - r.smin;
            assert!(width <= prev_width);
            prev_width = width;
        }
        let last = rows.last().unwrap();
        assert_eq!(last.smin, last.exact);
        assert_eq!(last.smax, last.exact);
    }
}
