//! Fig. 2 — off-chip memory-transfer breakdown in the generation phase
//! across batch sizes, for GPT2-XL (S=1024), OPT-6.7B (S=2048) and
//! LLaMa-2-7B (S=4096).

use topick_model::{ModelSpec, TrafficBreakdown};

use crate::util::{bar, header};

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Model name.
    pub model: &'static str,
    /// Batch size.
    pub batch: usize,
    /// KV / weights / embedding fractions.
    pub fractions: (f64, f64, f64),
}

/// Computes every bar of the figure.
#[must_use]
pub fn compute() -> Vec<Fig2Row> {
    let cases = [
        (ModelSpec::gpt2_xl(), 1024usize),
        (ModelSpec::opt_6_7b(), 2048),
        (ModelSpec::llama2_7b(), 4096),
    ];
    let mut rows = Vec::new();
    for (spec, ctx) in cases {
        for batch in [1usize, 4, 16, 64] {
            let t = TrafficBreakdown::compute(&spec, batch, ctx);
            rows.push(Fig2Row {
                model: spec.name,
                batch,
                fractions: (t.kv_fraction(), t.weight_fraction(), t.embedding_fraction()),
            });
        }
    }
    rows
}

/// Prints the figure as text bars.
pub fn run() {
    header("Fig. 2 — memory transfer breakdown (generation phase)");
    println!(
        "{:<12} {:>5}  {:>8} {:>8} {:>8}  KV-share",
        "model", "B", "KV", "weights", "embed"
    );
    for r in compute() {
        let (kv, w, e) = r.fractions;
        println!(
            "{:<12} {:>5}  {:>7.1}% {:>7.1}% {:>7.1}%  {}",
            r.model,
            r.batch,
            100.0 * kv,
            100.0 * w,
            100.0 * e,
            bar(kv, 30)
        );
    }
    println!();
    println!("paper anchors: KV share 7.8% at B=1 grows to 84.3% at B=64 (GPT2-XL class)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_bars() {
        assert_eq!(compute().len(), 12);
    }

    #[test]
    fn kv_share_monotone_in_batch() {
        let rows = compute();
        for chunk in rows.chunks(4) {
            for w in chunk.windows(2) {
                assert!(w[0].fractions.0 < w[1].fractions.0);
            }
        }
    }
}
