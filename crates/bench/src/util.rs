//! Small formatting helpers shared by the experiment harnesses.

/// Renders a horizontal bar of `width` cells filled proportionally to
/// `value` in `[0, 1]`.
#[must_use]
pub fn bar(value: f64, width: usize) -> String {
    let filled = ((value.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Prints a section header in the style every harness uses.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Formats a float with a fixed width for table columns.
#[must_use]
pub fn col(v: f64, width: usize, precision: usize) -> String {
    format!("{v:>width$.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_extremes() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 4), "####"); // clamped
        assert_eq!(bar(-1.0, 4), "....");
    }

    #[test]
    fn col_width() {
        assert_eq!(col(1.2345, 8, 2), "    1.23");
    }
}
