//! Minimal JSON emission shared by the bench binaries.
//!
//! The workspace deliberately has no serde (no crates.io access), so the
//! regression benches used to hand-roll their JSON with `write!` chains.
//! This module centralizes that: a [`JsonValue`] tree plus an object
//! builder, rendered with stable two-space pretty-printing so bench output
//! diffs cleanly across runs.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with `{}` (shortest round-trip form).
    Num(f64),
    /// A float rendered with a fixed number of decimal places.
    Prec(f64, usize),
    /// A float rendered in scientific notation (`{:e}`), the conventional
    /// spelling for pruning thresholds.
    Sci(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        Self::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        Self::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        Self::Array(v)
    }
}
impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        Self::Object(v.fields)
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl JsonValue {
    /// Renders the value as pretty-printed JSON (two-space indent).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Num(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Prec(v, p) => {
                let _ = write!(out, "{v:.p$}");
            }
            Self::Sci(v) => {
                let _ = write!(out, "{v:e}");
            }
            Self::Str(s) => {
                out.push('"');
                escape(s, out);
                out.push('"');
            }
            Self::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                let inner = indent + 1;
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(inner));
                    item.write_into(out, inner);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Self::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                let inner = indent + 1;
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(inner));
                    out.push('"');
                    escape(k, out);
                    out.push_str("\": ");
                    v.write_into(out, inner);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Insertion-ordered object builder.
///
/// # Examples
///
/// ```
/// use topick_bench::json::{JsonObject, JsonValue};
///
/// let record = JsonObject::new()
///     .field("bench", "demo")
///     .field("tokens", 62u64)
///     .field("tokens_per_s", JsonValue::Prec(113.062, 1));
/// assert!(record.render().contains("\"tokens_per_s\": 113.1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field (keys render in insertion order).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Renders the object as pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        JsonValue::Object(self.fields.clone()).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_with_stable_layout() {
        let doc = JsonObject::new()
            .field("name", "sweep")
            .field("ok", true)
            .field("thr", JsonValue::Sci(1e-3))
            .field(
                "points",
                vec![
                    JsonValue::from(JsonObject::new().field("x", 1u64)),
                    JsonValue::from(JsonObject::new().field("x", 2u64)),
                ],
            )
            .field("empty", Vec::<JsonValue>::new());
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"sweep\",\n  \"ok\": true,\n  \"thr\": 1e-3,\n  \"points\": [\n    {\n      \"x\": 1\n    },\n    {\n      \"x\": 2\n    }\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd".to_string());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\"");
    }
}
