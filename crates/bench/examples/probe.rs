use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
use topick_core::{PrecisionConfig, QMatrix, QVector};
use topick_model::InstanceSampler;

fn main() {
    let (thr, thr03) = (
        topick_bench::calibrate::THR_TOPICK,
        topick_bench::calibrate::THR_TOPICK_03,
    );
    println!("thr={thr:.3e} thr03={thr03:.3e}");
    let pc = PrecisionConfig::paper();
    let sampler = InstanceSampler::realistic(320, 64);
    let inst = sampler.sample(5);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).unwrap();
    for (name, mode, t) in [
        ("baseline", AccelMode::Baseline, 0.5),
        ("est-only", AccelMode::EstimateOnly, thr),
        ("ooo", AccelMode::OutOfOrder, thr),
        ("ooo03", AccelMode::OutOfOrder, thr03),
        ("blocking", AccelMode::Blocking, thr),
    ] {
        let accel = ToPickAccelerator::new(AccelConfig::paper(mode, t).unwrap());
        let r = accel.run_attention(&q, &keys, inst.values()).unwrap();
        println!(
            "{name:>9}: cycles={:>6} kept={:>4} chunks={:?} dram_reads={} meanlat={:.0} hits={} misses={}",
            r.cycles, r.prune.kept, r.prune.chunk_fetches, r.dram_stats.reads,
            r.dram_stats.mean_latency(), r.dram_stats.row_hits, r.dram_stats.row_misses
        );
    }
}
