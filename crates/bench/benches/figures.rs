//! `cargo bench --bench figures` — regenerates every paper figure/table in
//! fast mode and prints them to stdout.
fn main() {
    // cargo bench passes --bench; accept and ignore all flags.
    topick_bench::fig2::run();
    topick_bench::fig3::run(true);
    topick_bench::fig4::run(true);
    topick_bench::table2::run();
    topick_bench::fig8::run(true);
    topick_bench::fig9::run(true);
    topick_bench::fig10::run(true);
    topick_bench::ablation::run_order(true);
    topick_bench::ablation::run_chunks(true);
    topick_bench::ablation::run_ooo(true);
    topick_bench::ablation::run_scoreboard(true);
    topick_bench::ablation::run_vchunks(true);
}
