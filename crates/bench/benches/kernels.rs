//! Criterion microbenchmarks of the core kernels: the progressive pruner
//! vs exact attention, the DRAM simulator, and a transformer forward step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topick_core::{
    exact_probabilities, PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector,
};
use topick_dram::{DramConfig, DramSim};
use topick_model::{ExactAttention, InstanceSampler, KvCache, ModelSpec, TransformerModel};

fn quantized(ctx: usize, seed: u64) -> (QVector, QMatrix) {
    let pc = PrecisionConfig::paper();
    let inst = InstanceSampler::realistic(ctx, 64).sample(seed);
    (
        QVector::quantize(&inst.query, pc),
        QMatrix::quantize_flat(inst.keys().data(), inst.dim(), pc).expect("non-empty"),
    )
}

fn bench_pruner(c: &mut Criterion) {
    let mut group = c.benchmark_group("step0");
    for ctx in [256usize, 1024] {
        let (q, keys) = quantized(ctx, 1);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).expect("thr"));
        group.bench_with_input(BenchmarkId::new("token_picker", ctx), &ctx, |b, _| {
            b.iter(|| pruner.run(&q, &keys).expect("run"))
        });
        group.bench_with_input(BenchmarkId::new("exact_softmax", ctx), &ctx, |b, _| {
            b.iter(|| exact_probabilities(&q, &keys))
        });
    }
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_stream_1024_bursts", |b| {
        b.iter(|| {
            let cfg = DramConfig::hbm2();
            let mut sim = DramSim::new(cfg.clone());
            let mut issued = 0u64;
            let mut addr = 0u64;
            while issued < 1024 || !sim.is_idle() {
                while issued < 1024 && sim.try_enqueue(issued, addr) {
                    issued += 1;
                    addr += u64::from(cfg.access_bytes);
                }
                sim.tick();
                while sim.pop_completed().is_some() {}
            }
            sim.cycle()
        })
    });
}

fn bench_model(c: &mut Criterion) {
    let spec = ModelSpec::toy();
    let model = TransformerModel::new_random(spec.clone(), 1);
    c.bench_function("toy_forward_32_tokens", |b| {
        b.iter(|| {
            let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
            let mut kernel = ExactAttention::new();
            for pos in 0..32 {
                let _ = model.forward(pos % spec.vocab, pos, &mut cache, &mut kernel);
            }
        })
    });
}

criterion_group!(benches, bench_pruner, bench_dram, bench_model);
criterion_main!(benches);
