//! Property tests of the DRAM simulator: every accepted request completes,
//! accounting is exact, and timing never violates device minimums.

use proptest::prelude::*;
use topick_dram::{DramConfig, DramSim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted request completes exactly once with its own id, and
    /// the statistics agree with the completion stream.
    #[test]
    fn all_requests_complete_exactly_once(
        addrs in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let cfg = DramConfig::hbm2();
        let mut sim = DramSim::new(cfg);
        let mut accepted = Vec::new();
        let mut completions = Vec::new();
        let mut queue: std::collections::VecDeque<(u64, u64)> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (i as u64, a & !31)) // burst aligned
            .collect();
        let mut guard = 0u64;
        while !queue.is_empty() || !sim.is_idle() {
            guard += 1;
            prop_assert!(guard < 1_000_000, "simulation did not drain");
            while let Some(&(id, addr)) = queue.front() {
                if sim.try_enqueue(id, addr) {
                    accepted.push(id);
                    queue.pop_front();
                } else {
                    break;
                }
            }
            sim.tick();
            while let Some(c) = sim.pop_completed() {
                completions.push(c.id);
            }
        }
        completions.sort_unstable();
        accepted.sort_unstable();
        prop_assert_eq!(&completions, &accepted);
        prop_assert_eq!(sim.stats().reads, addrs.len() as u64);
    }

    /// No request can complete faster than CAS latency + burst time, and
    /// latency accounting matches the completion stream.
    #[test]
    fn latency_lower_bound_holds(
        addrs in prop::collection::vec(0u64..100_000, 1..64),
    ) {
        let cfg = DramConfig::hbm2();
        let floor = cfg.t_cl + cfg.t_burst;
        let mut sim = DramSim::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            // Feed slowly so queue acceptance is guaranteed.
            while !sim.try_enqueue(i as u64, a & !31) {
                sim.tick();
            }
        }
        let done = sim.run_until_idle(1_000_000);
        let mut total = 0u64;
        for c in &done {
            let lat = c.finish_cycle - c.enqueued_at;
            prop_assert!(lat >= floor, "latency {} below floor {}", lat, floor);
            total += lat;
        }
        prop_assert_eq!(total, sim.stats().total_latency);
        prop_assert!(sim.stats().max_latency >= floor);
    }

    /// Row hits + misses equals total reads; hit rate is in [0, 1].
    #[test]
    fn hit_accounting_is_consistent(
        addrs in prop::collection::vec(0u64..262_144, 1..128),
    ) {
        let mut sim = DramSim::new(DramConfig::hbm2());
        for (i, &a) in addrs.iter().enumerate() {
            while !sim.try_enqueue(i as u64, a & !31) {
                sim.tick();
            }
        }
        sim.run_until_idle(1_000_000);
        let s = sim.stats();
        prop_assert_eq!(s.row_hits + s.row_misses, s.reads);
        let rate = s.row_hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        prop_assert!(s.activates >= 1);
        prop_assert!(s.activates <= s.row_misses);
    }
}
