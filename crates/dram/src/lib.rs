//! # topick-dram
//!
//! A cycle-level HBM2 DRAM simulator — the DRAMsim3-style substrate the
//! Token-Picker reproduction uses to model on-demand off-chip access
//! latency and energy (paper §5.1.2: "To get the number of cycle and energy
//! of off-chip accesses, we use DRAMsim3 with trace files generated in RTL
//! simulation").
//!
//! The model captures what the out-of-order score engine exploits:
//!
//! * 8 independent channels with per-channel FR-FCFS queues,
//! * bank row-buffer state (hits vs activates),
//! * realistic activate/CAS timing and a shared data bus per channel,
//! * per-bit I/O energy, per-activate energy, and background power.
//!
//! ## Example
//!
//! ```
//! use topick_dram::{DramConfig, DramSim};
//!
//! let mut sim = DramSim::new(DramConfig::hbm2());
//! for i in 0..32u64 {
//!     assert!(sim.try_enqueue(i, i * 32));
//! }
//! let done = sim.run_until_idle(100_000);
//! assert_eq!(done.len(), 32);
//! println!("mean latency: {:.1} cycles", sim.stats().mean_latency());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod config;
pub mod controller;
pub mod stats;

pub use address::{AddressMap, Location};
pub use config::DramConfig;
pub use controller::{Completion, DramSim};
pub use stats::DramStats;
