//! Access, latency and energy accounting for the DRAM simulator.

use crate::config::DramConfig;

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DramStats {
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
    /// Reads that hit an already-open row.
    pub row_hits: u64,
    /// Reads that required activating a row (closed bank or conflict).
    pub row_misses: u64,
    /// Row activations issued.
    pub activates: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
    /// Sum of request latencies (enqueue → data) in cycles.
    pub total_latency: u64,
    /// Largest single-request latency in cycles.
    pub max_latency: u64,
}

impl DramStats {
    /// Bytes moved by completed transactions (reads + writes).
    #[must_use]
    pub fn bytes(&self, cfg: &DramConfig) -> u64 {
        (self.reads + self.writes) * u64::from(cfg.access_bytes)
    }

    /// Bytes read.
    #[must_use]
    pub fn read_bytes(&self, cfg: &DramConfig) -> u64 {
        self.reads * u64::from(cfg.access_bytes)
    }

    /// Bytes written.
    #[must_use]
    pub fn write_bytes(&self, cfg: &DramConfig) -> u64 {
        self.writes * u64::from(cfg.access_bytes)
    }

    /// Mean request latency in cycles (reads and writes).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.total_latency as f64 / total as f64
        }
    }

    /// Row-buffer hit rate.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Dynamic + background energy in picojoules after `elapsed_cycles`.
    #[must_use]
    pub fn energy_pj(&self, cfg: &DramConfig, elapsed_cycles: u64) -> f64 {
        let io = self.bytes(cfg) as f64 * 8.0 * cfg.pj_per_bit;
        let act = (self.activates + self.refreshes * cfg.banks_per_channel as u64) as f64
            * cfg.act_energy_pj;
        let elapsed_ns = elapsed_cycles as f64 / cfg.clock_ghz;
        let background = cfg.background_mw * cfg.channels as f64 * elapsed_ns;
        io + act + background
    }

    /// Achieved bandwidth in GB/s over `elapsed_cycles`.
    #[must_use]
    pub fn achieved_bandwidth_gbps(&self, cfg: &DramConfig, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        let seconds = elapsed_cycles as f64 / (cfg.clock_ghz * 1e9);
        self.bytes(cfg) as f64 / 1e9 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let cfg = DramConfig::hbm2();
        let s = DramStats {
            reads: 10,
            writes: 0,
            row_hits: 8,
            row_misses: 2,
            activates: 2,
            refreshes: 0,
            total_latency: 200,
            max_latency: 40,
        };
        assert_eq!(s.bytes(&cfg), 320);
        assert!((s.mean_latency() - 20.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 0.8).abs() < 1e-12);
        assert!(s.energy_pj(&cfg, 100) > 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = DramStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }
}
