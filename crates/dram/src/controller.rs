//! The cycle-level DRAM controller: per-channel FR-FCFS scheduling over
//! bank state machines, with a simple analytic command-timing model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::address::{AddressMap, Location};
use crate::config::DramConfig;
use crate::stats::DramStats;

/// A completed transaction: the data for request `id` finished moving at
/// `finish_cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller-assigned request id.
    pub id: u64,
    /// Byte address of the transaction.
    pub addr: u64,
    /// Cycle at which the data burst finished.
    pub finish_cycle: u64,
    /// Cycle at which the request entered the queue.
    pub enqueued_at: u64,
    /// Whether this was a write.
    pub is_write: bool,
}

#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    addr: u64,
    loc: Location,
    enqueued_at: u64,
    is_write: bool,
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
    activated_at: u64,
}

#[derive(Debug, Clone)]
struct Channel {
    queue: VecDeque<Pending>,
    banks: Vec<Bank>,
    bus_free_at: u64,
    in_flight: usize,
    next_refresh_at: u64,
}

/// In-flight transaction key: `(finish, id, addr, enqueued_at, channel,
/// is_write)` — ordered by finish cycle.
type InFlight = (u64, u64, u64, u64, usize, bool);

/// A cycle-level multi-channel DRAM simulator.
///
/// Reads model the KV-streaming traffic of the generation phase; writes
/// model KV-cache appends (one K and one V row per generated token).
///
/// # Examples
///
/// ```
/// use topick_dram::{DramConfig, DramSim};
///
/// let mut sim = DramSim::new(DramConfig::hbm2());
/// assert!(sim.try_enqueue(1, 0x0));
/// let done = sim.run_until_idle(10_000);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].finish_cycle > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    cfg: DramConfig,
    map: AddressMap,
    channels: Vec<Channel>,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    completions: VecDeque<Completion>,
    cycle: u64,
    stats: DramStats,
}

impl DramSim {
    /// Creates a simulator for the given configuration.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        let map = AddressMap::new(&cfg);
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                queue: VecDeque::new(),
                banks: vec![Bank::default(); cfg.banks_per_channel],
                bus_free_at: 0,
                in_flight: 0,
                next_refresh_at: cfg.t_refi,
            })
            .collect();
        Self {
            cfg,
            map,
            channels,
            in_flight: BinaryHeap::new(),
            completions: VecDeque::new(),
            cycle: 0,
            stats: DramStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current simulation cycle (memory clock).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Enqueues a read of one burst at `addr`. Returns `false` when the
    /// target channel queue is full (caller should retry next cycle).
    pub fn try_enqueue(&mut self, id: u64, addr: u64) -> bool {
        self.enqueue_inner(id, addr, false)
    }

    /// Enqueues a write of one burst at `addr` (KV-cache append traffic).
    /// Returns `false` when the target channel queue is full.
    pub fn try_enqueue_write(&mut self, id: u64, addr: u64) -> bool {
        self.enqueue_inner(id, addr, true)
    }

    fn enqueue_inner(&mut self, id: u64, addr: u64, is_write: bool) -> bool {
        let loc = self.map.decode(addr);
        let ch = &mut self.channels[loc.channel];
        if ch.queue.len() >= self.cfg.queue_depth {
            return false;
        }
        ch.queue.push_back(Pending {
            id,
            addr,
            loc,
            enqueued_at: self.cycle,
            is_write,
        });
        true
    }

    /// Number of requests still queued or in flight.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.channels.iter().map(|c| c.queue.len()).sum::<usize>() + self.in_flight.len()
    }

    /// Whether all traffic has drained (completions may still be unread).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Advances one memory-clock cycle: schedules at most one transaction
    /// per channel and retires finished bursts.
    pub fn tick(&mut self) {
        let now = self.cycle;
        for ch_idx in 0..self.channels.len() {
            self.issue_one(ch_idx, now);
        }
        self.cycle += 1;
        while let Some(&Reverse((finish, id, addr, enq, ch, is_write))) = self.in_flight.peek() {
            if finish > self.cycle {
                break;
            }
            self.in_flight.pop();
            self.channels[ch].in_flight -= 1;
            let latency = finish - enq;
            if is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            self.stats.total_latency += latency;
            self.stats.max_latency = self.stats.max_latency.max(latency);
            self.completions.push_back(Completion {
                id,
                addr,
                finish_cycle: finish,
                enqueued_at: enq,
                is_write,
            });
        }
    }

    /// Pops the next completed transaction, if any.
    pub fn pop_completed(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Runs until all outstanding traffic drains (or `max_cycles` elapse),
    /// returning every completion produced.
    ///
    /// # Panics
    ///
    /// Panics if traffic fails to drain within `max_cycles` — that would be
    /// a scheduling deadlock, which the model cannot produce by design.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let deadline = self.cycle + max_cycles;
        while !self.is_idle() {
            assert!(
                self.cycle < deadline,
                "dram failed to drain in {max_cycles} cycles"
            );
            self.tick();
            while let Some(c) = self.pop_completed() {
                out.push(c);
            }
        }
        while let Some(c) = self.pop_completed() {
            out.push(c);
        }
        out
    }

    /// FR-FCFS: prefer the oldest row-hit request; otherwise the oldest
    /// request overall. Issues at most one transaction.
    fn issue_one(&mut self, ch_idx: usize, now: u64) {
        let cfg = &self.cfg;
        let ch = &mut self.channels[ch_idx];
        // All-bank refresh: when tREFI elapses, close every row and block
        // the channel for tRFC (counted as activates for energy).
        if cfg.t_refi > 0 && now >= ch.next_refresh_at {
            ch.next_refresh_at = now + cfg.t_refi;
            let busy_until = now + cfg.t_rfc;
            for bank in &mut ch.banks {
                bank.open_row = None;
                bank.ready_at = bank.ready_at.max(busy_until);
            }
            ch.bus_free_at = ch.bus_free_at.max(busy_until);
            self.stats.refreshes += 1;
            return;
        }
        if ch.queue.is_empty() {
            return;
        }
        // A real controller keeps a bounded set of transactions in flight
        // (its CAM); commands for different banks pipeline freely within
        // that window, which is what lets activates overlap.
        if ch.in_flight >= 16 {
            return;
        }
        let pick = ch
            .queue
            .iter()
            .position(|p| ch.banks[p.loc.bank].open_row == Some(p.loc.row))
            .unwrap_or(0);
        let p = ch.queue.remove(pick).expect("index valid");
        let bank = &mut ch.banks[p.loc.bank];
        let col_ready = match bank.open_row {
            Some(row) if row == p.loc.row => {
                self.stats.row_hits += 1;
                now.max(bank.ready_at)
            }
            Some(_) => {
                self.stats.row_misses += 1;
                self.stats.activates += 1;
                let start = now.max(bank.ready_at).max(bank.activated_at + cfg.t_ras);
                let activated = start + cfg.t_rp;
                bank.open_row = Some(p.loc.row);
                bank.activated_at = activated;
                activated + cfg.t_rcd
            }
            None => {
                self.stats.row_misses += 1;
                self.stats.activates += 1;
                let start = now.max(bank.ready_at);
                bank.open_row = Some(p.loc.row);
                bank.activated_at = start;
                start + cfg.t_rcd
            }
        };
        let data_start = (col_ready + cfg.t_cl).max(ch.bus_free_at);
        let finish = data_start + cfg.t_burst;
        ch.bus_free_at = finish;
        bank.ready_at = col_ready + cfg.t_burst;
        ch.in_flight += 1;
        self.in_flight.push(Reverse((
            finish,
            p.id,
            p.addr,
            p.enqueued_at,
            ch_idx,
            p.is_write,
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_latency_is_activate_plus_cas() {
        let cfg = DramConfig::test_tiny();
        let (t_rcd, t_cl, t_burst) = (cfg.t_rcd, cfg.t_cl, cfg.t_burst);
        let mut sim = DramSim::new(cfg);
        assert!(sim.try_enqueue(7, 0));
        let done = sim.run_until_idle(1000);
        assert_eq!(done.len(), 1);
        // Issued at cycle 0: closed bank -> tRCD + tCL + tBURST.
        assert_eq!(done[0].finish_cycle, t_rcd + t_cl + t_burst);
        assert_eq!(done[0].id, 7);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let cfg = DramConfig::test_tiny();
        // Same channel/bank/row: sequential columns.
        let col_stride = 32 * 2; // access * channels * banks
        let mut sim = DramSim::new(cfg.clone());
        for i in 0..4u64 {
            assert!(sim.try_enqueue(i, i * col_stride));
        }
        sim.run_until_idle(10_000);
        assert_eq!(sim.stats().row_hits, 3);
        assert_eq!(sim.stats().row_misses, 1);

        // Alternating rows on the same bank: all conflicts.
        let row_stride = col_stride * u64::from(cfg.row_bytes / cfg.access_bytes);
        let mut sim2 = DramSim::new(cfg);
        for i in 0..4u64 {
            assert!(sim2.try_enqueue(i, (i % 2) * row_stride));
        }
        sim2.run_until_idle(10_000);
        // FR-FCFS reorders [r0,r1,r0,r1] into [r0,r0,r1,r1]: 2 hits.
        assert_eq!(sim2.stats().row_hits, 2);
        assert!(sim2.stats().activates >= 2);
        assert!(sim2.stats().mean_latency() > sim.stats().mean_latency());
    }

    #[test]
    fn channels_work_in_parallel() {
        let cfg = DramConfig::hbm2();
        let mut sim = DramSim::new(cfg.clone());
        // One burst per channel: all should finish at the same cycle.
        for i in 0..8u64 {
            assert!(sim.try_enqueue(i, i * u64::from(cfg.access_bytes)));
        }
        let done = sim.run_until_idle(1000);
        assert_eq!(done.len(), 8);
        let first = done[0].finish_cycle;
        assert!(done.iter().all(|c| c.finish_cycle == first));
    }

    #[test]
    fn queue_backpressure() {
        let cfg = DramConfig::test_tiny();
        let depth = cfg.queue_depth;
        let mut sim = DramSim::new(cfg);
        let mut accepted = 0;
        for i in 0..depth as u64 + 5 {
            if sim.try_enqueue(i, 0) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, depth);
        // After draining, the queue opens up again.
        sim.run_until_idle(100_000);
        assert!(sim.try_enqueue(999, 0));
    }

    #[test]
    fn streaming_throughput_approaches_bus_limit() {
        // Sequential addresses across all channels: the controller should
        // sustain close to one burst per channel-cycle.
        let cfg = DramConfig::hbm2();
        let mut sim = DramSim::new(cfg.clone());
        let bursts = 1024u64;
        let mut issued = 0u64;
        let mut next_addr = 0u64;
        while issued < bursts || !sim.is_idle() {
            while issued < bursts && sim.try_enqueue(issued, next_addr) {
                issued += 1;
                next_addr += u64::from(cfg.access_bytes);
            }
            sim.tick();
            while sim.pop_completed().is_some() {}
        }
        let bw = sim.stats().achieved_bandwidth_gbps(&cfg, sim.cycle());
        // Peak is 256 GB/s; streaming row-hit traffic should get close.
        let peak = cfg.total_bandwidth_gbps();
        assert!(bw > 0.6 * peak, "bandwidth {bw} GB/s too low (peak {peak})");
    }

    #[test]
    fn refresh_fires_periodically_and_blocks_banks() {
        let mut cfg = DramConfig::test_tiny();
        cfg.t_refi = 100;
        cfg.t_rfc = 20;
        let mut sim = DramSim::new(cfg.clone());
        // Idle ticking across several tREFI periods still performs refresh.
        for _ in 0..350 {
            sim.tick();
        }
        assert!(sim.stats().refreshes >= 3, "{}", sim.stats().refreshes);
        // A request right after refresh sees a closed bank.
        assert!(sim.try_enqueue(1, 0));
        let done = sim.run_until_idle(10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(sim.stats().row_misses, 1);
    }

    #[test]
    fn refresh_disabled_when_trefi_zero() {
        let mut cfg = DramConfig::test_tiny();
        cfg.t_refi = 0;
        let mut sim = DramSim::new(cfg);
        for _ in 0..10_000 {
            sim.tick();
        }
        assert_eq!(sim.stats().refreshes, 0);
    }

    #[test]
    fn writes_complete_and_are_counted() {
        let cfg = DramConfig::hbm2();
        let mut sim = DramSim::new(cfg.clone());
        assert!(sim.try_enqueue(1, 0));
        assert!(sim.try_enqueue_write(2, 4096));
        let done = sim.run_until_idle(10_000);
        assert_eq!(done.len(), 2);
        let w = done.iter().find(|c| c.id == 2).unwrap();
        assert!(w.is_write);
        assert_eq!(sim.stats().reads, 1);
        assert_eq!(sim.stats().writes, 1);
        assert_eq!(sim.stats().bytes(&cfg), 64);
        assert_eq!(sim.stats().read_bytes(&cfg), 32);
        assert_eq!(sim.stats().write_bytes(&cfg), 32);
    }

    #[test]
    fn stats_latency_consistency() {
        let cfg = DramConfig::hbm2();
        let mut sim = DramSim::new(cfg);
        for i in 0..64u64 {
            sim.try_enqueue(i, i * 4096);
            sim.tick();
        }
        let done = sim.run_until_idle(100_000);
        assert_eq!(done.len() as u64, sim.stats().reads);
        let total: u64 = done.iter().map(|c| c.finish_cycle - c.enqueued_at).sum();
        assert_eq!(total, sim.stats().total_latency);
    }
}
