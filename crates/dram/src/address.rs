//! Physical address decomposition: channel / bank / row / column.
//!
//! Low-order interleaving: consecutive bursts rotate across channels, then
//! banks, maximizing parallelism for the streaming KV traffic the
//! accelerator generates.

use crate::config::DramConfig;

/// A decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (burst) index within the row.
    pub column: u64,
}

/// Maps byte addresses to DRAM locations for a given configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressMap {
    burst_shift: u32,
    channels: usize,
    banks: usize,
    columns_per_row: u64,
}

impl AddressMap {
    /// Builds the mapper for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `access_bytes` is not a power of two or the row holds no
    /// whole bursts.
    #[must_use]
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(
            cfg.access_bytes.is_power_of_two(),
            "access_bytes must be a power of two"
        );
        let columns_per_row = u64::from(cfg.row_bytes) / u64::from(cfg.access_bytes);
        assert!(columns_per_row > 0, "row smaller than one burst");
        Self {
            burst_shift: cfg.access_bytes.trailing_zeros(),
            channels: cfg.channels,
            banks: cfg.banks_per_channel,
            columns_per_row,
        }
    }

    /// Decodes a byte address.
    #[must_use]
    pub fn decode(&self, addr: u64) -> Location {
        let burst = addr >> self.burst_shift;
        let channel = (burst % self.channels as u64) as usize;
        let rest = burst / self.channels as u64;
        let bank = (rest % self.banks as u64) as usize;
        let rest = rest / self.banks as u64;
        let column = rest % self.columns_per_row;
        let row = rest / self.columns_per_row;
        Location {
            channel,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_bursts_rotate_channels() {
        let cfg = DramConfig::hbm2();
        let map = AddressMap::new(&cfg);
        let step = u64::from(cfg.access_bytes);
        for i in 0..16u64 {
            let loc = map.decode(i * step);
            assert_eq!(loc.channel, (i % 8) as usize, "burst {i}");
        }
    }

    #[test]
    fn same_row_for_nearby_addresses_same_bank() {
        let cfg = DramConfig::hbm2();
        let map = AddressMap::new(&cfg);
        // Two addresses landing on channel 0, bank 0, adjacent columns.
        let a = map.decode(0);
        let b = map.decode(32 * 8 * 16); // next column on ch0 bank0
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn row_changes_after_columns_exhausted() {
        let cfg = DramConfig::hbm2();
        let map = AddressMap::new(&cfg);
        let cols = u64::from(cfg.row_bytes) / u64::from(cfg.access_bytes);
        let stride = 32 * 8 * 16; // one column step on a fixed channel/bank
        let last = map.decode((cols - 1) * stride);
        let next = map.decode(cols * stride);
        assert_eq!(last.row, 0);
        assert_eq!(next.row, 1);
        assert_eq!(next.column, 0);
    }
}
