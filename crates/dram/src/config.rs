//! HBM2 device and timing configuration.
//!
//! Defaults match the paper's setup (Table 1): "HBM2; 8 channels × 128-bit
//! at 2 GHz; each channel provides 32 GB/s bandwidth". Timing parameters are
//! typical HBM2 values in memory-clock cycles, in the spirit of DRAMsim3's
//! HBM2 config files.

/// DRAM device geometry, timing and energy constants.
///
/// # Examples
///
/// ```
/// use topick_dram::DramConfig;
///
/// let cfg = DramConfig::hbm2();
/// assert_eq!(cfg.channels, 8);
/// // 128-bit bus at 2 GT/s -> 32 GB/s per channel.
/// assert!((cfg.channel_bandwidth_gbps() - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Data bus width per channel in bits.
    pub bus_bits: u32,
    /// Transfer clock in GT/s (the paper's "2 GHz" is the data rate).
    pub clock_ghz: f64,
    /// Bytes transferred by one read/write transaction (one burst).
    pub access_bytes: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// RAS-to-CAS delay (activate → column command), cycles.
    pub t_rcd: u64,
    /// Row precharge time, cycles.
    pub t_rp: u64,
    /// CAS (column access) latency, cycles.
    pub t_cl: u64,
    /// Burst duration on the data bus, cycles.
    pub t_burst: u64,
    /// Minimum activate-to-precharge time, cycles.
    pub t_ras: u64,
    /// Per-channel request queue depth.
    pub queue_depth: usize,
    /// Average refresh interval (tREFI) in cycles; 0 disables refresh.
    pub t_refi: u64,
    /// Refresh duration (tRFC) in cycles, during which a channel's banks
    /// are unavailable.
    pub t_rfc: u64,
    /// I/O + array energy per transferred bit, picojoules.
    pub pj_per_bit: f64,
    /// Energy per row activation (activate + precharge), picojoules.
    pub act_energy_pj: f64,
    /// Static background power per channel, milliwatts.
    pub background_mw: f64,
}

impl DramConfig {
    /// The paper's HBM2 stack.
    #[must_use]
    pub fn hbm2() -> Self {
        Self {
            channels: 8,
            banks_per_channel: 16,
            bus_bits: 128,
            clock_ghz: 2.0,
            access_bytes: 32,
            row_bytes: 1024,
            t_rcd: 14,
            t_rp: 14,
            t_cl: 14,
            t_burst: 2, // 128-bit bus moves 16 B per transfer clock -> 32 B in two
            t_ras: 34,
            queue_depth: 32,
            t_refi: 7800, // 3.9 us at 2 GT/s
            t_rfc: 520,   // 260 ns
            pj_per_bit: 3.9,
            act_energy_pj: 1700.0,
            background_mw: 55.0,
        }
    }

    /// A tiny single-channel configuration for fast unit tests.
    #[must_use]
    pub fn test_tiny() -> Self {
        Self {
            channels: 1,
            banks_per_channel: 2,
            queue_depth: 4,
            ..Self::hbm2()
        }
    }

    /// Peak bandwidth of one channel in GB/s.
    #[must_use]
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        f64::from(self.bus_bits) / 8.0 * self.clock_ghz
    }

    /// Peak aggregate bandwidth in GB/s.
    #[must_use]
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.channel_bandwidth_gbps() * self.channels as f64
    }

    /// Transactions needed to move `bytes` (rounded up to bursts).
    #[must_use]
    pub fn transactions_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(u64::from(self.access_bytes))
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::hbm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_matches_table1() {
        let c = DramConfig::hbm2();
        assert_eq!(c.channels, 8);
        assert_eq!(c.bus_bits, 128);
        assert!((c.total_bandwidth_gbps() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn transactions_round_up() {
        let c = DramConfig::hbm2();
        assert_eq!(c.transactions_for(0), 0);
        assert_eq!(c.transactions_for(1), 1);
        assert_eq!(c.transactions_for(32), 1);
        assert_eq!(c.transactions_for(33), 2);
        assert_eq!(c.transactions_for(96), 3);
    }
}
