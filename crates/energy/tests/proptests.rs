//! Property tests of the energy models: monotonicity and unit sanity.

use proptest::prelude::*;
use topick_energy::{EnergyBreakdown, EventCounts, EventEnergies, SramModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SRAM area and leakage grow monotonically with capacity.
    #[test]
    fn sram_monotone_in_capacity(kb_a in 1u64..512, kb_b in 1u64..512) {
        let m = SramModel::node_65nm();
        let (small, large) = (kb_a.min(kb_b), kb_a.max(kb_b));
        let fa = m.figures(small * 1024, 32.0);
        let fb = m.figures(large * 1024, 32.0);
        prop_assert!(fb.area_mm2 >= fa.area_mm2);
        prop_assert!(fb.leakage_mw >= fa.leakage_mw);
        prop_assert!(fb.read_pj_per_byte >= fa.read_pj_per_byte);
    }

    /// Dynamic power scales linearly with streamed bytes per cycle.
    #[test]
    fn sram_power_linear_in_bandwidth(bpc in 1.0f64..1024.0) {
        let m = SramModel::node_65nm();
        let base = m.figures(64 * 1024, 0.0);
        let loaded = m.figures(64 * 1024, bpc);
        let dyn_mw = loaded.power_mw - base.power_mw;
        let expect = base.read_pj_per_byte * bpc * 0.5; // 500 MHz
        prop_assert!((dyn_mw - expect).abs() < 1e-9);
    }

    /// Event energy is additive: merging counts merges energies.
    #[test]
    fn event_energy_additive(
        a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000,
    ) {
        let e = EventEnergies::node_65nm();
        let x = EventCounts { mac_12x4: a, exp: b, buffer_read_bytes: c, ..Default::default() };
        let y = EventCounts { mac_12x4: c, exp: a, buffer_read_bytes: b, ..Default::default() };
        let mut merged = x;
        merged.merge(&y);
        let sum = x.compute_energy_pj(&e) + y.compute_energy_pj(&e);
        prop_assert!((merged.compute_energy_pj(&e) - sum).abs() < 1e-6);
        let bsum = x.buffer_energy_pj(&e) + y.buffer_energy_pj(&e);
        prop_assert!((merged.buffer_energy_pj(&e) - bsum).abs() < 1e-6);
    }

    /// Breakdown fractions always sum to one for non-empty breakdowns.
    #[test]
    fn fractions_normalize(
        d in 0.0f64..1e9, s in 0.0f64..1e9, c in 0.0f64..1e9,
    ) {
        prop_assume!(d + s + c > 0.0);
        let b = EnergyBreakdown { dram_pj: d, buffer_pj: s, compute_pj: c };
        let (fd, fs, fc) = b.fractions();
        prop_assert!((fd + fs + fc - 1.0).abs() < 1e-9);
        prop_assert!(fd >= 0.0 && fs >= 0.0 && fc >= 0.0);
    }
}
