//! A CACTI-style SRAM area/power/energy scaling model, calibrated at the
//! paper's 65 nm node.
//!
//! CACTI's detailed wire/array models reduce, for the sizes used here
//! (hundreds of bytes to hundreds of kilobytes), to smooth power laws in
//! capacity. We calibrate the constants so the paper's on-chip buffers
//! (2 × 192 KB K/V buffers streaming 512 B/cycle to 16 lanes at 500 MHz)
//! land on Table 2's 5.968 mm² / 1053 mW.

/// Area/power/energy figures of one SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramFigures {
    /// Array area in mm².
    pub area_mm2: f64,
    /// Total power at the given streaming rate (mW).
    pub power_mw: f64,
    /// Dynamic energy per byte read (pJ).
    pub read_pj_per_byte: f64,
    /// Dynamic energy per byte written (pJ).
    pub write_pj_per_byte: f64,
    /// Leakage power (mW).
    pub leakage_mw: f64,
}

/// CACTI-like SRAM model at 65 nm.
///
/// # Examples
///
/// ```
/// use topick_energy::SramModel;
///
/// let model = SramModel::node_65nm();
/// // A 192 KB buffer streaming 512 bytes per cycle at 500 MHz.
/// let buf = model.figures(192 * 1024, 512.0);
/// assert!(buf.area_mm2 > 1.0 && buf.area_mm2 < 5.0);
/// assert!(buf.power_mw > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// mm² per KB at the reference size.
    area_per_kb_mm2: f64,
    /// Area exponent (sub-linear growth from shared periphery).
    area_exponent: f64,
    /// pJ per byte read at the reference size.
    read_pj_per_byte_ref: f64,
    /// Energy exponent in capacity (longer wires cost more per access).
    energy_exponent: f64,
    /// Leakage mW per KB.
    leakage_mw_per_kb: f64,
    /// Clock for converting access energy to power (GHz).
    clock_ghz: f64,
    /// Reference capacity (KB) the constants are quoted at.
    ref_kb: f64,
}

impl SramModel {
    /// The 65 nm LP calibration used throughout the reproduction.
    #[must_use]
    pub fn node_65nm() -> Self {
        Self {
            area_per_kb_mm2: 0.0145,
            area_exponent: 0.97,
            read_pj_per_byte_ref: 2.0,
            energy_exponent: 0.12,
            leakage_mw_per_kb: 0.06,
            clock_ghz: 0.5,
            ref_kb: 192.0,
        }
    }

    /// Figures for a macro of `bytes` capacity streaming `bytes_per_cycle`
    /// bytes of read traffic each clock.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or `bytes_per_cycle` is negative.
    #[must_use]
    pub fn figures(&self, bytes: u64, bytes_per_cycle: f64) -> SramFigures {
        assert!(bytes > 0, "sram capacity must be positive");
        assert!(
            bytes_per_cycle >= 0.0,
            "bytes_per_cycle must be non-negative"
        );
        let kb = bytes as f64 / 1024.0;
        let area_mm2 = self.area_per_kb_mm2 * kb.powf(self.area_exponent);
        let size_factor = (kb / self.ref_kb).max(1e-3).powf(self.energy_exponent);
        let read_pj_per_byte = self.read_pj_per_byte_ref * size_factor;
        let write_pj_per_byte = read_pj_per_byte * 1.15;
        let leakage_mw = self.leakage_mw_per_kb * kb;
        let dyn_mw = read_pj_per_byte * bytes_per_cycle * self.clock_ghz; // pJ/B * B/cyc * Gcyc/s = mW
        SramFigures {
            area_mm2,
            power_mw: dyn_mw + leakage_mw,
            read_pj_per_byte,
            write_pj_per_byte,
            leakage_mw,
        }
    }
}

impl Default for SramModel {
    fn default() -> Self {
        Self::node_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_sublinearly() {
        let m = SramModel::node_65nm();
        let a1 = m.figures(64 * 1024, 32.0).area_mm2;
        let a2 = m.figures(128 * 1024, 32.0).area_mm2;
        assert!(a2 > a1);
        assert!(a2 < 2.0 * a1 * 1.01, "should not be super-linear");
    }

    #[test]
    fn paper_buffer_calibration() {
        // Two 192KB buffers each feeding 16 lanes x 32B/cycle should land
        // near Table 2's on-chip buffer row: 5.968 mm2, 1053 mW.
        let m = SramModel::node_65nm();
        let kv = m.figures(192 * 1024, 512.0);
        let area = 2.0 * kv.area_mm2;
        let power = 2.0 * kv.power_mw;
        assert!((area - 5.968).abs() / 5.968 < 0.25, "area {area}");
        assert!((power - 1053.0).abs() / 1053.0 < 0.10, "power {power}");
    }

    #[test]
    fn energy_per_byte_reasonable() {
        let m = SramModel::node_65nm();
        let f = m.figures(192 * 1024, 0.0);
        // 65nm large SRAM: ~0.5-3 pJ/byte is the plausible band.
        assert!(f.read_pj_per_byte > 0.3 && f.read_pj_per_byte < 3.0);
        assert!(f.write_pj_per_byte > f.read_pj_per_byte);
        // Idle macro burns only leakage.
        assert!((f.power_mw - f.leakage_mw).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SramModel::node_65nm().figures(0, 1.0);
    }
}
