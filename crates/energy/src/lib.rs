//! # topick-energy
//!
//! Area, power and energy models for the Token-Picker reproduction:
//!
//! * a CACTI-style SRAM scaling law ([`SramModel`]) standing in for the
//!   paper's CACTI 7 usage,
//! * an analytical 65 nm module inventory ([`AreaPowerModel`]) that
//!   regenerates Table 2 and the §5.2.3 overhead percentages,
//! * per-event on-chip energies ([`EventEnergies`], [`EventCounts`]) that
//!   the accelerator simulator turns into the Fig. 10(b) breakdown
//!   ([`EnergyBreakdown`]).
//!
//! ## Example
//!
//! ```
//! use topick_energy::AreaPowerModel;
//!
//! let table = AreaPowerModel::paper().table2();
//! let total = table.last().expect("total row");
//! println!("modeled total: {:.3} mm2, {:.1} mW", total.area_mm2, total.power_mw);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod areapower;
pub mod events;
pub mod sram;

pub use areapower::{AreaPowerModel, ModuleReport, ModuleRole, Primitives};
pub use events::{EnergyBreakdown, EventCounts, EventEnergies};
pub use sram::{SramFigures, SramModel};
