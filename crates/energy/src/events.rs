//! Per-event energies used by the accelerator simulator to produce the
//! Fig. 10(b) energy breakdown.
//!
//! The DRAM side (pJ/bit, activate energy, background power) lives in
//! `topick-dram`; this module covers on-chip compute and buffer events.

use crate::sram::SramModel;

/// Energy cost of the on-chip event types, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventEnergies {
    /// One 12×4-bit multiply-accumulate (chunk-mode step 0).
    pub mac_12x4_pj: f64,
    /// One 12×12-bit multiply-accumulate (step 1 / prompt mode).
    pub mac_12x12_pj: f64,
    /// One fixed-point EXP evaluation.
    pub exp_pj: f64,
    /// One scoreboard entry read or write (67 bits).
    pub scoreboard_access_pj: f64,
    /// One byte read from the K/V SRAM buffers.
    pub buffer_read_pj_per_byte: f64,
    /// One byte written to the K/V SRAM buffers.
    pub buffer_write_pj_per_byte: f64,
}

impl EventEnergies {
    /// The 65 nm calibration, derived from the same primitives as the
    /// area/power model.
    #[must_use]
    pub fn node_65nm() -> Self {
        let sram = SramModel::node_65nm().figures(192 * 1024, 0.0);
        // A 12x12 multiplier at 0.25 mW / 500 MHz = 0.5 pJ per operation;
        // a 12x4 operation toggles a third of the partial products.
        Self {
            mac_12x4_pj: 0.18,
            mac_12x12_pj: 0.5,
            exp_pj: 1.8,
            scoreboard_access_pj: 0.35,
            buffer_read_pj_per_byte: sram.read_pj_per_byte,
            buffer_write_pj_per_byte: sram.write_pj_per_byte,
        }
    }
}

impl Default for EventEnergies {
    fn default() -> Self {
        Self::node_65nm()
    }
}

/// Event counts accumulated by an accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// 12×4-bit MACs executed.
    pub mac_12x4: u64,
    /// 12×12-bit MACs executed.
    pub mac_12x12: u64,
    /// EXP evaluations.
    pub exp: u64,
    /// Scoreboard accesses.
    pub scoreboard: u64,
    /// Bytes read from on-chip buffers.
    pub buffer_read_bytes: u64,
    /// Bytes written to on-chip buffers.
    pub buffer_write_bytes: u64,
}

impl EventCounts {
    /// Total on-chip compute energy (MACs + EXP + scoreboard), picojoules.
    #[must_use]
    pub fn compute_energy_pj(&self, e: &EventEnergies) -> f64 {
        self.mac_12x4 as f64 * e.mac_12x4_pj
            + self.mac_12x12 as f64 * e.mac_12x12_pj
            + self.exp as f64 * e.exp_pj
            + self.scoreboard as f64 * e.scoreboard_access_pj
    }

    /// On-chip buffer energy, picojoules.
    #[must_use]
    pub fn buffer_energy_pj(&self, e: &EventEnergies) -> f64 {
        self.buffer_read_bytes as f64 * e.buffer_read_pj_per_byte
            + self.buffer_write_bytes as f64 * e.buffer_write_pj_per_byte
    }

    /// Accumulates another run's counts.
    pub fn merge(&mut self, other: &EventCounts) {
        self.mac_12x4 += other.mac_12x4;
        self.mac_12x12 += other.mac_12x12;
        self.exp += other.exp;
        self.scoreboard += other.scoreboard;
        self.buffer_read_bytes += other.buffer_read_bytes;
        self.buffer_write_bytes += other.buffer_write_bytes;
    }
}

/// A three-way energy breakdown matching Fig. 10(b)'s stacked bars.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM energy (pJ).
    pub dram_pj: f64,
    /// On-chip buffer energy (pJ).
    pub buffer_pj: f64,
    /// Compute energy (pJ).
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.buffer_pj + self.compute_pj
    }

    /// Fractions `(dram, buffer, compute)` of the total.
    #[must_use]
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_pj();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.dram_pj / t, self.buffer_pj / t, self.compute_pj / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energies_positive_and_ordered() {
        let e = EventEnergies::node_65nm();
        assert!(e.mac_12x4_pj > 0.0);
        assert!(e.mac_12x4_pj < e.mac_12x12_pj, "4-bit MAC must be cheaper");
        assert!(e.buffer_write_pj_per_byte > e.buffer_read_pj_per_byte);
    }

    #[test]
    fn counts_to_energy() {
        let e = EventEnergies::node_65nm();
        let c = EventCounts {
            mac_12x4: 100,
            mac_12x12: 10,
            exp: 5,
            scoreboard: 20,
            buffer_read_bytes: 1000,
            buffer_write_bytes: 100,
        };
        let compute = c.compute_energy_pj(&e);
        let expect = 100.0 * e.mac_12x4_pj
            + 10.0 * e.mac_12x12_pj
            + 5.0 * e.exp_pj
            + 20.0 * e.scoreboard_access_pj;
        assert!((compute - expect).abs() < 1e-9);
        assert!(c.buffer_energy_pj(&e) > 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EventCounts::default();
        let b = EventCounts {
            mac_12x4: 3,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.mac_12x4, 6);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = EnergyBreakdown {
            dram_pj: 70.0,
            buffer_pj: 20.0,
            compute_pj: 10.0,
        };
        let (d, s, c) = b.fractions();
        assert!((d + s + c - 1.0).abs() < 1e-12);
        assert!((d - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0));
    }
}
