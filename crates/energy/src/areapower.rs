//! Module-level area/power inventory of the ToPick accelerator — the
//! reproduction of Table 2 (Synopsys DC @ Samsung 65 nm LP, 500 MHz).
//!
//! We cannot run synthesis, so every module is modeled analytically from
//! primitive constants (a 12×12 multiplier, a register bit, a fixed-point
//! EXP unit, a bit of mux), calibrated at 65 nm so the derived figures track
//! the published table. The harness prints model-vs-paper side by side.

use crate::sram::SramModel;

/// Primitive area/power constants at 65 nm LP, 500 MHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitives {
    /// Area of a 12×12-bit multiplier (mm²).
    pub mult12_area: f64,
    /// Power of a 12×12-bit multiplier at full toggle (mW).
    pub mult12_power: f64,
    /// Area of one adder-tree 24-bit adder (mm²).
    pub adder_area: f64,
    /// Power of one adder-tree adder (mW).
    pub adder_power: f64,
    /// Area of a 32-bit fixed-point EXP unit (mm²).
    pub exp_area: f64,
    /// Power of a 32-bit EXP unit (mW).
    pub exp_power: f64,
    /// Area of one register (flip-flop) bit (mm²).
    pub reg_bit_area: f64,
    /// Power of one register bit (mW).
    pub reg_bit_power: f64,
    /// Area of one mux-network bit slice (mm²).
    pub mux_bit_area: f64,
    /// Power of one mux-network bit slice (mW).
    pub mux_bit_power: f64,
}

impl Primitives {
    /// The 65 nm calibration.
    #[must_use]
    pub fn node_65nm() -> Self {
        Self {
            mult12_area: 1.25e-3,
            mult12_power: 0.25,
            adder_area: 2.4e-4,
            adder_power: 0.031,
            exp_area: 0.013,
            exp_power: 0.9,
            reg_bit_area: 1.0e-5,
            reg_bit_power: 2.05e-3,
            mux_bit_area: 9.9e-5,
            mux_bit_power: 4.1e-3,
        }
    }
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleReport {
    /// Module name as printed in the paper.
    pub name: &'static str,
    /// Modeled area (mm²).
    pub area_mm2: f64,
    /// Modeled power (mW).
    pub power_mw: f64,
    /// Paper's synthesized area, for side-by-side printing.
    pub paper_area_mm2: f64,
    /// Paper's synthesized power.
    pub paper_power_mw: f64,
}

/// Which optimization family a module belongs to, for the overhead
/// accounting of §5.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleRole {
    /// Present in the no-pruning baseline accelerator.
    Baseline,
    /// Added to reduce V accesses (Margin Generator, DAG, PEC).
    VSaving,
    /// Added to reduce K accesses (Scoreboard, RPDU).
    KSaving,
}

/// The full ToPick area/power model.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerModel {
    prims: Primitives,
    sram: SramModel,
    lanes: usize,
    lane_dim: usize,
}

impl AreaPowerModel {
    /// The paper's configuration: 16 lanes, 64-wide multiplier trees.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            prims: Primitives::node_65nm(),
            sram: SramModel::node_65nm(),
            lanes: 16,
            lane_dim: 64,
        }
    }

    /// Per-lane module rows (the indented section of Table 2).
    #[must_use]
    pub fn lane_breakdown(&self) -> Vec<(ModuleReport, ModuleRole)> {
        let p = &self.prims;
        let d = self.lane_dim as f64;
        let mult_adder = ModuleReport {
            name: "Multipliers & Adder-Tree 12b",
            area_mm2: d * p.mult12_area + (d - 1.0) * p.adder_area,
            power_mw: d * p.mult12_power + (d - 1.0) * p.adder_power,
            paper_area_mm2: 0.095,
            paper_power_mw: 17.94,
        };
        // Probability Generator: 2 EXP units + a 16-entry x 36-bit FIFO.
        let fifo_bits = 16.0 * 36.0;
        let prob_gen = ModuleReport {
            name: "Prob Gen",
            area_mm2: 2.0 * p.exp_area + fifo_bits * p.reg_bit_area,
            power_mw: 2.0 * p.exp_power + fifo_bits * p.reg_bit_power * 0.5,
            paper_area_mm2: 0.032,
            paper_power_mw: 2.22,
        };
        // PEC: a shift-add EXP-difference approximation (a third of a full
        // EXP unit).
        let pec = ModuleReport {
            name: "PEC",
            area_mm2: 0.3 * p.exp_area,
            power_mw: 0.8 * p.exp_power,
            paper_area_mm2: 0.004,
            paper_power_mw: 0.73,
        };
        // Scoreboard: 32 entries x 67 bits (Table 1).
        let sb_bits = 32.0 * 67.0;
        let scoreboard = ModuleReport {
            name: "Scoreboard",
            area_mm2: sb_bits * p.reg_bit_area * 1.12,
            power_mw: sb_bits * p.reg_bit_power,
            paper_area_mm2: 0.024,
            paper_power_mw: 4.69,
        };
        // RPDU: one comparator + request mux control.
        let rpdu = ModuleReport {
            name: "RPDU",
            area_mm2: 80.0 * p.reg_bit_area,
            power_mw: 80.0 * p.reg_bit_power,
            paper_area_mm2: 0.001,
            paper_power_mw: 0.17,
        };
        // MUX network: 64 x 12-bit slices between step-0 and step-1 paths.
        let mux_bits = d * 12.0;
        let mux = ModuleReport {
            name: "Mux Network",
            area_mm2: mux_bits * p.mux_bit_area,
            power_mw: mux_bits * p.mux_bit_power,
            paper_area_mm2: 0.076,
            paper_power_mw: 3.13,
        };
        vec![
            (mult_adder, ModuleRole::Baseline),
            (prob_gen, ModuleRole::Baseline),
            (pec, ModuleRole::VSaving),
            (scoreboard, ModuleRole::KSaving),
            (rpdu, ModuleRole::KSaving),
            (mux, ModuleRole::Baseline),
        ]
    }

    /// Shared (non-lane) module rows.
    #[must_use]
    pub fn shared_breakdown(&self) -> Vec<(ModuleReport, ModuleRole)> {
        let p = &self.prims;
        let d = self.lane_dim as f64;
        // Margin Generator: sign-split accumulators over the query plus
        // shifted margin registers.
        let margin = ModuleReport {
            name: "Margin Generator",
            area_mm2: (d - 1.0) * p.adder_area * 2.0 + 800.0 * p.reg_bit_area * 0.6,
            power_mw: (d - 1.0) * p.adder_power * 2.0 * 0.4 + 800.0 * p.reg_bit_power * 1.4,
            paper_area_mm2: 0.014,
            paper_power_mw: 3.78,
        };
        // DAG: 16-input adder tree + ln unit + denominator register.
        let dag = ModuleReport {
            name: "DAG",
            area_mm2: 15.0 * p.adder_area + 0.35 * p.exp_area + 120.0 * p.reg_bit_area,
            power_mw: 15.0 * p.adder_power + 1.8 * p.exp_power + 120.0 * p.reg_bit_power,
            paper_area_mm2: 0.010,
            paper_power_mw: 2.49,
        };
        // On-chip buffers: 2 x 192 KB K/V + 512 B operand buffer, streaming
        // 512 B/cycle to the 16 lanes.
        let kv = self.sram.figures(192 * 1024, 512.0);
        let operand = self.sram.figures(512, 2.0);
        let buffer = ModuleReport {
            name: "On-chip buffer",
            area_mm2: 2.0 * kv.area_mm2 + operand.area_mm2,
            power_mw: 2.0 * kv.power_mw + operand.power_mw,
            paper_area_mm2: 5.968,
            paper_power_mw: 1053.32,
        };
        vec![
            (margin, ModuleRole::VSaving),
            (dag, ModuleRole::VSaving),
            (buffer, ModuleRole::Baseline),
        ]
    }

    /// The aggregated table: per-lane rows, the ×16 lane total, shared
    /// modules, and the grand total (model and paper columns).
    #[must_use]
    pub fn table2(&self) -> Vec<ModuleReport> {
        let lane = self.lane_breakdown();
        let lane_area: f64 = lane.iter().map(|(m, _)| m.area_mm2).sum();
        let lane_power: f64 = lane.iter().map(|(m, _)| m.power_mw).sum();
        let mut rows = vec![ModuleReport {
            name: "PE Lane x 16",
            area_mm2: lane_area * self.lanes as f64,
            power_mw: lane_power * self.lanes as f64,
            paper_area_mm2: 2.518,
            paper_power_mw: 426.76,
        }];
        rows.extend(lane.into_iter().map(|(m, _)| m));
        let shared = self.shared_breakdown();
        let shared_area: f64 = shared.iter().map(|(m, _)| m.area_mm2).sum();
        let shared_power: f64 = shared.iter().map(|(m, _)| m.power_mw).sum();
        rows.extend(shared.into_iter().map(|(m, _)| m));
        rows.push(ModuleReport {
            name: "Total",
            area_mm2: lane_area * self.lanes as f64 + shared_area,
            power_mw: lane_power * self.lanes as f64 + shared_power,
            paper_area_mm2: 8.593,
            paper_power_mw: 1492.78,
        });
        rows
    }

    /// Area/power overhead of the pruning modules over the baseline
    /// accelerator, as percentages `(v_area, v_power, k_area, k_power)` —
    /// the §5.2.3 numbers (paper: 1.0%, 1.3%, 4.9%, 5.6%).
    #[must_use]
    pub fn overheads(&self) -> (f64, f64, f64, f64) {
        let mut base_area = 0.0;
        let mut base_power = 0.0;
        let mut v_area = 0.0;
        let mut v_power = 0.0;
        let mut k_area = 0.0;
        let mut k_power = 0.0;
        let lanes = self.lanes as f64;
        for (m, role) in self.lane_breakdown() {
            let (a, p) = (m.area_mm2 * lanes, m.power_mw * lanes);
            match role {
                ModuleRole::Baseline => {
                    base_area += a;
                    base_power += p;
                }
                ModuleRole::VSaving => {
                    v_area += a;
                    v_power += p;
                }
                ModuleRole::KSaving => {
                    k_area += a;
                    k_power += p;
                }
            }
        }
        for (m, role) in self.shared_breakdown() {
            match role {
                ModuleRole::Baseline => {
                    base_area += m.area_mm2;
                    base_power += m.power_mw;
                }
                ModuleRole::VSaving => {
                    v_area += m.area_mm2;
                    v_power += m.power_mw;
                }
                ModuleRole::KSaving => {
                    k_area += m.area_mm2;
                    k_power += m.power_mw;
                }
            }
        }
        (
            100.0 * v_area / base_area,
            100.0 * v_power / base_power,
            100.0 * k_area / base_area,
            100.0 * k_power / base_power,
        )
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_modules_track_paper_values() {
        let model = AreaPowerModel::paper();
        for (m, _) in model.lane_breakdown() {
            let da = (m.area_mm2 - m.paper_area_mm2).abs() / m.paper_area_mm2;
            let dp = (m.power_mw - m.paper_power_mw).abs() / m.paper_power_mw;
            assert!(
                da < 0.5,
                "{}: area {:.4} vs {:.4}",
                m.name,
                m.area_mm2,
                m.paper_area_mm2
            );
            assert!(
                dp < 0.5,
                "{}: power {:.3} vs {:.3}",
                m.name,
                m.power_mw,
                m.paper_power_mw
            );
        }
    }

    #[test]
    fn totals_track_paper() {
        let model = AreaPowerModel::paper();
        let rows = model.table2();
        let total = rows.last().unwrap();
        assert_eq!(total.name, "Total");
        assert!(
            (total.area_mm2 - 8.593).abs() / 8.593 < 0.35,
            "{}",
            total.area_mm2
        );
        assert!(
            (total.power_mw - 1492.78).abs() / 1492.78 < 0.35,
            "{}",
            total.power_mw
        );
    }

    #[test]
    fn overheads_are_small_like_the_paper() {
        // Paper: V modules ~1.0% area / 1.3% power; K modules ~4.9% / 5.6%.
        let (va, vp, ka, kp) = AreaPowerModel::paper().overheads();
        assert!(va > 0.1 && va < 4.0, "v area overhead {va}%");
        assert!(vp > 0.3 && vp < 6.0, "v power overhead {vp}%");
        assert!(ka > 0.5 && ka < 10.0, "k area overhead {ka}%");
        assert!(kp > 1.0 && kp < 12.0, "k power overhead {kp}%");
    }

    #[test]
    fn table_has_all_paper_rows() {
        let names: Vec<&str> = AreaPowerModel::paper()
            .table2()
            .iter()
            .map(|m| m.name)
            .collect();
        for expect in [
            "PE Lane x 16",
            "Multipliers & Adder-Tree 12b",
            "Prob Gen",
            "PEC",
            "Scoreboard",
            "RPDU",
            "Mux Network",
            "Margin Generator",
            "DAG",
            "On-chip buffer",
            "Total",
        ] {
            assert!(names.contains(&expect), "missing row {expect}");
        }
    }
}
