//! Property-based tests for the Token-Picker core invariants.
//!
//! The paper's central safety claim (§3.1) is that the estimator is
//! *conservative*: a pruned token provably has true attention probability
//! below the threshold. These tests exercise that claim on randomized
//! queries, keys, precisions and thresholds.

use proptest::prelude::*;
use topick_core::{
    exact_probabilities, MarginTable, PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix,
    QVector, ScanOrder,
};

fn code_vec(pc: PrecisionConfig, len: usize) -> impl Strategy<Value = Vec<i16>> {
    prop::collection::vec(pc.min_value()..=pc.max_value(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Margins always bracket the exact score, at every chunk depth.
    #[test]
    fn margins_bracket_exact(
        q in code_vec(PrecisionConfig::paper(), 16),
        k in code_vec(PrecisionConfig::paper(), 16),
        chunks in 1u32..=3,
    ) {
        let pc = PrecisionConfig::paper();
        let qv = QVector::from_codes(q, 1.0, pc);
        let table = MarginTable::from_query(&qv);
        let exact = qv.dot_codes(&k);
        let ps = qv.dot_known(&k, chunks);
        let m = table.pair(chunks);
        prop_assert!(ps + m.min <= exact);
        prop_assert!(exact <= ps + m.max);
    }

    /// Margin widths shrink monotonically with chunk depth.
    #[test]
    fn margin_width_monotone(q in code_vec(PrecisionConfig::paper(), 32)) {
        let pc = PrecisionConfig::paper();
        let qv = QVector::from_codes(q, 1.0, pc);
        let table = MarginTable::from_query(&qv);
        let mut prev_width = i64::MAX;
        for c in 1..=3 {
            let m = table.pair(c);
            let width = m.max - m.min;
            prop_assert!(width >= 0);
            prop_assert!(width <= prev_width);
            prev_width = width;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SOUNDNESS: no token with true probability above the threshold is ever
    /// pruned, for any scan order and threshold.
    #[test]
    fn estimator_never_prunes_dominant_tokens(
        seed in any::<u64>(),
        n in 2usize..48,
        dim in 1usize..24,
        thr_exp in 1.0f64..6.0,
        order_idx in 0usize..3,
    ) {
        let pc = PrecisionConfig::paper();
        // Deterministic pseudo-random codes from the seed (xorshift).
        let mut s = seed | 1;
        let mut next_code = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 32) as i32 % 2048) as i16
        };
        let q: Vec<i16> = (0..dim).map(|_| next_code()).collect();
        let k: Vec<i16> = (0..n * dim).map(|_| next_code()).collect();
        let qv = QVector::from_codes(q, 0.01, pc);
        let keys = QMatrix::from_codes(k, dim, 0.01, pc).unwrap();
        let thr = 10f64.powf(-thr_exp);
        let order = [
            ScanOrder::FirstAndReverse,
            ScanOrder::ReverseChronological,
            ScanOrder::Sequential,
        ][order_idx];
        let cfg = PrunerConfig::new(thr).unwrap().with_order(order);
        let outcome = ProgressivePruner::new(cfg).run(&qv, &keys).unwrap();

        let exact = exact_probabilities(&qv, &keys);
        let kept: std::collections::HashSet<usize> =
            outcome.kept.iter().map(|kt| kt.index).collect();
        for (t, &p) in exact.iter().enumerate() {
            if p > thr {
                prop_assert!(kept.contains(&t), "token {} with p={} pruned (thr={})", t, p, thr);
            }
        }
    }

    /// The attention output computed over survivors is close to the exact
    /// attention output: pruning error is bounded by the pruned mass.
    #[test]
    fn pruned_attention_output_error_bounded(
        seed in any::<u64>(),
        n in 4usize..40,
        dim in 2usize..16,
    ) {
        let pc = PrecisionConfig::paper();
        let mut s = seed | 1;
        let mut next_code = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 32) as i32 % 2048) as i16
        };
        let q: Vec<i16> = (0..dim).map(|_| next_code()).collect();
        let k: Vec<i16> = (0..n * dim).map(|_| next_code()).collect();
        let qv = QVector::from_codes(q, 0.02, pc);
        let keys = QMatrix::from_codes(k, dim, 0.02, pc).unwrap();
        let thr = 1e-4;
        let cfg = PrunerConfig::new(thr).unwrap();
        let outcome = ProgressivePruner::new(cfg).run(&qv, &keys).unwrap();

        // Values in [-1, 1]; compare exact vs pruned attention outputs.
        let values: Vec<f32> = (0..n * dim)
            .map(|i| ((i / dim * 7 + i % dim * 13) % 17) as f32 / 8.5 - 1.0)
            .collect();
        let values = topick_core::Rows::new(&values, dim);
        let exact_p = exact_probabilities(&qv, &keys);
        let exact_pairs: Vec<(usize, f64)> = exact_p.iter().cloned().enumerate().collect();
        let exact_out = topick_core::weighted_value_sum(&exact_pairs, values);
        let pruned_out = topick_core::weighted_value_sum(&outcome.probability_pairs(), values);
        // Pruned mass <= n * thr; renormalization adds the same order.
        // |v| <= 1, so output error is bounded by ~2 * n * thr.
        let bound = 2.0 * n as f64 * thr + 1e-6;
        for (a, b) in exact_out.iter().zip(&pruned_out) {
            prop_assert!(
                (f64::from(*a) - f64::from(*b)).abs() <= bound,
                "output error {} exceeds bound {}",
                (a - b).abs(),
                bound
            );
        }
    }

    /// Scan order never affects soundness, only efficiency; the kept set is
    /// always a superset of the truly-dominant set and stats stay consistent.
    #[test]
    fn stats_consistency_all_orders(
        seed in any::<u64>(),
        n in 1usize..64,
    ) {
        let dim = 8;
        let pc = PrecisionConfig::paper();
        let mut s = seed | 1;
        let mut next_code = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 32) as i32 % 2048) as i16
        };
        let q: Vec<i16> = (0..dim).map(|_| next_code()).collect();
        let k: Vec<i16> = (0..n * dim).map(|_| next_code()).collect();
        let qv = QVector::from_codes(q, 0.01, pc);
        let keys = QMatrix::from_codes(k, dim, 0.01, pc).unwrap();
        for order in [
            ScanOrder::FirstAndReverse,
            ScanOrder::ReverseChronological,
            ScanOrder::Sequential,
        ] {
            let cfg = PrunerConfig::new(1e-3).unwrap().with_order(order);
            let o = ProgressivePruner::new(cfg).run(&qv, &keys).unwrap();
            prop_assert_eq!(o.stats.tokens, n);
            prop_assert_eq!(o.stats.kept, o.kept.len());
            prop_assert_eq!(o.stats.chunk_fetches[0], n as u64);
            prop_assert_eq!(
                o.stats.pruned_at.iter().sum::<u64>() as usize,
                o.stats.pruned()
            );
            // Kept tokens sorted, unique, in range.
            for w in o.kept.windows(2) {
                prop_assert!(w[0].index < w[1].index);
            }
        }
    }

    /// Quantization round-trip error is within half an LSB per element.
    #[test]
    fn quantization_error_bounded(vals in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let pc = PrecisionConfig::paper();
        let q = QVector::quantize(&vals, pc);
        let back = q.dequantize();
        let half_lsb = q.scale() as f32 * 0.5 + 1e-6;
        for (a, b) in vals.iter().zip(&back) {
            prop_assert!((a - b).abs() <= half_lsb);
        }
    }

    /// Lower thresholds can only keep more tokens (monotonicity in thr).
    #[test]
    fn threshold_monotonicity(seed in any::<u64>(), n in 4usize..48) {
        let dim = 8;
        let pc = PrecisionConfig::paper();
        let mut s = seed | 1;
        let mut next_code = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 32) as i32 % 2048) as i16
        };
        let q: Vec<i16> = (0..dim).map(|_| next_code()).collect();
        let k: Vec<i16> = (0..n * dim).map(|_| next_code()).collect();
        let qv = QVector::from_codes(q, 0.01, pc);
        let keys = QMatrix::from_codes(k, dim, 0.01, pc).unwrap();
        let run = |thr: f64| {
            ProgressivePruner::new(PrunerConfig::new(thr).unwrap())
                .run(&qv, &keys)
                .unwrap()
                .stats
                .kept
        };
        let strict = run(1e-5);
        let loose = run(1e-2);
        prop_assert!(strict >= loose, "kept(1e-5)={} < kept(1e-2)={}", strict, loose);
    }
}
