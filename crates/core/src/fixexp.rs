//! A 32-bit fixed-point exponential unit — the arithmetic block the PE
//! lanes use for partial-exp generation and the Probability Generator uses
//! for softmax (Table 1: "2 × 32 bit fixed-point EXP unit").
//!
//! The implementation mirrors a standard shift-add hardware scheme:
//!
//! 1. range-reduce `x = n·ln2 + r` with `r ∈ [0, ln2)`,
//! 2. evaluate `e^r` by polynomial in Q2.30 fixed point,
//! 3. apply `2^n` as a barrel shift.
//!
//! The reference pruner uses `f64` math (document §DESIGN.md); this module
//! exists to quantify what the hardware's reduced precision would do to the
//! estimate, and is exercised by the fidelity tests below.

/// Fractional bits of the Q2.30 fixed-point format used internally.
const FRAC_BITS: u32 = 30;
const ONE: i64 = 1 << FRAC_BITS;

/// `ln 2` in Q2.30.
const LN2_Q: i64 = 744_261_117; // round(ln2 * 2^30)

/// A 32-bit fixed-point EXP unit.
///
/// Evaluates `e^x` for `x ≤ ~20` with a relative error of a few parts in
/// 10⁵ — ample for prune decisions, whose margins are orders of magnitude
/// wider.
///
/// # Examples
///
/// ```
/// use topick_core::FixExp;
///
/// let unit = FixExp::new();
/// let y = unit.exp(1.0);
/// assert!((y - std::f64::consts::E).abs() / std::f64::consts::E < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixExp;

impl FixExp {
    /// Creates the unit.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Evaluates `e^x` through the fixed-point pipeline.
    ///
    /// Inputs below the representable range return 0; inputs above ~20
    /// saturate (the hardware clamps — by then the token is certain to be
    /// kept).
    #[must_use]
    pub fn exp(&self, x: f64) -> f64 {
        if x < -20.0 {
            return 0.0;
        }
        let x = x.min(20.0);
        // Range reduction in fixed point: x = n*ln2 + r.
        let x_q = (x * f64::from(1u32 << FRAC_BITS)).round() as i64;
        let n = x_q.div_euclid(LN2_Q);
        let r_q = x_q.rem_euclid(LN2_Q); // in [0, ln2) Q2.30

        // e^r by 5-term Horner polynomial in Q2.30:
        // e^r = 1 + r(1 + r/2(1 + r/3(1 + r/4(1 + r/5)))).
        let mut acc: i64 = ONE + r_q / 5;
        acc = ONE + mul_q(r_q, acc) / 4;
        acc = ONE + mul_q(r_q, acc) / 3;
        acc = ONE + mul_q(r_q, acc) / 2;
        acc = ONE + mul_q(r_q, acc);

        // Apply 2^n as a shift on the way out (f64 carries the exponent so
        // extreme n do not overflow the fixed-point register; hardware does
        // the same with a floating output stage or wider accumulator).
        let mantissa = acc as f64 / f64::from(1u32 << FRAC_BITS);
        mantissa * 2f64.powi(n as i32)
    }

    /// Evaluates `ln(x)` for `x > 0` through the inverse pipeline
    /// (normalize to `[1, 2)`, polynomial for `ln m`, add `n·ln2`). Used by
    /// the DAG to broadcast `ln(denominator)`.
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0`.
    #[must_use]
    pub fn ln(&self, x: f64) -> f64 {
        assert!(x > 0.0, "ln of non-positive value");
        let n = x.log2().floor();
        let m = x / 2f64.powf(n); // [1, 2)
        let m_q = ((m - 1.0) * f64::from(1u32 << FRAC_BITS)).round() as i64; // t = m-1 in Q2.30

        // ln(1+t) ≈ t - t²/2 + t³/3 - t⁴/4 + t⁵/5 - t⁶/6 + t⁷/7 (t < 1).
        let mut acc: i64 = ONE / 7;
        acc = mul_q(m_q, acc) - ONE / 6;
        acc = mul_q(m_q, acc) + ONE / 5;
        acc = mul_q(m_q, acc) - ONE / 4;
        acc = mul_q(m_q, acc) + ONE / 3;
        acc = mul_q(m_q, acc) - ONE / 2;
        acc = mul_q(m_q, acc) + ONE;
        let ln_m = mul_q(m_q, acc) as f64 / f64::from(1u32 << FRAC_BITS);
        ln_m + n * std::f64::consts::LN_2
    }
}

/// Q2.30 multiply with 64-bit intermediate.
fn mul_q(a: i64, b: i64) -> i64 {
    ((i128::from(a) * i128::from(b)) >> FRAC_BITS) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_relative_error_small_over_decision_range() {
        let unit = FixExp::new();
        let mut x = -18.0;
        while x <= 18.0 {
            let got = unit.exp(x);
            let want = x.exp();
            let rel = (got - want).abs() / want;
            assert!(rel < 5e-4, "x={x}: rel error {rel}");
            x += 0.37;
        }
    }

    #[test]
    fn exp_extremes_clamp() {
        let unit = FixExp::new();
        assert_eq!(unit.exp(-100.0), 0.0);
        assert!(unit.exp(100.0).is_finite());
        assert!(unit.exp(100.0) >= unit.exp(19.0));
    }

    #[test]
    fn ln_relative_error_small() {
        let unit = FixExp::new();
        for x in [1e-6, 0.01, 0.5, 1.0, 2.0, 10.0, 1e4, 1e8] {
            let got = unit.ln(x);
            let want = x.ln();
            let err = (got - want).abs();
            // The 7-term alternating series tops out near m=2 (t→1) at a
            // few 1e-4 absolute — far inside the prune-decision margins.
            assert!(err < 5e-4, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn exp_ln_roundtrip() {
        let unit = FixExp::new();
        for x in [0.1, 1.0, 3.5, 12.0] {
            let rt = unit.ln(unit.exp(x));
            assert!((rt - x).abs() < 1e-3, "roundtrip {x} -> {rt}");
        }
    }

    #[test]
    fn prune_decisions_agree_with_f64_math() {
        // The decision s_max - lnD <= ln(thr) computed through the
        // fixed-point unit must agree with f64 math except within a
        // vanishing band around equality.
        let unit = FixExp::new();
        let thr: f64 = 1e-3;
        let scores = [-4.0, -1.0, 0.0, 0.7, 2.2, 5.0];
        let denominator: f64 = scores.iter().map(|s| unit.exp(*s)).sum();
        let ln_d_fix = unit.ln(denominator);
        let ln_d_f64 = scores.iter().map(|s| s.exp()).sum::<f64>().ln();
        assert!((ln_d_fix - ln_d_f64).abs() < 1e-3);
        for s_max in [-10.0, -4.5, -2.0, 0.0, 3.0] {
            let fix_decision = s_max - ln_d_fix <= thr.ln();
            let f64_decision = s_max - ln_d_f64 <= thr.ln();
            // Decisions may only differ within the approximation band.
            if (s_max - ln_d_f64 - thr.ln()).abs() > 1e-3 {
                assert_eq!(fix_decision, f64_decision, "s_max={s_max}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ln of non-positive")]
    fn ln_rejects_non_positive() {
        let _ = FixExp::new().ln(0.0);
    }
}
