//! Conservative score margins from partial bit chunks (paper §3.1, Fig. 4b).
//!
//! With only the top `c` chunks of a key known, each key element `k_j`
//! satisfies `known(k_j) <= k_j <= known(k_j) + u` where
//! `u = 2^unknown_bits - 1` (two's complement: all bits except the sign bit
//! contribute non-negatively, and the sign bit is in the first chunk).
//! For the dot product `s = Σ q_j k_j` this brackets the exact score:
//!
//! ```text
//! ps + M_min <= s <= ps + M_max
//! M_max = u · Σ_{q_j > 0} q_j      (unknown bits set to 1 where they help)
//! M_min = u · Σ_{q_j < 0} q_j      (unknown bits set to 1 where they hurt)
//! ```
//!
//! Crucially the margin pair per chunk index depends *only on the query*, so
//! the hardware's Margin Generator computes all pairs once per generation
//! step before any key arrives.

use crate::config::PrecisionConfig;

/// A `(min, max)` additive margin bracketing the exact integer score around
/// a partial score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MarginPair {
    /// Lower additive margin (`<= 0`).
    pub min: i64,
    /// Upper additive margin (`>= 0`).
    pub max: i64,
}

/// Margin pairs for every chunk depth, derived solely from a query vector.
///
/// Index `c - 1` holds the pair valid when `c` chunks of the key are known;
/// at full depth (`c = num_chunks`) both margins are zero.
///
/// # Examples
///
/// ```
/// use topick_core::{MarginTable, PrecisionConfig, QVector};
///
/// let pc = PrecisionConfig::paper();
/// let q = QVector::from_codes(vec![100, -50, 25], 1.0, pc);
/// let table = MarginTable::from_query(&q);
/// let m1 = table.pair(1);
/// assert!(m1.max > 0 && m1.min < 0);
/// let m3 = table.pair(3);
/// assert_eq!((m3.min, m3.max), (0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarginTable {
    pairs: Vec<MarginPair>,
    precision: PrecisionConfig,
}

impl MarginTable {
    /// Computes the margin table for a query (the hardware Margin Generator).
    #[must_use]
    pub fn from_query(query: &crate::quant::QVector) -> Self {
        Self::from_query_codes(query.codes(), query.precision())
    }

    /// Computes the margin table from raw query codes.
    #[must_use]
    pub fn from_query_codes(codes: &[i16], precision: PrecisionConfig) -> Self {
        let pos_sum: i64 = codes
            .iter()
            .filter(|&&q| q > 0)
            .map(|&q| i64::from(q))
            .sum();
        let neg_sum: i64 = codes
            .iter()
            .filter(|&&q| q < 0)
            .map(|&q| i64::from(q))
            .sum();
        let pairs = (1..=precision.num_chunks())
            .map(|c| {
                let u = (1i64 << precision.unknown_bits_after(c)) - 1;
                MarginPair {
                    min: neg_sum * u,
                    max: pos_sum * u,
                }
            })
            .collect();
        Self { pairs, precision }
    }

    /// The margin pair valid when `chunks_known` chunks of the key are known.
    ///
    /// # Panics
    ///
    /// Panics if `chunks_known` is zero or exceeds the chunk count.
    #[must_use]
    pub fn pair(&self, chunks_known: u32) -> MarginPair {
        assert!(
            chunks_known >= 1 && chunks_known <= self.pairs.len() as u32,
            "chunks_known={chunks_known} out of range 1..={}",
            self.pairs.len()
        );
        self.pairs[(chunks_known - 1) as usize]
    }

    /// All margin pairs, index `c-1` for `c` chunks known.
    #[must_use]
    pub fn pairs(&self) -> &[MarginPair] {
        &self.pairs
    }

    /// The precision configuration the table was built for.
    #[must_use]
    pub fn precision(&self) -> PrecisionConfig {
        self.precision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QVector;

    #[test]
    fn margins_shrink_with_depth_and_vanish_at_full() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![500, -300, 7, -1], 1.0, pc);
        let t = MarginTable::from_query(&q);
        let m1 = t.pair(1);
        let m2 = t.pair(2);
        let m3 = t.pair(3);
        assert!(m1.max > m2.max && m2.max > m3.max);
        assert!(m1.min < m2.min && m2.min < m3.min);
        assert_eq!((m3.min, m3.max), (0, 0));
    }

    #[test]
    fn margins_bracket_exact_score_exhaustive_small() {
        // 4-bit operands with 2-bit chunks: exhaustively verify the bracket
        // for all (q, k) pairs in range.
        let pc = PrecisionConfig::new(4, 2).unwrap();
        for qv in pc.min_value()..=pc.max_value() {
            let q = QVector::from_codes(vec![qv], 1.0, pc);
            let t = MarginTable::from_query(&q);
            for kv in pc.min_value()..=pc.max_value() {
                let exact = q.dot_codes(&[kv]);
                for c in 1..=pc.num_chunks() {
                    let ps = q.dot_known(&[kv], c);
                    let m = t.pair(c);
                    assert!(
                        ps + m.min <= exact && exact <= ps + m.max,
                        "q={qv} k={kv} c={c}: {} <= {exact} <= {}",
                        ps + m.min,
                        ps + m.max
                    );
                }
            }
        }
    }

    #[test]
    fn paper_fig4b_example() {
        // Fig. 4b uses 6-bit operands (bit weights -2^3 .. 2^-2 — the binary
        // point is irrelevant to the integer bracket). With 2 of 6 bits
        // known, the remaining 4 bits contribute [0, 15] per element.
        let pc = PrecisionConfig::new(6, 2).unwrap();
        let q = QVector::from_codes(vec![10, -5], 1.0, pc);
        let t = MarginTable::from_query(&q);
        let m = t.pair(1);
        assert_eq!(m.max, 10 * 15);
        assert_eq!(m.min, -5 * 15);
        let m2 = t.pair(2);
        assert_eq!(m2.max, 10 * 3);
        assert_eq!(m2.min, -5 * 3);
    }

    #[test]
    fn zero_query_has_zero_margins() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![0; 16], 1.0, pc);
        let t = MarginTable::from_query(&q);
        for c in 1..=3 {
            assert_eq!(t.pair(c), MarginPair { min: 0, max: 0 });
        }
    }
}
