//! # topick-core
//!
//! The core algorithm of **Token-Picker** (Park et al., DAC 2024):
//! adaptive attention-token pruning via *conservative probability
//! estimation* over bit-chunked fixed-point key vectors.
//!
//! In autoregressive text generation, attention is memory-bound: every
//! generated token streams the whole KV cache from DRAM. Most tokens end up
//! with near-zero softmax probability, so their value vectors never matter —
//! but you only know that *after* computing all scores. Token-Picker breaks
//! the circularity: it bounds each token's final probability from above
//! using only the most-significant bit chunks of its key, and prunes a token
//! the moment the bound drops below a threshold. The bound is *sound*
//! (a pruned token provably had probability ≤ `thr`), so no fine-tuning is
//! needed.
//!
//! ## Pipeline
//!
//! 1. Quantize Q/K/V to 12-bit fixed point ([`QVector`], [`QMatrix`],
//!    [`PrecisionConfig`]).
//! 2. Derive per-chunk-depth margin pairs from the query alone
//!    ([`MarginTable`]).
//! 3. Probe keys chunk-by-chunk in a locality-aware order ([`ScanOrder`]),
//!    maintaining a running softmax denominator ([`LogDenominator`]) and
//!    pruning with [`should_prune`] ([`ProgressivePruner`]).
//! 4. Softmax over survivors and weighted-sum their values
//!    ([`softmax()`], [`weighted_value_sum`]).
//!
//! ## Example
//!
//! ```
//! use topick_core::{
//!     weighted_value_sum, PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector,
//!     Rows,
//! };
//!
//! let pc = PrecisionConfig::paper();
//! let query = QVector::quantize(&[0.8, -0.4, 0.2, 0.6], pc);
//! let keys = QMatrix::quantize_flat(
//!     &[
//!         0.8, -0.4, 0.2, 0.6, //
//!         -0.8, 0.4, -0.2, -0.6, //
//!         0.7, -0.3, 0.1, 0.5,
//!     ],
//!     4,
//!     pc,
//! )?;
//! let values = [1.0, 0.0, 0.0, 1.0, 0.5, 0.5];
//!
//! let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3)?);
//! let outcome = pruner.run(&query, &keys)?;
//! let output = weighted_value_sum(&outcome.probability_pairs(), Rows::new(&values, 2));
//! assert_eq!(output.len(), 2);
//! println!(
//!     "kept {}/{} tokens; V reduction {:.1}x",
//!     outcome.stats.kept,
//!     outcome.stats.tokens,
//!     outcome.stats.v_reduction()
//! );
//! # Ok::<(), topick_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod estimate;
pub mod fixexp;
pub mod margin;
pub mod order;
pub mod pruner;
pub mod quant;
pub mod rows;
pub mod softmax;
pub mod stats;
pub mod trace;
pub mod vprune;

pub use config::{PrecisionConfig, PrunerConfig};
pub use error::CoreError;
pub use estimate::{estimated_probability, should_prune, LogDenominator};
pub use fixexp::FixExp;
pub use margin::{MarginPair, MarginTable};
pub use order::{ScanIndices, ScanOrder};
pub use pruner::{KeptToken, OraclePruner, ProgressivePruner, PruneOutcome, PrunerScratch};
pub use quant::{QMatrix, QVector, QuantBuffer};
pub use rows::Rows;
pub use softmax::{exact_probabilities, exact_scores, score_scale, softmax, weighted_value_sum};
pub use stats::PruneStats;
pub use trace::{summarize, trace_pruning, Decision, DecisionEvent, TraceSummary};
pub use vprune::{truncated_weighted_sum, ValuePlan};
