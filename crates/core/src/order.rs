//! Token scan orders for the progressive pruner.
//!
//! Token-Picker probes tokens in an order that front-loads the likely
//! dominant ones so the running softmax denominator grows quickly and weak
//! tokens can be pruned after their first bit chunk (§3.1: "recently
//! generated tokens and the first token often carry more weights than
//! others. Therefore, beginning the score calculation with these tokens and
//! progressing in reverse chronological order effectively enhances the
//! pruning ratio").

/// The order in which key vectors are probed during step 0.
///
/// # Examples
///
/// ```
/// use topick_core::ScanOrder;
///
/// // Newest token first, then the first token, then backwards from t-1.
/// assert_eq!(ScanOrder::FirstAndReverse.sequence(5), vec![4, 0, 3, 2, 1]);
/// assert_eq!(ScanOrder::ReverseChronological.sequence(4), vec![3, 2, 1, 0]);
/// assert_eq!(ScanOrder::Sequential.sequence(3), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanOrder {
    /// The paper's order: the most recent token, then the first token
    /// (attention-sink), then the remaining tokens in reverse chronological
    /// order. Exploits the locality visible in Fig. 4(a).
    #[default]
    FirstAndReverse,
    /// Most recent token first, strictly backwards.
    ReverseChronological,
    /// Oldest token first (ablation; ignores locality).
    Sequential,
}

impl ScanOrder {
    /// Produces the probe sequence for a context of `n` tokens
    /// (indices `0..n`, where `n-1` is the most recent token).
    #[must_use]
    pub fn sequence(&self, n: usize) -> Vec<usize> {
        self.indices(n).collect()
    }

    /// Lazily yields the probe sequence — the allocation-free variant the
    /// pruning hot path consumes.
    #[must_use]
    pub fn indices(&self, n: usize) -> ScanIndices {
        ScanIndices {
            order: *self,
            n,
            pos: 0,
        }
    }
}

/// Iterator over a [`ScanOrder`]'s probe sequence (see
/// [`ScanOrder::indices`]).
#[derive(Debug, Clone)]
pub struct ScanIndices {
    order: ScanOrder,
    n: usize,
    pos: usize,
}

impl Iterator for ScanIndices {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.pos >= self.n {
            return None;
        }
        let pos = self.pos;
        self.pos += 1;
        Some(match self.order {
            ScanOrder::Sequential => pos,
            ScanOrder::ReverseChronological => self.n - 1 - pos,
            // n-1, then 0, then n-2, n-3, ..., 1.
            ScanOrder::FirstAndReverse => match pos {
                0 => self.n - 1,
                1 => 0,
                _ => self.n - pos,
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ScanIndices {}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(seq: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in seq {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        seq.len() == n
    }

    #[test]
    fn all_orders_are_permutations() {
        for n in 0..20 {
            for order in [
                ScanOrder::FirstAndReverse,
                ScanOrder::ReverseChronological,
                ScanOrder::Sequential,
            ] {
                assert!(is_permutation(&order.sequence(n), n), "{order:?} n={n}");
            }
        }
    }

    #[test]
    fn first_and_reverse_edge_cases() {
        assert_eq!(ScanOrder::FirstAndReverse.sequence(0), Vec::<usize>::new());
        assert_eq!(ScanOrder::FirstAndReverse.sequence(1), vec![0]);
        assert_eq!(ScanOrder::FirstAndReverse.sequence(2), vec![1, 0]);
        assert_eq!(ScanOrder::FirstAndReverse.sequence(3), vec![2, 0, 1]);
        assert_eq!(
            ScanOrder::FirstAndReverse.sequence(6),
            vec![5, 0, 4, 3, 2, 1]
        );
    }

    #[test]
    fn default_is_paper_order() {
        assert_eq!(ScanOrder::default(), ScanOrder::FirstAndReverse);
    }
}
