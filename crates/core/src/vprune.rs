//! Progressive *value* fetching — the natural extension of Token-Picker's
//! bit-chunk idea to the V side (an extension beyond the paper, flagged in
//! DESIGN.md's ablation/extension list).
//!
//! After step 0, every surviving token has an exact probability `p_i`. The
//! attention output is `o = Σ p_i v_i`, so a token with small (but
//! above-threshold) probability contributes little: the error of truncating
//! `v_i` to its top `c` chunks is bounded by `p_i · u_c · scale` per
//! element, where `u_c = 2^unknown_bits − 1`. Given an element-wise output
//! error budget `ε`, each token therefore needs only
//! `min { c : p_i · u_c · scale ≤ ε_i }` chunks, with the per-token budgets
//! `ε_i` chosen so they sum to `ε`.
//!
//! This trades a guaranteed output-error bound for further V traffic
//! reduction, without revisiting the softmax.

use crate::config::PrecisionConfig;
use crate::error::CoreError;

/// How many V chunks each surviving token must fetch to keep the
/// element-wise attention-output error within a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuePlan {
    /// `(token index, chunks to fetch)`, aligned with the input pairs.
    pub chunks_per_token: Vec<(usize, u32)>,
    precision: PrecisionConfig,
}

impl ValuePlan {
    /// Plans per-token V chunk counts for the given `(token, probability)`
    /// pairs.
    ///
    /// `value_scale` is the V quantization scale (`real ≈ code · scale`);
    /// `error_budget` is the maximum allowed element-wise output error
    /// (absolute, in real units), split equally across tokens.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidThreshold`] if `error_budget` is not
    /// positive and finite.
    pub fn compute(
        pairs: &[(usize, f64)],
        precision: PrecisionConfig,
        value_scale: f64,
        error_budget: f64,
    ) -> Result<Self, CoreError> {
        if !(error_budget > 0.0 && error_budget.is_finite()) {
            return Err(CoreError::InvalidThreshold(error_budget));
        }
        let n = pairs.len().max(1);
        let per_token = error_budget / n as f64;
        let num_chunks = precision.num_chunks();
        let chunks_per_token = pairs
            .iter()
            .map(|&(token, p)| {
                let mut need = num_chunks;
                for c in 1..=num_chunks {
                    let u = ((1i64 << precision.unknown_bits_after(c)) - 1) as f64;
                    if p * u * value_scale <= per_token {
                        need = c;
                        break;
                    }
                }
                (token, need)
            })
            .collect();
        Ok(Self {
            chunks_per_token,
            precision,
        })
    }

    /// Total V chunks fetched under this plan.
    #[must_use]
    pub fn total_chunks(&self) -> u64 {
        self.chunks_per_token
            .iter()
            .map(|&(_, c)| u64::from(c))
            .sum()
    }

    /// V bits fetched under this plan for head dimension `dim`.
    #[must_use]
    pub fn v_bits_fetched(&self, dim: usize) -> u64 {
        self.total_chunks() * dim as u64 * u64::from(self.precision.chunk_bits())
    }

    /// V bits a full-precision fetch of the same tokens would need.
    #[must_use]
    pub fn full_v_bits(&self, dim: usize) -> u64 {
        self.chunks_per_token.len() as u64 * dim as u64 * u64::from(self.precision.total_bits())
    }

    /// Additional V reduction over fetching survivors at full precision.
    #[must_use]
    pub fn extra_reduction(&self, dim: usize) -> f64 {
        let fetched = self.v_bits_fetched(dim);
        if fetched == 0 {
            return f64::INFINITY;
        }
        self.full_v_bits(dim) as f64 / fetched as f64
    }
}

/// Computes the attention output using only the planned V chunks, plus the
/// worst-case element-wise error bound of the plan.
///
/// `values` are quantized V codes (one row per *context* token, indexed by
/// the plan's token ids); returns `(output, error_bound)` in real units.
///
/// # Panics
///
/// Panics if a planned token index is out of range.
#[must_use]
pub fn truncated_weighted_sum(
    plan: &ValuePlan,
    pairs: &[(usize, f64)],
    values: &crate::quant::QMatrix,
) -> (Vec<f32>, f64) {
    let dim = values.dim();
    let pc = plan.precision;
    let scale = values.scale();
    let mut out = vec![0f64; dim];
    let mut bound = 0f64;
    for (&(token, chunks), &(token2, p)) in plan.chunks_per_token.iter().zip(pairs) {
        assert_eq!(token, token2, "plan/pairs misaligned");
        let row = values.row(token);
        for (o, &v) in out.iter_mut().zip(row) {
            let known = pc.known_value(v, chunks);
            *o += p * f64::from(known) * scale;
        }
        let u = ((1i64 << pc.unknown_bits_after(chunks)) - 1) as f64;
        bound += p * u * scale;
    }
    (out.into_iter().map(|v| v as f32).collect(), bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QMatrix;
    use crate::softmax::weighted_value_sum;

    fn setup(n: usize, dim: usize) -> (Vec<(usize, f64)>, QMatrix, Vec<f32>) {
        let pc = PrecisionConfig::paper();
        let rows: Vec<f32> = (0..n * dim)
            .map(|i| ((i / dim * 13 + i % dim * 7) % 19) as f32 / 9.5 - 1.0)
            .collect();
        let values = QMatrix::quantize_flat(&rows, dim, pc).unwrap();
        // Geometric-ish probability profile summing to 1.
        let mut probs: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32 + 1)).collect();
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
        (pairs, values, rows)
    }

    #[test]
    fn low_probability_tokens_need_fewer_chunks() {
        let (pairs, values, _) = setup(12, 8);
        let plan =
            ValuePlan::compute(&pairs, PrecisionConfig::paper(), values.scale(), 1e-2).unwrap();
        let first = plan.chunks_per_token[0].1;
        let last = plan.chunks_per_token.last().unwrap().1;
        assert!(first >= last, "dominant token {first} chunks < tail {last}");
        assert!(plan.extra_reduction(8) >= 1.0);
    }

    #[test]
    fn error_bound_is_respected() {
        let (pairs, values, rows) = setup(10, 8);
        let budget = 5e-2;
        let plan =
            ValuePlan::compute(&pairs, PrecisionConfig::paper(), values.scale(), budget).unwrap();
        let (approx, bound) = truncated_weighted_sum(&plan, &pairs, &values);
        assert!(
            bound <= budget + 1e-12,
            "bound {bound} exceeds budget {budget}"
        );
        let exact = weighted_value_sum(&pairs, crate::rows::Rows::new(&rows, 8));
        for (a, b) in approx.iter().zip(&exact) {
            // Quantization itself adds up to half an LSB per token; allow it.
            let slack = budget + values.scale();
            assert!(
                (f64::from(*a) - f64::from(*b)).abs() <= slack,
                "{a} vs {b} (bound {bound})"
            );
        }
    }

    #[test]
    fn tight_budget_fetches_everything() {
        let (pairs, values, _) = setup(6, 4);
        let plan =
            ValuePlan::compute(&pairs, PrecisionConfig::paper(), values.scale(), 1e-12).unwrap();
        let num_chunks = PrecisionConfig::paper().num_chunks();
        assert!(plan.chunks_per_token.iter().all(|&(_, c)| c == num_chunks));
        assert!((plan.extra_reduction(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loose_budget_fetches_one_chunk_each() {
        let (pairs, values, _) = setup(6, 4);
        let plan =
            ValuePlan::compute(&pairs, PrecisionConfig::paper(), values.scale(), 1e6).unwrap();
        assert!(plan.chunks_per_token.iter().all(|&(_, c)| c == 1));
        assert!(plan.extra_reduction(4) > 2.9);
    }

    #[test]
    fn invalid_budget_rejected() {
        let (pairs, values, _) = setup(4, 4);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                ValuePlan::compute(&pairs, PrecisionConfig::paper(), values.scale(), bad).is_err()
            );
        }
    }
}
