//! Exact softmax / attention references used to validate the pruner.

use crate::quant::{QMatrix, QVector};
use crate::rows::Rows;

/// Numerically stable softmax over arbitrary real scores.
///
/// Returns an empty vector for empty input.
///
/// # Examples
///
/// ```
/// use topick_core::softmax;
///
/// let p = softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn softmax(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// The real-valued scale factor applied to integer scores:
/// `score_real = score_int · q_scale · k_scale / sqrt(d_h)`.
#[must_use]
pub fn score_scale(query: &QVector, keys: &QMatrix) -> f64 {
    query.scale() * keys.scale() / (keys.dim() as f64).sqrt()
}

/// Exact (unpruned) attention probabilities of a quantized query over a
/// quantized key set — the ground truth the estimator must never contradict.
///
/// # Panics
///
/// Panics if the query length differs from the key dimension.
#[must_use]
pub fn exact_probabilities(query: &QVector, keys: &QMatrix) -> Vec<f64> {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    let scale = score_scale(query, keys);
    let scores: Vec<f64> = (0..keys.num_tokens())
        .map(|t| query.dot_codes(keys.row(t)) as f64 * scale)
        .collect();
    softmax(&scores)
}

/// Exact real-valued scores (after 1/sqrt(d) scaling) of a quantized query
/// over a quantized key set.
///
/// # Panics
///
/// Panics if the query length differs from the key dimension.
#[must_use]
pub fn exact_scores(query: &QVector, keys: &QMatrix) -> Vec<f64> {
    assert_eq!(query.len(), keys.dim(), "query/key dimension mismatch");
    let scale = score_scale(query, keys);
    (0..keys.num_tokens())
        .map(|t| query.dot_codes(keys.row(t)) as f64 * scale)
        .collect()
}

/// Weighted sum of value rows: `o = Σ p_i · v_i` over the provided
/// `(token, probability)` pairs, reading the rows zero-copy through a
/// [`Rows`] view.
///
/// # Panics
///
/// Panics if a token index is out of range.
#[must_use]
pub fn weighted_value_sum(pairs: &[(usize, f64)], values: Rows<'_>) -> Vec<f32> {
    let mut out = vec![0f32; values.dim()];
    for &(token, p) in pairs {
        let row = values.row(token);
        for (o, &v) in out.iter_mut().zip(row) {
            *o += (p as f32) * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecisionConfig;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.3, -2.0, 5.5, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_extreme_scores() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1] < 1e-300);
    }

    #[test]
    fn exact_probabilities_uniform_for_equal_keys() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![100, 50], 1.0, pc);
        let keys = QMatrix::from_codes(vec![10, 10, 10, 10], 2, 1.0, pc).unwrap();
        let p = exact_probabilities(&q, &keys);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_basic() {
        let values = [1.0f32, 0.0, 0.0, 2.0];
        let out = weighted_value_sum(&[(0, 0.25), (1, 0.75)], Rows::new(&values, 2));
        assert!((out[0] - 0.25).abs() < 1e-6);
        assert!((out[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_empty_pairs_is_zero() {
        let values = [1.0f32, 1.0];
        let out = weighted_value_sum(&[], Rows::new(&values, 2));
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
