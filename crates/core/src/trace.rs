//! Decision tracing: an observable variant of the progressive pruner that
//! records *why* each token was kept or pruned, and at what chunk depth.
//!
//! Useful for debugging estimator behaviour, regenerating Fig. 4-style
//! analyses, and validating the hardware simulator against the reference.

use std::collections::VecDeque;

use crate::config::PrunerConfig;
use crate::error::CoreError;
use crate::estimate::{estimated_probability, should_prune, LogDenominator};
use crate::margin::MarginTable;
use crate::quant::{QMatrix, QVector};
use crate::softmax::score_scale;

/// One evaluation event in a pruning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEvent {
    /// Evaluation sequence number (0-based).
    pub step: usize,
    /// Token index evaluated.
    pub token: usize,
    /// Chunks of the key known at this evaluation.
    pub chunks_known: u32,
    /// Estimated probability upper bound `p''` at decision time.
    pub estimate: f64,
    /// `ln` of the running denominator at decision time.
    pub ln_denominator: f64,
    /// The decision taken.
    pub decision: Decision,
}

/// Outcome of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Token pruned (probability bound below the threshold).
    Pruned,
    /// Token survived this chunk; the next chunk will be requested.
    RequestNextChunk,
    /// Token survived the final chunk and is kept.
    Kept,
}

/// Runs the progressive pruner while recording every decision.
///
/// Functionally identical to
/// [`ProgressivePruner::run`](crate::ProgressivePruner::run) (same queue
/// discipline, same decisions); returns the event log.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] or [`CoreError::EmptyKeySet`]
/// on malformed input.
///
/// # Examples
///
/// ```
/// use topick_core::{trace_pruning, Decision, PrecisionConfig, PrunerConfig, QMatrix, QVector};
///
/// let pc = PrecisionConfig::paper();
/// let q = QVector::quantize(&[0.9, -0.2], pc);
/// let keys = QMatrix::quantize_rows(&[vec![0.9, -0.2], vec![-0.9, 0.2]], pc)?;
/// let events = trace_pruning(&PrunerConfig::new(1e-2)?, &q, &keys)?;
/// assert!(events.iter().any(|e| e.decision == Decision::Kept));
/// # Ok::<(), topick_core::CoreError>(())
/// ```
pub fn trace_pruning(
    cfg: &PrunerConfig,
    query: &QVector,
    keys: &QMatrix,
) -> Result<Vec<DecisionEvent>, CoreError> {
    if query.len() != keys.dim() {
        return Err(CoreError::DimensionMismatch {
            expected: keys.dim(),
            actual: query.len(),
        });
    }
    let n = keys.num_tokens();
    if n == 0 {
        return Err(CoreError::EmptyKeySet);
    }
    let pc = cfg.precision();
    let num_chunks = pc.num_chunks();
    let margins = MarginTable::from_query_codes(query.codes(), pc);
    let scale = score_scale(query, keys);
    let ln_thr = cfg.threshold().ln();

    let mut denom = LogDenominator::new();
    let mut prev_smin = vec![f64::NAN; n];
    let mut queue: VecDeque<(usize, u32)> = cfg.order().indices(n).map(|t| (t, 1u32)).collect();

    let mut events = Vec::new();
    let mut step = 0usize;
    while let Some((token, chunks_known)) = queue.pop_front() {
        let ps = query.dot_known(keys.row(token), chunks_known);
        let pair = margins.pair(chunks_known);
        let smin = (ps + pair.min) as f64 * scale;
        let smax = (ps + pair.max) as f64 * scale;
        if chunks_known == 1 {
            denom.add(smin);
        } else {
            denom.replace(prev_smin[token], smin);
        }
        prev_smin[token] = smin;

        let decision = if should_prune(smax, denom.ln(), ln_thr) {
            Decision::Pruned
        } else if chunks_known == num_chunks {
            Decision::Kept
        } else {
            queue.push_back((token, chunks_known + 1));
            Decision::RequestNextChunk
        };
        events.push(DecisionEvent {
            step,
            token,
            chunks_known,
            estimate: estimated_probability(smax, denom.ln()),
            ln_denominator: denom.ln(),
            decision,
        });
        step += 1;
    }
    Ok(events)
}

/// Summary statistics over a decision trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total evaluations.
    pub evaluations: usize,
    /// Tokens pruned.
    pub pruned: usize,
    /// Tokens kept.
    pub kept: usize,
}

/// Summarizes a trace.
#[must_use]
pub fn summarize(events: &[DecisionEvent]) -> TraceSummary {
    let mut s = TraceSummary {
        evaluations: events.len(),
        ..Default::default()
    };
    for e in events {
        match e.decision {
            Decision::Pruned => s.pruned += 1,
            Decision::Kept => s.kept += 1,
            Decision::RequestNextChunk => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecisionConfig;
    use crate::pruner::ProgressivePruner;

    fn workload(n: usize) -> (QVector, QMatrix) {
        let pc = PrecisionConfig::paper();
        let dim = 16;
        let mut s = 0xFEEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 33) as i32 % 1500) as i16
        };
        let q = QVector::from_codes((0..dim).map(|_| next()).collect(), 0.01, pc);
        let keys =
            QMatrix::from_codes((0..n * dim).map(|_| next()).collect(), dim, 0.01, pc).unwrap();
        (q, keys)
    }

    #[test]
    fn trace_matches_pruner_outcome() {
        let (q, keys) = workload(48);
        let cfg = PrunerConfig::new(1e-3).unwrap();
        let events = trace_pruning(&cfg, &q, &keys).unwrap();
        let summary = summarize(&events);
        let outcome = ProgressivePruner::new(cfg).run(&q, &keys).unwrap();
        assert_eq!(summary.kept, outcome.stats.kept);
        assert_eq!(summary.pruned, outcome.stats.pruned());
        assert_eq!(
            summary.evaluations as u64,
            outcome.stats.chunk_fetches.iter().sum::<u64>()
        );
        // The kept tokens themselves must agree.
        let traced_kept: Vec<usize> = {
            let mut v: Vec<usize> = events
                .iter()
                .filter(|e| e.decision == Decision::Kept)
                .map(|e| e.token)
                .collect();
            v.sort_unstable();
            v
        };
        let pruner_kept: Vec<usize> = outcome.kept.iter().map(|k| k.index).collect();
        assert_eq!(traced_kept, pruner_kept);
    }

    #[test]
    fn every_token_resolves_exactly_once() {
        let (q, keys) = workload(32);
        let cfg = PrunerConfig::new(1e-2).unwrap();
        let events = trace_pruning(&cfg, &q, &keys).unwrap();
        let mut resolved = vec![0usize; 32];
        for e in &events {
            if e.decision != Decision::RequestNextChunk {
                resolved[e.token] += 1;
            }
        }
        assert!(resolved.iter().all(|&r| r == 1), "{resolved:?}");
    }

    #[test]
    fn estimates_decrease_with_depth_for_a_token() {
        // For any given token, the probability upper bound can only tighten
        // as more chunks arrive (margins shrink, denominator grows).
        let (q, keys) = workload(40);
        let cfg = PrunerConfig::new(1e-4).unwrap();
        let events = trace_pruning(&cfg, &q, &keys).unwrap();
        let mut last: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for e in &events {
            if let Some(&prev) = last.get(&e.token) {
                assert!(
                    e.estimate <= prev * (1.0 + 1e-9),
                    "token {} estimate rose {prev} -> {}",
                    e.token,
                    e.estimate
                );
            }
            last.insert(e.token, e.estimate);
        }
    }

    #[test]
    fn step_numbers_are_sequential() {
        let (q, keys) = workload(16);
        let events = trace_pruning(&PrunerConfig::new(1e-3).unwrap(), &q, &keys).unwrap();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.step, i);
        }
    }
}
