//! Error types for the Token-Picker core crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the core Token-Picker algorithm.
///
/// Every fallible public function in this crate returns
/// [`Result<T, CoreError>`](CoreError).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A precision configuration was rejected.
    ///
    /// Produced by [`PrecisionConfig::new`](crate::PrecisionConfig::new) when
    /// `total_bits` is not a positive multiple of `chunk_bits`, or exceeds the
    /// 15-bit storage limit of the `i16` backing type.
    InvalidPrecision {
        /// Total operand width in bits.
        total_bits: u32,
        /// Bit-chunk width in bits.
        chunk_bits: u32,
    },
    /// A pruning threshold outside `(0, 1)` was supplied.
    InvalidThreshold(f64),
    /// Vector/matrix dimensions do not agree.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An empty key set was supplied where at least one token is required.
    EmptyKeySet,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidPrecision {
                total_bits,
                chunk_bits,
            } => write!(
                f,
                "invalid precision: total_bits={total_bits} must be a positive multiple of \
                 chunk_bits={chunk_bits} and at most 15"
            ),
            CoreError::InvalidThreshold(thr) => {
                write!(
                    f,
                    "pruning threshold {thr} is not in the open interval (0, 1)"
                )
            }
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::EmptyKeySet => write!(f, "key set contains no tokens"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CoreError::InvalidPrecision {
                total_bits: 13,
                chunk_bits: 4,
            },
            CoreError::InvalidThreshold(1.5),
            CoreError::DimensionMismatch {
                expected: 64,
                actual: 32,
            },
            CoreError::EmptyKeySet,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
