//! Memory-access accounting for pruning runs.
//!
//! All figures in the paper's evaluation are driven by how many key bit
//! chunks and value vectors actually cross the DRAM boundary. [`PruneStats`]
//! counts them and derives the normalized-access metrics of Figs. 8 and 9.

use crate::config::PrecisionConfig;

/// Access and decision statistics of a single pruning run (one query over
/// one key set).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Total number of tokens in the context.
    pub tokens: usize,
    /// Number of tokens that survived pruning (their V rows are fetched).
    pub kept: usize,
    /// `chunk_fetches[c]` = how many tokens had chunk index `c` fetched.
    pub chunk_fetches: Vec<u64>,
    /// `pruned_at[c]` = how many tokens were pruned right after evaluating
    /// chunk index `c` (i.e. with `c + 1` chunks known).
    pub pruned_at: Vec<u64>,
}

impl PruneStats {
    /// Creates zeroed statistics for a context of `tokens` tokens under the
    /// given chunk count.
    #[must_use]
    pub fn new(tokens: usize, num_chunks: u32) -> Self {
        Self {
            tokens,
            kept: 0,
            chunk_fetches: vec![0; num_chunks as usize],
            pruned_at: vec![0; num_chunks as usize],
        }
    }

    /// Number of pruned tokens.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.tokens - self.kept
    }

    /// Bits of key data fetched from DRAM (`Σ_c fetches[c] · d_h · chunk_bits`).
    #[must_use]
    pub fn k_bits_fetched(&self, dim: usize, pc: &PrecisionConfig) -> u64 {
        let per_chunk = dim as u64 * u64::from(pc.chunk_bits());
        self.chunk_fetches.iter().sum::<u64>() * per_chunk
    }

    /// Bits of value data fetched from DRAM (only kept tokens).
    #[must_use]
    pub fn v_bits_fetched(&self, dim: usize, pc: &PrecisionConfig) -> u64 {
        self.kept as u64 * dim as u64 * u64::from(pc.total_bits())
    }

    /// Bits a no-pruning baseline fetches for keys (all chunks of all tokens).
    #[must_use]
    pub fn baseline_k_bits(&self, dim: usize, pc: &PrecisionConfig) -> u64 {
        self.tokens as u64 * dim as u64 * u64::from(pc.total_bits())
    }

    /// Bits a no-pruning baseline fetches for values (all tokens).
    #[must_use]
    pub fn baseline_v_bits(&self, dim: usize, pc: &PrecisionConfig) -> u64 {
        self.tokens as u64 * dim as u64 * u64::from(pc.total_bits())
    }

    /// K-access reduction factor vs. the baseline (paper §5.2.1: 1.45×).
    #[must_use]
    pub fn k_reduction(&self, dim: usize, pc: &PrecisionConfig) -> f64 {
        let fetched = self.k_bits_fetched(dim, pc);
        if fetched == 0 {
            return f64::INFINITY;
        }
        self.baseline_k_bits(dim, pc) as f64 / fetched as f64
    }

    /// V-access reduction factor vs. the baseline (paper §5.2.1: 12.1×),
    /// identical to the pruning ratio `tokens / kept`.
    #[must_use]
    pub fn v_reduction(&self) -> f64 {
        if self.kept == 0 {
            return f64::INFINITY;
        }
        self.tokens as f64 / self.kept as f64
    }

    /// Total (K+V) access reduction factor vs. the baseline (paper: 2.57×).
    #[must_use]
    pub fn total_reduction(&self, dim: usize, pc: &PrecisionConfig) -> f64 {
        let fetched = self.k_bits_fetched(dim, pc) + self.v_bits_fetched(dim, pc);
        if fetched == 0 {
            return f64::INFINITY;
        }
        (self.baseline_k_bits(dim, pc) + self.baseline_v_bits(dim, pc)) as f64 / fetched as f64
    }

    /// Accumulates another run's statistics into this one (for averaging
    /// over queries, heads, and layers).
    ///
    /// # Panics
    ///
    /// Panics if chunk counts differ.
    pub fn merge(&mut self, other: &PruneStats) {
        assert_eq!(
            self.chunk_fetches.len(),
            other.chunk_fetches.len(),
            "chunk count mismatch in merge"
        );
        self.tokens += other.tokens;
        self.kept += other.kept;
        for (a, b) in self.chunk_fetches.iter_mut().zip(&other.chunk_fetches) {
            *a += b;
        }
        for (a, b) in self.pruned_at.iter_mut().zip(&other.pruned_at) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PruneStats {
        PruneStats {
            tokens: 100,
            kept: 10,
            chunk_fetches: vec![100, 40, 15],
            pruned_at: vec![60, 25, 5],
        }
    }

    #[test]
    fn bit_accounting() {
        let pc = PrecisionConfig::paper();
        let s = sample();
        let dim = 64;
        assert_eq!(s.k_bits_fetched(dim, &pc), 155 * 64 * 4);
        assert_eq!(s.baseline_k_bits(dim, &pc), 100 * 64 * 12);
        assert_eq!(s.v_bits_fetched(dim, &pc), 10 * 64 * 12);
        assert_eq!(s.baseline_v_bits(dim, &pc), 100 * 64 * 12);
    }

    #[test]
    fn reductions() {
        let pc = PrecisionConfig::paper();
        let s = sample();
        assert!((s.v_reduction() - 10.0).abs() < 1e-12);
        // K: 100*12 bits baseline vs 155*4 fetched per element.
        let expect = (100.0 * 12.0) / (155.0 * 4.0);
        assert!((s.k_reduction(64, &pc) - expect).abs() < 1e-12);
        assert!(s.total_reduction(64, &pc) > 1.0);
    }

    #[test]
    fn zero_kept_gives_infinite_v_reduction() {
        let mut s = sample();
        s.kept = 0;
        assert!(s.v_reduction().is_infinite());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.tokens, 200);
        assert_eq!(a.kept, 20);
        assert_eq!(a.chunk_fetches, vec![200, 80, 30]);
        assert_eq!(a.pruned_at, vec![120, 50, 10]);
    }
}
