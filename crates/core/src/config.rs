//! Precision and pruner configuration types.

use crate::error::CoreError;
use crate::order::ScanOrder;

/// Fixed-point operand precision and its bit-chunk segmentation.
///
/// The paper stores attention operands as signed 12-bit integers and streams
/// key vectors from DRAM in three 4-bit chunks, most significant bits first
/// (§4: "The operand precision for self-attention is set to 12 bits,
/// segmented into three 4-bit chunks"). Both widths are configurable here so
/// the chunk-width ablation benches can sweep them.
///
/// # Examples
///
/// ```
/// use topick_core::PrecisionConfig;
///
/// let pc = PrecisionConfig::paper(); // 12-bit operands, 4-bit chunks
/// assert_eq!(pc.num_chunks(), 3);
/// assert_eq!(pc.unknown_bits_after(1), 8);
/// assert_eq!(pc.unknown_bits_after(3), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionConfig {
    total_bits: u32,
    chunk_bits: u32,
}

impl PrecisionConfig {
    /// Creates a precision configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPrecision`] unless `total_bits` is a
    /// positive multiple of `chunk_bits` and `total_bits <= 15` (values are
    /// stored in `i16`, keeping one bit of headroom for intermediate sums).
    pub fn new(total_bits: u32, chunk_bits: u32) -> Result<Self, CoreError> {
        let invalid = total_bits == 0
            || chunk_bits == 0
            || total_bits > 15
            || !total_bits.is_multiple_of(chunk_bits);
        if invalid {
            return Err(CoreError::InvalidPrecision {
                total_bits,
                chunk_bits,
            });
        }
        Ok(Self {
            total_bits,
            chunk_bits,
        })
    }

    /// The paper's configuration: 12-bit operands in three 4-bit chunks.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            total_bits: 12,
            chunk_bits: 4,
        }
    }

    /// Total operand width in bits (including the sign bit).
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Width of one bit chunk.
    #[must_use]
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Number of chunks a full operand is split into.
    #[must_use]
    pub fn num_chunks(&self) -> u32 {
        self.total_bits / self.chunk_bits
    }

    /// Number of still-unknown low bits once `chunks_known` chunks have been
    /// received (chunks arrive MSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `chunks_known` exceeds [`num_chunks`](Self::num_chunks).
    #[must_use]
    pub fn unknown_bits_after(&self, chunks_known: u32) -> u32 {
        assert!(
            chunks_known <= self.num_chunks(),
            "chunks_known={chunks_known} exceeds num_chunks={}",
            self.num_chunks()
        );
        self.total_bits - chunks_known * self.chunk_bits
    }

    /// Largest representable value, `2^(total_bits-1) - 1`.
    #[must_use]
    pub fn max_value(&self) -> i16 {
        ((1i32 << (self.total_bits - 1)) - 1) as i16
    }

    /// Smallest representable value, `-2^(total_bits-1)`.
    #[must_use]
    pub fn min_value(&self) -> i16 {
        (-(1i32 << (self.total_bits - 1))) as i16
    }

    /// The value contributed by `chunks_known` most-significant chunks of a
    /// two's-complement operand `v`, i.e. `v` with all unknown low bits
    /// cleared. The exact value then satisfies
    /// `known <= v <= known + 2^unknown_bits - 1` (Fig. 4b of the paper).
    #[must_use]
    pub fn known_value(&self, v: i16, chunks_known: u32) -> i32 {
        let sh = self.unknown_bits_after(chunks_known);
        ((i32::from(v)) >> sh) << sh
    }
}

impl Default for PrecisionConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full configuration of the progressive pruner.
///
/// # Examples
///
/// ```
/// use topick_core::{PrunerConfig, ScanOrder};
///
/// let cfg = PrunerConfig::new(1e-3)?
///     .with_order(ScanOrder::FirstAndReverse);
/// assert_eq!(cfg.threshold(), 1e-3);
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunerConfig {
    precision: PrecisionConfig,
    threshold: f64,
    order: ScanOrder,
}

impl PrunerConfig {
    /// Creates a pruner configuration with the paper's precision and the
    /// given probability threshold `thr`.
    ///
    /// Tokens whose conservatively estimated probability upper bound falls
    /// below `thr` are pruned.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidThreshold`] if `thr` is not in `(0, 1)`.
    pub fn new(threshold: f64) -> Result<Self, CoreError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        Ok(Self {
            precision: PrecisionConfig::paper(),
            threshold,
            order: ScanOrder::FirstAndReverse,
        })
    }

    /// Replaces the precision configuration.
    #[must_use]
    pub fn with_precision(mut self, precision: PrecisionConfig) -> Self {
        self.precision = precision;
        self
    }

    /// Replaces the scan order.
    #[must_use]
    pub fn with_order(mut self, order: ScanOrder) -> Self {
        self.order = order;
        self
    }

    /// The pruning threshold `thr`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The fixed-point precision configuration.
    #[must_use]
    pub fn precision(&self) -> PrecisionConfig {
        self.precision
    }

    /// The scan order used for probing tokens.
    #[must_use]
    pub fn order(&self) -> ScanOrder {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_12_4() {
        let pc = PrecisionConfig::paper();
        assert_eq!(pc.total_bits(), 12);
        assert_eq!(pc.chunk_bits(), 4);
        assert_eq!(pc.num_chunks(), 3);
        assert_eq!(pc.max_value(), 2047);
        assert_eq!(pc.min_value(), -2048);
    }

    #[test]
    fn rejects_non_multiple_widths() {
        assert!(PrecisionConfig::new(13, 4).is_err());
        assert!(PrecisionConfig::new(12, 0).is_err());
        assert!(PrecisionConfig::new(0, 4).is_err());
        assert!(PrecisionConfig::new(16, 4).is_err());
        assert!(PrecisionConfig::new(12, 4).is_ok());
        assert!(PrecisionConfig::new(12, 12).is_ok());
        assert!(PrecisionConfig::new(8, 2).is_ok());
    }

    #[test]
    fn known_value_clears_low_bits() {
        let pc = PrecisionConfig::paper();
        // 0b0111_1111_1111 = 2047; first chunk only keeps the top 4 bits.
        assert_eq!(pc.known_value(2047, 1), 0b0111_0000_0000);
        assert_eq!(pc.known_value(2047, 2), 0b0111_1111_0000);
        assert_eq!(pc.known_value(2047, 3), 2047);
        // Negative values round toward -inf (arithmetic shift), so the
        // unknown-bit contribution is always non-negative.
        assert_eq!(pc.known_value(-1, 1), -256);
        assert_eq!(pc.known_value(-1, 3), -1);
        assert_eq!(pc.known_value(-2048, 1), -2048);
    }

    #[test]
    fn known_value_brackets_exact() {
        let pc = PrecisionConfig::paper();
        for v in [-2048i16, -2047, -1024, -1, 0, 1, 7, 255, 1024, 2047] {
            for c in 1..=3 {
                let known = pc.known_value(v, c);
                let u = (1i32 << pc.unknown_bits_after(c)) - 1;
                assert!(known <= i32::from(v), "v={v} c={c}");
                assert!(i32::from(v) <= known + u, "v={v} c={c}");
            }
        }
    }

    #[test]
    fn threshold_validation() {
        assert!(PrunerConfig::new(0.0).is_err());
        assert!(PrunerConfig::new(1.0).is_err());
        assert!(PrunerConfig::new(-0.5).is_err());
        assert!(PrunerConfig::new(f64::NAN).is_err());
        assert!(PrunerConfig::new(1e-3).is_ok());
    }
}
