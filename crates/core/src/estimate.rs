//! Conservative probability estimation (paper §3.1, Eq. 5).
//!
//! The estimator maintains a running denominator
//! `D = Σ_{j ∈ subset} exp(ŝ_min,j)` over every token evaluated so far,
//! where `ŝ_min,j` is token `j`'s deepest-refined score lower bound. A token
//! is pruned when its score *upper* bound satisfies
//! `ŝ_max,i − ln D ≤ ln thr`, which is equivalent to the probability upper
//! bound `p''_i = exp(ŝ_max,i) / D ≤ thr`. Because `ŝ_max,i ≥ s_i` and
//! `D ≤ Σ_all exp(s_j)`, the true probability satisfies `p_i ≤ p''_i`, so
//! pruning is *safe*: no token with true probability above `thr` is ever
//! removed.

/// Streaming softmax denominator kept in a numerically safe scaled form.
///
/// Internally stores `(offset, sum)` with `D = sum · exp(offset)` and rebases
/// the offset whenever an incoming exponent would overflow the linear-domain
/// accumulator. This mirrors the hardware DAG, which accumulates partial-exp
/// differences from the PE lanes and broadcasts `ln(denominator)` back.
///
/// # Examples
///
/// ```
/// use topick_core::LogDenominator;
///
/// let mut d = LogDenominator::new();
/// d.add(0.0);           // exp(0) = 1
/// d.add(f64::ln(3.0));  // + 3
/// assert!((d.ln() - f64::ln(4.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDenominator {
    offset: f64,
    sum: f64,
}

impl LogDenominator {
    /// An empty denominator (`D = 0`, `ln D = -inf`).
    #[must_use]
    pub fn new() -> Self {
        Self {
            offset: 0.0,
            sum: 0.0,
        }
    }

    /// Adds `exp(x)` to the denominator.
    pub fn add(&mut self, x: f64) {
        self.rebase_for(x);
        self.sum += (x - self.offset).exp();
    }

    /// Replaces a previous contribution `exp(old)` with `exp(new)`.
    ///
    /// This is the PEC semantics: when a deeper chunk refines a token's
    /// lower bound from `old` to `new`, the lane emits the difference
    /// `exp(new) − exp(old)` for the DAG to aggregate. Refinement is
    /// monotone, so `new >= old` always holds for chunk updates.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `new < old`, which would indicate a
    /// non-monotone refinement.
    pub fn replace(&mut self, old: f64, new: f64) {
        debug_assert!(
            new >= old,
            "denominator refinement must be monotone: old={old}, new={new}"
        );
        self.rebase_for(new);
        let delta = (new - self.offset).exp() - (old - self.offset).exp();
        self.sum += delta;
        if self.sum < 0.0 {
            // Guard against floating-point cancellation.
            self.sum = 0.0;
        }
    }

    /// Natural log of the denominator; `-inf` when empty.
    #[must_use]
    pub fn ln(&self) -> f64 {
        if self.sum <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.offset + self.sum.ln()
        }
    }

    /// Linear-domain value of the denominator (may overflow to `inf` for
    /// extreme exponents; prefer [`ln`](Self::ln) for decisions).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum * self.offset.exp()
    }

    fn rebase_for(&mut self, x: f64) {
        // Keep exponents fed to exp() under ~60 so the linear accumulator
        // stays far from f64 overflow even after many additions.
        if x - self.offset > 60.0 {
            let new_offset = x;
            self.sum *= (self.offset - new_offset).exp();
            self.offset = new_offset;
        }
    }
}

impl Default for LogDenominator {
    fn default() -> Self {
        Self::new()
    }
}

/// The prune decision of Eq. 5: prune iff
/// `s_max − ln D ≤ ln thr`, i.e. `p'' = exp(s_max)/D ≤ thr`.
///
/// `s_max` is the token's real-valued score upper bound and `ln_denominator`
/// the current `ln D`. An empty denominator (`-inf`) never prunes.
#[must_use]
pub fn should_prune(s_max: f64, ln_denominator: f64, ln_threshold: f64) -> bool {
    if ln_denominator == f64::NEG_INFINITY {
        return false;
    }
    s_max - ln_denominator <= ln_threshold
}

/// The estimated probability upper bound `p'' = exp(s_max − ln D)`.
///
/// Mostly useful for diagnostics; the decision path uses
/// [`should_prune`] directly in the log domain.
#[must_use]
pub fn estimated_probability(s_max: f64, ln_denominator: f64) -> f64 {
    if ln_denominator == f64::NEG_INFINITY {
        return f64::INFINITY;
    }
    (s_max - ln_denominator).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_denominator_never_prunes() {
        let d = LogDenominator::new();
        assert_eq!(d.ln(), f64::NEG_INFINITY);
        assert!(!should_prune(-100.0, d.ln(), (1e-3f64).ln()));
    }

    #[test]
    fn add_matches_logsumexp() {
        let xs = [1.0, -2.5, 3.7, 0.0, -50.0];
        let mut d = LogDenominator::new();
        for &x in &xs {
            d.add(x);
        }
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((d.ln() - direct).abs() < 1e-12);
    }

    #[test]
    fn replace_matches_recomputation() {
        let mut d = LogDenominator::new();
        d.add(1.0);
        d.add(2.0);
        d.replace(1.0, 1.5);
        let direct: f64 = (1.5f64.exp() + 2.0f64.exp()).ln();
        assert!((d.ln() - direct).abs() < 1e-12);
    }

    #[test]
    fn rebase_handles_large_exponents() {
        let mut d = LogDenominator::new();
        d.add(0.0);
        d.add(500.0); // would overflow a naive linear accumulator
        d.add(501.0);
        let expect = 501.0 + (1.0 + (-1.0f64).exp() + (-501.0f64).exp()).ln();
        assert!((d.ln() - expect).abs() < 1e-9, "{} vs {expect}", d.ln());
    }

    #[test]
    fn prune_decision_equivalence() {
        // s_max - lnD <= ln(thr)  <=>  exp(s_max)/D <= thr
        let mut d = LogDenominator::new();
        for x in [0.0, 1.0, 2.0] {
            d.add(x);
        }
        let thr = 1e-3f64;
        for s_max in [-10.0, -4.0, 0.0, 5.0] {
            let log_decision = should_prune(s_max, d.ln(), thr.ln());
            let lin_decision = s_max.exp() / d.value() <= thr;
            assert_eq!(log_decision, lin_decision, "s_max={s_max}");
        }
    }

    #[test]
    fn estimated_probability_diagnostic() {
        let mut d = LogDenominator::new();
        d.add(0.0); // D = 1
        assert!((estimated_probability(0.0, d.ln()) - 1.0).abs() < 1e-12);
        assert!((estimated_probability((0.5f64).ln(), d.ln()) - 0.5).abs() < 1e-12);
    }
}
