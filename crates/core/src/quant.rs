//! Symmetric fixed-point quantization of attention operands.
//!
//! Queries, keys and values are quantized to signed `total_bits`-wide
//! integers with a shared per-tensor scale, matching the 12-bit operand
//! format of the ToPick hardware (§4). Keys are later streamed chunk-wise;
//! the chunk arithmetic itself lives in
//! [`PrecisionConfig`] and
//! [`MarginTable`](crate::MarginTable).

use crate::config::PrecisionConfig;
use crate::error::CoreError;

/// A quantized vector: `i16` codes plus the real-valued scale such that
/// `real ≈ code * scale`.
///
/// # Examples
///
/// ```
/// use topick_core::{PrecisionConfig, QVector};
///
/// let q = QVector::quantize(&[0.5, -1.0, 0.25], PrecisionConfig::paper());
/// assert_eq!(q.len(), 3);
/// let back = q.dequantize();
/// assert!((back[1] - -1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QVector {
    codes: Vec<i16>,
    scale: f64,
    precision: PrecisionConfig,
}

impl QVector {
    /// Quantizes a real-valued vector symmetrically: the largest absolute
    /// element maps to the largest representable code.
    ///
    /// A zero vector gets scale 1.0 (all codes zero).
    #[must_use]
    pub fn quantize(values: &[f32], precision: PrecisionConfig) -> Self {
        let max_abs = values.iter().fold(0f64, |m, &v| m.max(f64::from(v).abs()));
        let qmax = f64::from(precision.max_value());
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        let codes = values
            .iter()
            .map(|&v| {
                let c = (f64::from(v) / scale).round();
                c.clamp(f64::from(precision.min_value()), qmax) as i16
            })
            .collect();
        Self {
            codes,
            scale,
            precision,
        }
    }

    /// Builds a vector from raw codes and a scale.
    ///
    /// # Panics
    ///
    /// Panics if any code is outside the representable range of `precision`.
    #[must_use]
    pub fn from_codes(codes: Vec<i16>, scale: f64, precision: PrecisionConfig) -> Self {
        for &c in &codes {
            assert!(
                c >= precision.min_value() && c <= precision.max_value(),
                "code {c} out of range for {}-bit precision",
                precision.total_bits()
            );
        }
        Self {
            codes,
            scale,
            precision,
        }
    }

    /// The integer codes.
    #[must_use]
    pub fn codes(&self) -> &[i16] {
        &self.codes
    }

    /// The quantization scale (`real ≈ code * scale`).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The precision configuration this vector was quantized under.
    #[must_use]
    pub fn precision(&self) -> PrecisionConfig {
        self.precision
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the vector has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reconstructs the real-valued vector.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| (f64::from(c) * self.scale) as f32)
            .collect()
    }

    /// Exact integer dot product with another code slice.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot_codes(&self, other: &[i16]) -> i64 {
        assert_eq!(self.codes.len(), other.len(), "dot length mismatch");
        self.codes
            .iter()
            .zip(other)
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum()
    }

    /// Partial integer dot product using only the `chunks_known`
    /// most-significant chunks of `other` (the streamed key), i.e.
    /// `Σ q_j · known(k_j)`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `chunks_known` exceeds the chunk count.
    #[must_use]
    pub fn dot_known(&self, other: &[i16], chunks_known: u32) -> i64 {
        assert_eq!(self.codes.len(), other.len(), "dot length mismatch");
        let pc = self.precision;
        self.codes
            .iter()
            .zip(other)
            .map(|(&a, &b)| i64::from(a) * i64::from(pc.known_value(b, chunks_known)))
            .sum()
    }
}

/// A quantized key (or value) matrix: `n` token rows of dimension `dim`,
/// sharing one scale, stored row-major.
///
/// # Examples
///
/// ```
/// use topick_core::{PrecisionConfig, QMatrix};
///
/// let rows = vec![vec![1.0_f32, 0.0], vec![0.0, -2.0]];
/// let m = QMatrix::quantize_rows(&rows, PrecisionConfig::paper())?;
/// assert_eq!(m.num_tokens(), 2);
/// assert_eq!(m.dim(), 2);
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QMatrix {
    codes: Vec<i16>,
    dim: usize,
    num_tokens: usize,
    scale: f64,
    precision: PrecisionConfig,
}

impl QMatrix {
    /// Quantizes a set of token rows with a single shared symmetric scale.
    ///
    /// Convenience wrapper over [`QMatrix::quantize_flat`] for nested
    /// inputs (workload generators, tests); the hot path quantizes
    /// contiguous buffers directly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if rows have differing
    /// lengths, or [`CoreError::EmptyKeySet`] if `rows` is empty.
    pub fn quantize_rows(rows: &[Vec<f32>], precision: PrecisionConfig) -> Result<Self, CoreError> {
        let first = rows.first().ok_or(CoreError::EmptyKeySet)?;
        let dim = first.len();
        let mut flat = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(CoreError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
            flat.extend_from_slice(row);
        }
        Self::quantize_flat(&flat, dim, precision)
    }

    /// Quantizes a contiguous row-major buffer of `data.len() / dim` token
    /// rows with a single shared symmetric scale — the zero-copy entry
    /// point used by the attention kernels.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyKeySet`] if `data` is empty, or
    /// [`CoreError::DimensionMismatch`] if `dim` is zero or does not divide
    /// `data.len()`.
    pub fn quantize_flat(
        data: &[f32],
        dim: usize,
        precision: PrecisionConfig,
    ) -> Result<Self, CoreError> {
        Self::quantize_flat_reusing(data, dim, precision, Vec::new())
    }

    /// Like [`QMatrix::quantize_flat`], but reuses `codes_buf`'s allocation
    /// for the quantized codes. Pair with [`QMatrix::into_codes`] to
    /// recycle the buffer across generation steps.
    ///
    /// # Errors
    ///
    /// Same as [`QMatrix::quantize_flat`].
    pub fn quantize_flat_reusing(
        data: &[f32],
        dim: usize,
        precision: PrecisionConfig,
        mut codes_buf: Vec<i16>,
    ) -> Result<Self, CoreError> {
        if data.is_empty() {
            return Err(CoreError::EmptyKeySet);
        }
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                actual: data.len(),
            });
        }
        let mut max_abs = 0f64;
        for &v in data {
            max_abs = max_abs.max(f64::from(v).abs());
        }
        let qmax = f64::from(precision.max_value());
        let qmin = f64::from(precision.min_value());
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        codes_buf.clear();
        codes_buf.reserve(data.len());
        for &v in data {
            let c = (f64::from(v) / scale).round();
            codes_buf.push(c.clamp(qmin, qmax) as i16);
        }
        Ok(Self {
            codes: codes_buf,
            dim,
            num_tokens: data.len() / dim,
            scale,
            precision,
        })
    }

    /// Consumes the matrix, returning its code buffer for reuse with
    /// [`QMatrix::quantize_flat_reusing`].
    #[must_use]
    pub fn into_codes(self) -> Vec<i16> {
        self.codes
    }
}

/// A recyclable quantization buffer: owns the `i16` code allocation
/// between [`QMatrix`] lifetimes so per-step quantization allocates
/// nothing once warm.
///
/// The take/restore protocol lives here so every call site follows it
/// identically: [`QuantBuffer::quantize`] moves the buffer into the
/// matrix, [`QuantBuffer::reclaim`] moves it back.
///
/// # Examples
///
/// ```
/// use topick_core::{PrecisionConfig, QuantBuffer};
///
/// let mut buf = QuantBuffer::new();
/// for step in 0..3 {
///     let data = vec![0.5f32; 8 * (step + 1)];
///     let m = buf.quantize(&data, 8, PrecisionConfig::paper())?;
///     assert_eq!(m.num_tokens(), step + 1);
///     buf.reclaim(m);
/// }
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuantBuffer {
    codes: Vec<i16>,
}

impl QuantBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantizes a contiguous row-major buffer into a [`QMatrix`], reusing
    /// this buffer's allocation.
    ///
    /// # Errors
    ///
    /// Same as [`QMatrix::quantize_flat`].
    pub fn quantize(
        &mut self,
        data: &[f32],
        dim: usize,
        precision: PrecisionConfig,
    ) -> Result<QMatrix, CoreError> {
        QMatrix::quantize_flat_reusing(data, dim, precision, std::mem::take(&mut self.codes))
    }

    /// Takes a matrix's code allocation back for the next
    /// [`QuantBuffer::quantize`] call.
    pub fn reclaim(&mut self, matrix: QMatrix) {
        self.codes = matrix.into_codes();
    }
}

impl QMatrix {
    /// Builds a matrix from raw codes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if `codes.len()` is not a
    /// multiple of `dim`, or [`CoreError::EmptyKeySet`] if `codes` is empty.
    pub fn from_codes(
        codes: Vec<i16>,
        dim: usize,
        scale: f64,
        precision: PrecisionConfig,
    ) -> Result<Self, CoreError> {
        if codes.is_empty() {
            return Err(CoreError::EmptyKeySet);
        }
        if dim == 0 || !codes.len().is_multiple_of(dim) {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                actual: codes.len(),
            });
        }
        let num_tokens = codes.len() / dim;
        Ok(Self {
            codes,
            dim,
            num_tokens,
            scale,
            precision,
        })
    }

    /// Number of token rows.
    #[must_use]
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// Row dimension (head dimension `d_h`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shared quantization scale.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The precision configuration.
    #[must_use]
    pub fn precision(&self) -> PrecisionConfig {
        self.precision
    }

    /// The codes of one token row.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range.
    #[must_use]
    pub fn row(&self, token: usize) -> &[i16] {
        assert!(token < self.num_tokens, "token {token} out of range");
        &self.codes[token * self.dim..(token + 1) * self.dim]
    }

    /// Reconstructs one token row as real values.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range.
    #[must_use]
    pub fn dequantize_row(&self, token: usize) -> Vec<f32> {
        self.row(token)
            .iter()
            .map(|&c| (f64::from(c) * self.scale) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let pc = PrecisionConfig::paper();
        let vals = [0.37f32, -0.91, 0.004, 1.0, -1.0, 0.0];
        let q = QVector::quantize(&vals, pc);
        let back = q.dequantize();
        // One LSB of error at most: scale/2 per element.
        let lsb = q.scale() as f32;
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 * lsb + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_vector_quantizes_to_zero() {
        let q = QVector::quantize(&[0.0; 8], PrecisionConfig::paper());
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn extreme_values_hit_range_ends() {
        let pc = PrecisionConfig::paper();
        let q = QVector::quantize(&[3.0, -3.0], pc);
        assert_eq!(q.codes()[0], pc.max_value());
        assert_eq!(q.codes()[1], -pc.max_value()); // symmetric scheme
    }

    #[test]
    fn dot_known_converges_to_exact() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![100, -200, 3], 1.0, pc);
        let k = [517i16, -1033, 2047];
        let exact = q.dot_codes(&k);
        assert_eq!(q.dot_known(&k, 3), exact);
        // Partial dots must be <= exact + something only via margins; just
        // check monotone convergence of the *known* part toward exact from
        // below-or-equal in each coordinate handled by margin tests.
        let d1 = q.dot_known(&k, 1);
        let d2 = q.dot_known(&k, 2);
        assert_ne!(d1, exact);
        assert_ne!(d1, d2);
    }

    #[test]
    fn matrix_rejects_ragged_rows() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0]];
        let err = QMatrix::quantize_rows(&rows, PrecisionConfig::paper()).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn matrix_rejects_empty() {
        let err = QMatrix::quantize_rows(&[], PrecisionConfig::paper()).unwrap_err();
        assert_eq!(err, CoreError::EmptyKeySet);
    }

    #[test]
    fn matrix_row_access() {
        let rows = vec![vec![1.0f32, -1.0], vec![0.5, 0.25]];
        let m = QMatrix::quantize_rows(&rows, PrecisionConfig::paper()).unwrap();
        assert_eq!(m.row(0).len(), 2);
        let r1 = m.dequantize_row(1);
        assert!((r1[0] - 0.5).abs() < 1e-3);
    }
}
