//! The progressive token pruner — the reference (functional) implementation
//! of Token-Picker's step 0.
//!
//! Tokens are probed chunk-by-chunk through a work queue: chunk-0 jobs are
//! enqueued in scan order, and a token surviving chunk `c` re-enqueues its
//! chunk `c+1` job at the queue tail. This mirrors the out-of-order hardware
//! (deeper chunks are evaluated only after many more first chunks have
//! contributed to the denominator), while staying deterministic and
//! cycle-agnostic. The cycle-accurate version lives in `topick-accel`.

use std::collections::VecDeque;

use crate::config::PrunerConfig;
use crate::error::CoreError;
use crate::estimate::{should_prune, LogDenominator};
use crate::margin::MarginTable;
use crate::quant::{QMatrix, QVector};
use crate::softmax::{score_scale, softmax};
use crate::stats::PruneStats;

/// A token that survived pruning, with its exact integer and real scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeptToken {
    /// Token index in the context (0 = oldest).
    pub index: usize,
    /// Exact integer dot-product score.
    pub score_int: i64,
    /// Real-valued score after quantization scales and `1/sqrt(d_h)`.
    pub score_real: f64,
}

/// Result of one pruning run: the surviving tokens, their softmax
/// probabilities (renormalized over survivors, as the hardware's Probability
/// Generator does after step 0), and access statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Surviving tokens in ascending index order.
    pub kept: Vec<KeptToken>,
    /// Softmax probabilities over the survivors, aligned with `kept`.
    pub probabilities: Vec<f64>,
    /// Chunk-fetch and prune-depth statistics.
    pub stats: PruneStats,
}

impl PruneOutcome {
    /// `(token index, probability)` pairs for feeding
    /// [`weighted_value_sum`](crate::softmax::weighted_value_sum).
    #[must_use]
    pub fn probability_pairs(&self) -> Vec<(usize, f64)> {
        self.kept
            .iter()
            .zip(&self.probabilities)
            .map(|(k, &p)| (k.index, p))
            .collect()
    }
}

/// Reusable working memory for [`ProgressivePruner::run_with_scratch`].
///
/// One pruning run needs a probe queue, a per-token bound table and a
/// score staging buffer — all sized by the context length. A generation
/// loop calls the pruner once per step per head, so reusing these buffers
/// removes three context-sized allocations from every attention step.
#[derive(Debug, Clone, Default)]
pub struct PrunerScratch {
    queue: VecDeque<(usize, u32)>,
    prev_smin: Vec<f64>,
    scores: Vec<f64>,
}

impl PrunerScratch {
    /// Fresh, empty working memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// The progressive pruner (paper §3).
///
/// # Examples
///
/// ```
/// use topick_core::{PrecisionConfig, ProgressivePruner, PrunerConfig, QMatrix, QVector};
///
/// let pc = PrecisionConfig::paper();
/// let query = QVector::quantize(&[0.9, -0.3, 0.5, 0.1], pc);
/// let keys = QMatrix::quantize_rows(
///     &[
///         vec![0.9, -0.3, 0.5, 0.1],   // aligned with the query -> dominant
///         vec![-0.9, 0.3, -0.5, -0.1], // anti-aligned -> prunable
///         vec![0.8, -0.2, 0.4, 0.0],
///     ],
///     pc,
/// )?;
/// let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3)?);
/// let outcome = pruner.run(&query, &keys)?;
/// assert!(!outcome.kept.is_empty());
/// let total: f64 = outcome.probabilities.iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressivePruner {
    cfg: PrunerConfig,
}

impl ProgressivePruner {
    /// Creates a pruner with the given configuration.
    #[must_use]
    pub fn new(cfg: PrunerConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PrunerConfig {
        &self.cfg
    }

    /// Runs step 0 over a query and key set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the query length differs
    /// from the key dimension, or [`CoreError::EmptyKeySet`] for an empty
    /// key set.
    pub fn run(&self, query: &QVector, keys: &QMatrix) -> Result<PruneOutcome, CoreError> {
        self.run_with_scratch(query, keys, &mut PrunerScratch::new())
    }

    /// Runs step 0 reusing caller-owned working memory: the probe queue,
    /// per-token bound table and score staging buffer are recycled across
    /// calls and the scan order is generated lazily, so a warm generation
    /// loop pays no context-sized scratch allocations per step (only the
    /// returned outcome's survivor vectors are fresh).
    ///
    /// # Errors
    ///
    /// Same as [`ProgressivePruner::run`].
    pub fn run_with_scratch(
        &self,
        query: &QVector,
        keys: &QMatrix,
        scratch: &mut PrunerScratch,
    ) -> Result<PruneOutcome, CoreError> {
        if query.len() != keys.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: keys.dim(),
                actual: query.len(),
            });
        }
        let n = keys.num_tokens();
        if n == 0 {
            return Err(CoreError::EmptyKeySet);
        }
        let pc = self.cfg.precision();
        let num_chunks = pc.num_chunks();
        let margins = MarginTable::from_query_codes(query.codes(), pc);
        let scale = score_scale(query, keys);
        let ln_thr = self.cfg.threshold().ln();

        let mut stats = PruneStats::new(n, num_chunks);
        let mut denom = LogDenominator::new();
        // Last emitted lower bound per token, for PEC-style replacement.
        let prev_smin = &mut scratch.prev_smin;
        prev_smin.clear();
        prev_smin.resize(n, f64::NAN);

        let queue = &mut scratch.queue;
        queue.clear();
        queue.extend(self.cfg.order().indices(n).map(|t| (t, 1u32)));

        let mut kept: Vec<KeptToken> = Vec::new();
        while let Some((token, chunks_known)) = queue.pop_front() {
            stats.chunk_fetches[(chunks_known - 1) as usize] += 1;
            let ps = query.dot_known(keys.row(token), chunks_known);
            let pair = margins.pair(chunks_known);
            let smin = (ps + pair.min) as f64 * scale;
            let smax = (ps + pair.max) as f64 * scale;
            if chunks_known == 1 {
                denom.add(smin);
            } else {
                denom.replace(prev_smin[token], smin);
            }
            prev_smin[token] = smin;

            if should_prune(smax, denom.ln(), ln_thr) {
                stats.pruned_at[(chunks_known - 1) as usize] += 1;
            } else if chunks_known == num_chunks {
                // Margins are zero here, so ps is the exact integer score.
                kept.push(KeptToken {
                    index: token,
                    score_int: ps,
                    score_real: smax,
                });
            } else {
                queue.push_back((token, chunks_known + 1));
            }
        }

        kept.sort_by_key(|k| k.index);
        stats.kept = kept.len();
        let scores = &mut scratch.scores;
        scores.clear();
        scores.extend(kept.iter().map(|k| k.score_real));
        let probabilities = softmax(scores);
        Ok(PruneOutcome {
            kept,
            probabilities,
            stats,
        })
    }
}

/// An "oracle" pruner that computes all exact scores first and prunes tokens
/// with true probability below the threshold.
///
/// This is the ideal (non-streaming) V-pruning achievable with full K data:
/// every K bit is fetched, but V rows of negligible tokens are skipped. It
/// models the paper's estimation-only configuration ("ToPick-V" in Fig. 10,
/// which reduces V access but not K access) and upper-bounds what the
/// conservative estimator can keep out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OraclePruner {
    threshold: f64,
}

impl OraclePruner {
    /// Creates an oracle pruner with probability threshold `thr`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidThreshold`] if `thr` is not in `(0, 1)`.
    pub fn new(threshold: f64) -> Result<Self, CoreError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        Ok(Self { threshold })
    }

    /// Runs exact scoring + post-softmax thresholding.
    ///
    /// All key chunks count as fetched; only surviving tokens' V rows do.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] or [`CoreError::EmptyKeySet`]
    /// on malformed input.
    pub fn run(&self, query: &QVector, keys: &QMatrix) -> Result<PruneOutcome, CoreError> {
        if query.len() != keys.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: keys.dim(),
                actual: query.len(),
            });
        }
        let n = keys.num_tokens();
        if n == 0 {
            return Err(CoreError::EmptyKeySet);
        }
        let pc = keys.precision();
        let scale = score_scale(query, keys);
        let scores_int: Vec<i64> = (0..n)
            .map(|t| query.dot_known(keys.row(t), pc.num_chunks()))
            .collect();
        let scores: Vec<f64> = scores_int.iter().map(|&s| s as f64 * scale).collect();
        let probs = softmax(&scores);

        let mut stats = PruneStats::new(n, pc.num_chunks());
        // Full K fetched: every chunk of every token.
        for c in &mut stats.chunk_fetches {
            *c = n as u64;
        }
        let mut kept = Vec::new();
        for t in 0..n {
            if probs[t] > self.threshold {
                kept.push(KeptToken {
                    index: t,
                    score_int: scores_int[t],
                    score_real: scores[t],
                });
            } else {
                *stats.pruned_at.last_mut().expect("at least one chunk") += 1;
            }
        }
        stats.kept = kept.len();
        let kept_scores: Vec<f64> = kept.iter().map(|k| k.score_real).collect();
        let probabilities = softmax(&kept_scores);
        Ok(PruneOutcome {
            kept,
            probabilities,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecisionConfig;
    use crate::softmax::exact_probabilities;

    fn peaky_workload(n: usize, dim: usize) -> (QVector, QMatrix) {
        // Deterministic pseudo-random keys with one strongly aligned token.
        let pc = PrecisionConfig::paper();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 16_777_216.0 - 0.5
        };
        let qv: Vec<f32> = (0..dim).map(|_| next()).collect();
        let mut rows = Vec::with_capacity(n);
        for t in 0..n {
            if t == n - 1 || t == 0 {
                // Aligned with the query -> dominant score.
                rows.push(qv.iter().map(|&x| x * 2.0).collect());
            } else {
                rows.push((0..dim).map(|_| next() * 0.3).collect());
            }
        }
        let q = QVector::quantize(&qv, pc);
        let keys = QMatrix::quantize_rows(&rows, pc).unwrap();
        (q, keys)
    }

    #[test]
    fn soundness_no_dominant_token_pruned() {
        let (q, keys) = peaky_workload(128, 32);
        let thr = 1e-3;
        let pruner = ProgressivePruner::new(PrunerConfig::new(thr).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        let exact = exact_probabilities(&q, &keys);
        let kept: std::collections::HashSet<usize> = outcome.kept.iter().map(|k| k.index).collect();
        for (t, &p) in exact.iter().enumerate() {
            if p > thr {
                assert!(kept.contains(&t), "token {t} with p={p} was pruned");
            }
        }
    }

    #[test]
    fn kept_scores_are_exact() {
        let (q, keys) = peaky_workload(64, 16);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        for k in &outcome.kept {
            assert_eq!(k.score_int, q.dot_codes(keys.row(k.index)));
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (q, keys) = peaky_workload(64, 16);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        let sum: f64 = outcome.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn something_gets_pruned_on_peaky_input() {
        let (q, keys) = peaky_workload(256, 32);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-2).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        assert!(
            outcome.stats.pruned() > 0,
            "expected pruning on peaky input"
        );
        assert!(outcome.stats.kept < 256);
    }

    #[test]
    fn chunk_fetches_monotone_decreasing() {
        let (q, keys) = peaky_workload(256, 32);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-2).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        let f = &outcome.stats.chunk_fetches;
        assert_eq!(f[0], 256);
        assert!(f[0] >= f[1] && f[1] >= f[2]);
    }

    #[test]
    fn accounting_identity_holds() {
        // pruned_at sums to pruned count; fetches[c+1] = fetches[c] - pruned_at[c].
        let (q, keys) = peaky_workload(200, 24);
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-2).unwrap());
        let s = pruner.run(&q, &keys).unwrap().stats;
        assert_eq!(s.pruned_at.iter().sum::<u64>() as usize, s.pruned());
        for c in 0..s.chunk_fetches.len() - 1 {
            assert_eq!(s.chunk_fetches[c + 1], s.chunk_fetches[c] - s.pruned_at[c]);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![1, 2, 3], 1.0, pc);
        let keys = QMatrix::from_codes(vec![1, 2, 3, 4], 2, 1.0, pc).unwrap();
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).unwrap());
        assert!(matches!(
            pruner.run(&q, &keys),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn single_token_is_always_kept() {
        let pc = PrecisionConfig::paper();
        let q = QVector::from_codes(vec![100; 8], 1.0, pc);
        let keys = QMatrix::from_codes(vec![-2000; 8], 8, 1.0, pc).unwrap();
        let pruner = ProgressivePruner::new(PrunerConfig::new(0.5).unwrap());
        let outcome = pruner.run(&q, &keys).unwrap();
        // A lone token has true probability 1.0 > any thr < 1.
        assert_eq!(outcome.kept.len(), 1);
        assert!((outcome.probabilities[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let pruner = ProgressivePruner::new(PrunerConfig::new(1e-3).unwrap());
        let mut scratch = PrunerScratch::new();
        // Different context sizes back-to-back exercise the resize path.
        for (n, dim, seed_mix) in [(64, 16, 0), (128, 32, 1), (32, 8, 2)] {
            let (q, keys) = peaky_workload(n + seed_mix, dim);
            let fresh = pruner.run(&q, &keys).unwrap();
            let reused = pruner.run_with_scratch(&q, &keys, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn oracle_prunes_at_least_as_much_as_estimator_keeps_dominants() {
        let (q, keys) = peaky_workload(128, 32);
        let thr = 1e-3;
        let est = ProgressivePruner::new(PrunerConfig::new(thr).unwrap())
            .run(&q, &keys)
            .unwrap();
        let oracle = OraclePruner::new(thr).unwrap().run(&q, &keys).unwrap();
        // The conservative estimator can only keep a superset of the oracle's
        // survivors (it may fail to prune, never over-prunes).
        let est_kept: std::collections::HashSet<usize> = est.kept.iter().map(|k| k.index).collect();
        for k in &oracle.kept {
            // Oracle keeps p > thr strictly; estimator must also keep those.
            assert!(est_kept.contains(&k.index));
        }
        assert!(est.stats.kept >= oracle.stats.kept);
        // Oracle fetches all K.
        assert_eq!(oracle.stats.k_reduction(32, &keys.precision()), 1.0);
    }
}
