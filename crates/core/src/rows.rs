//! Borrowed row-major matrix views — the zero-copy currency of the
//! attention data path.
//!
//! Caches store contiguous row-major `f32` buffers; kernels and the
//! cycle-level simulator consume them through [`Rows`] without cloning a
//! single row. A `Rows` is `Copy` (a fat pointer plus a dimension), so it
//! is passed by value everywhere.

/// A borrowed view of `num_rows × dim` values stored row-major.
///
/// # Examples
///
/// ```
/// use topick_core::Rows;
///
/// let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let rows = Rows::new(&data, 3);
/// assert_eq!(rows.num_rows(), 2);
/// assert_eq!(rows.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rows<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> Rows<'a> {
    /// Wraps a contiguous row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `data.len()` is not a multiple of `dim`.
    #[must_use]
    pub fn new(data: &'a [f32], dim: usize) -> Self {
        assert!(dim > 0, "row dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "buffer length {} is not a multiple of dim {dim}",
            data.len()
        );
        Self { data, dim }
    }

    /// Number of rows in the view.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Row dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the view holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole underlying buffer.
    #[must_use]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// One row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &'a [f32] {
        assert!(i < self.num_rows(), "row {i} out of range");
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the rows in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Copies the view into an owned nested representation (test/debug
    /// helper; the hot path never calls this).
    #[must_use]
    pub fn to_nested(&self) -> Vec<Vec<f32>> {
        self.iter().map(<[f32]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        let data = [0.0f32; 12];
        let r = Rows::new(&data, 4);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.dim(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 3);
    }

    #[test]
    fn empty_view_is_allowed() {
        let r = Rows::new(&[], 8);
        assert_eq!(r.num_rows(), 0);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_buffer_rejected() {
        let data = [0.0f32; 7];
        let _ = Rows::new(&data, 4);
    }

    #[test]
    fn rows_match_nested() {
        let data = [1.0f32, 2.0, 3.0, 4.0];
        let r = Rows::new(&data, 2);
        assert_eq!(r.to_nested(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(r.row(0), &[1.0, 2.0]);
    }
}
