//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API this workspace's benches use —
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`],
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! median-of-samples wall-clock timer. No statistics engine, no plots;
//! results print as `name ... median time/iter`.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark's timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    min_sample_time: Duration,
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, printing the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that fills the
        // minimum sample time.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.min_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / iters_per_sample);
        }
        per_iter.sort_unstable();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        println!("bench {}/{}: {:>12.3?}/iter", self.name, id, b.last_median);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.criterion.bencher();
        f(&mut b);
        println!("bench {}/{}: {:>12.3?}/iter", self.name, id, b.last_median);
        self
    }

    /// Finishes the group (printing only; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    samples: u32,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            samples: 11,
            min_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    fn bencher(&self) -> Bencher {
        Bencher {
            samples: self.samples,
            min_sample_time: self.min_sample_time,
            last_median: Duration::ZERO,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        println!("bench {}: {:>12.3?}/iter", name, b.last_median);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            samples: 3,
            min_sample_time: Duration::from_micros(50),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            samples: 3,
            min_sample_time: Duration::from_micros(50),
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
