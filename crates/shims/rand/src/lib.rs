//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *minimal* surface of `rand` 0.8 it actually uses: the
//! [`Rng`] / [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads and fully reproducible from a `u64` seed. Streams are NOT
//! bit-compatible with upstream `rand`; nothing in this workspace depends
//! on upstream streams, only on in-process determinism.

/// Types that can be sampled uniformly from a generator (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait SampleStandard {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A random-number generator: one raw-bits method plus generic sampling,
/// mirroring the subset of `rand::Rng` this workspace calls.
pub trait Rng {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn gen_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = Self { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
