//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a small randomized property-testing harness with the same spelling as
//! the `proptest` API surface its tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * `any::<T>()`, numeric range strategies, and
//!   `prop::collection::vec(strategy, size)`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Failing cases are NOT shrunk — the panic message reports the case index
//! so a failure can be re-run deterministically (case seeds derive from the
//! test name and index only).

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a constant value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);
}

pub mod arbitrary {
    //! `any::<T>()` — the whole-domain strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Creates the full-domain strategy for `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_impl {
        ($($t:ty => |$rng:ident| $e:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, $rng: &mut TestRng) -> $t {
                    $e
                }
            }
        )*};
    }
    any_impl! {
        u64 => |rng| rng.next_u64(),
        u32 => |rng| (rng.next_u64() >> 32) as u32,
        u16 => |rng| (rng.next_u64() >> 48) as u16,
        u8 => |rng| (rng.next_u64() >> 56) as u8,
        i64 => |rng| rng.next_u64() as i64,
        i32 => |rng| (rng.next_u64() >> 32) as i32,
        i16 => |rng| (rng.next_u64() >> 48) as i16,
        bool => |rng| rng.next_u64() & 1 == 1,
        usize => |rng| rng.next_u64() as usize,
        f64 => |rng| rng.unit_f64() * 2e6 - 1e6,
        f32 => |rng| (rng.unit_f64() * 2e6 - 1e6) as f32,
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An exact size or a half-open size range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test randomized runner.

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The case count a property actually runs: the `PROPTEST_CASES`
    /// environment variable when set to a valid number (matching the real
    /// proptest crate, so CI can raise coverage without code changes),
    /// otherwise the configured count.
    #[must_use]
    pub fn resolve_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }

    /// Deterministic per-case generator (SplitMix64 seeded from the test
    /// name and case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for case `case` of test `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 raw pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                for case in 0..u64::from(cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let run = move || $body;
                    run();
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i16..=5, z in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn proptest_cases_env_var_overrides_the_configured_count() {
        // Inspect the resolver directly instead of mutating the process
        // environment (tests run concurrently and every property reads it).
        let resolved = crate::test_runner::resolve_cases(64);
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => assert_eq!(resolved, v.parse().unwrap_or(64)),
            Err(_) => assert_eq!(resolved, 64),
        }
    }
}
