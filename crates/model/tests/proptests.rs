//! Property tests of the transformer substrate and synthetic workloads.

use proptest::prelude::*;
use topick_model::{
    nll_from_logits, ExactAttention, HeadCache, KvCache, ModelSpec, PagedKvStore, SynthInstance,
    SynthProfile, TransformerModel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Synthetic instances realize their target scores to high precision,
    /// for any profile in the supported range.
    #[test]
    fn synth_scores_match_targets(
        seed in any::<u64>(),
        n in 1usize..128,
        dim_pow in 3u32..8, // 8..128
        std in 0.0f64..4.0,
        locality in 0.0f64..6.0,
    ) {
        let dim = 1usize << dim_pow;
        let profile = SynthProfile {
            score_std: std,
            locality_strength: locality,
            ..SynthProfile::realistic(n, dim)
        };
        let inst = SynthInstance::generate(&profile, seed);
        let realized = inst.realized_scores();
        for (t, r) in inst.target_scores.iter().zip(&realized) {
            prop_assert!((t - r).abs() < 1e-2, "target {} vs realized {}", t, r);
        }
    }

    /// Attention probabilities from any instance form a distribution.
    #[test]
    fn synth_probabilities_are_a_distribution(seed in any::<u64>(), n in 1usize..96) {
        let inst = SynthInstance::generate(&SynthProfile::realistic(n, 32), seed);
        let p = inst.exact_probabilities();
        prop_assert_eq!(p.len(), n);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    /// NLL is non-negative for any target and consistent with a direct
    /// softmax computation.
    #[test]
    fn nll_nonnegative_and_consistent(
        logits in prop::collection::vec(-20.0f32..20.0, 2..64),
        target_frac in 0.0f64..1.0,
    ) {
        let target = ((logits.len() as f64 - 1.0) * target_frac) as usize;
        let nll = nll_from_logits(&logits, target);
        prop_assert!(nll >= -1e-9, "nll {}", nll);
        let probs = topick_core::softmax(&logits.iter().map(|&l| f64::from(l)).collect::<Vec<_>>());
        prop_assert!((nll - (-probs[target].ln())).abs() < 1e-6);
    }

    /// The KV cache returns exactly what was pushed, in order.
    #[test]
    fn head_cache_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 1..32),
    ) {
        let mut cache = HeadCache::new(4);
        for r in &rows {
            cache.push(r, r);
        }
        prop_assert_eq!(cache.len(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(cache.key_row(i), r.as_slice());
            prop_assert_eq!(cache.value_row(i), r.as_slice());
        }
    }

    /// The contiguous cache views are semantically identical to the old
    /// row-of-rows representation: `keys()`/`values()`/`view()` expose
    /// exactly the nested structure a `Vec<Vec<f32>>` cache would, for any
    /// push sequence.
    #[test]
    fn head_cache_views_match_row_of_rows_semantics(
        keys in prop::collection::vec(prop::collection::vec(-8.0f32..8.0, 3), 1..40),
        value_bias in -2.0f32..2.0,
    ) {
        // Reference: the nested representation built alongside the cache.
        let mut cache = HeadCache::new(3);
        let mut nested_keys: Vec<Vec<f32>> = Vec::new();
        let mut nested_values: Vec<Vec<f32>> = Vec::new();
        for k in &keys {
            let v: Vec<f32> = k.iter().map(|&x| x * 0.5 + value_bias).collect();
            cache.push(k, &v);
            nested_keys.push(k.clone());
            nested_values.push(v);
        }

        // Row views equal the nested rows, element for element.
        prop_assert_eq!(cache.keys().to_nested(), nested_keys.clone());
        prop_assert_eq!(cache.values().to_nested(), nested_values.clone());

        // The combined view agrees in shape and contents.
        let view = cache.view();
        prop_assert_eq!(view.len(), nested_keys.len());
        prop_assert_eq!(view.dim(), 3);
        for (i, (nk, nv)) in nested_keys.iter().zip(&nested_values).enumerate() {
            prop_assert_eq!(view.keys().row(i), nk.as_slice());
            prop_assert_eq!(view.values().row(i), nv.as_slice());
        }

        // And the flat buffers are the exact concatenation of the rows.
        let flat_keys: Vec<f32> = nested_keys.concat();
        prop_assert_eq!(cache.keys().data(), flat_keys.as_slice());
    }

    /// Copy-on-write page sharing is invisible to reads: under arbitrary
    /// interleavings of push / fork-at-prefix / truncate / release across
    /// several sequences, every sequence reads back exactly like the
    /// naive, fully private row list it mirrors, and page refcounts
    /// conserve.
    #[test]
    fn paged_store_matches_private_mirrors_under_any_interleaving(
        seed in any::<u64>(),
        page_size in 1usize..6,
        ops in prop::collection::vec(0u8..8, 4..48),
    ) {
        const DIM: usize = 3;
        const SLOTS: usize = 4;
        let mut store = PagedKvStore::new(DIM, page_size);
        let mut seqs: Vec<_> = (0..SLOTS).map(|_| store.new_seq()).collect();
        let mut mirrors: Vec<Vec<(Vec<f32>, Vec<f32>)>> = vec![Vec::new(); SLOTS];
        let mut stamp = 0f32;
        for (i, op) in ops.iter().enumerate() {
            let mix = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            let slot = (mix % SLOTS as u64) as usize;
            let other = ((mix >> 8) % SLOTS as u64) as usize;
            match op {
                // Push is the common case: weight it like the engine does.
                0..=3 => {
                    stamp += 1.0;
                    let k = vec![stamp, stamp + 0.25, stamp + 0.5];
                    let v = vec![-stamp, stamp * 2.0, stamp * 0.125];
                    store.push(&mut seqs[slot], &k, &v);
                    mirrors[slot].push((k, v));
                }
                4 if slot != other => {
                    // Fork `other` at an arbitrary prefix of `slot`,
                    // releasing whatever `other` held.
                    let prefix = (mix >> 16) as usize % (seqs[slot].len() + 1);
                    let mut old = std::mem::replace(&mut seqs[other], store.new_seq());
                    store.release(&mut old);
                    seqs[other] = store.fork(&seqs[slot], prefix);
                    mirrors[other] = mirrors[slot][..prefix].to_vec();
                }
                4 => {} // self-fork: no-op
                5 => {
                    let len = (mix >> 16) as usize % (seqs[slot].len() + 1);
                    store.truncate(&mut seqs[slot], len);
                    mirrors[slot].truncate(len);
                }
                _ => {
                    store.release(&mut seqs[slot]);
                    mirrors[slot].clear();
                }
            }
            // Every sequence equals its private mirror, every time.
            let live: Vec<_> = seqs.iter().collect();
            store.validate(&live);
            for (seq, mirror) in seqs.iter().zip(&mirrors) {
                prop_assert_eq!(seq.len(), mirror.len());
                for (j, (k, v)) in mirror.iter().enumerate() {
                    prop_assert_eq!(store.key_row(seq, j), k.as_slice());
                    prop_assert_eq!(store.value_row(seq, j), v.as_slice());
                }
            }
        }
        for mut seq in seqs {
            store.release(&mut seq);
        }
        prop_assert_eq!(store.allocated_pages(), 0);
    }

    /// `PagedKvStore::gather` (the contiguous bridge the paged decode
    /// path attends over) matches a [`HeadCache`] oracle built from the
    /// same logical history, under arbitrary fork / push / truncate /
    /// release interleavings — so a kernel reading gathered paged rows
    /// sees bit-identical buffers to the contiguous cache path.
    #[test]
    fn paged_gather_matches_head_cache_oracle_under_any_interleaving(
        seed in any::<u64>(),
        page_size in 1usize..6,
        ops in prop::collection::vec(0u8..8, 4..48),
    ) {
        const DIM: usize = 3;
        const SLOTS: usize = 4;
        let mut store = PagedKvStore::new(DIM, page_size);
        let mut seqs: Vec<_> = (0..SLOTS).map(|_| store.new_seq()).collect();
        let mut oracles: Vec<HeadCache> = (0..SLOTS).map(|_| HeadCache::new(DIM)).collect();
        // The oracle has no fork, so mirror forks by replaying the
        // parent's retained rows into a fresh cache.
        let refork = |parent: &HeadCache, prefix: usize| {
            let mut c = HeadCache::new(DIM);
            for i in 0..prefix {
                c.push(parent.key_row(i), parent.value_row(i));
            }
            c
        };
        let mut stamp = 0f32;
        let mut key_scratch = Vec::new();
        let mut value_scratch = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let mix = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            let slot = (mix % SLOTS as u64) as usize;
            let other = ((mix >> 8) % SLOTS as u64) as usize;
            match op {
                0..=3 => {
                    stamp += 1.0;
                    let k = [stamp, stamp + 0.25, stamp + 0.5];
                    let v = [-stamp, stamp * 2.0, stamp * 0.125];
                    store.push(&mut seqs[slot], &k, &v);
                    oracles[slot].push(&k, &v);
                }
                4 if slot != other => {
                    let prefix = (mix >> 16) as usize % (seqs[slot].len() + 1);
                    let mut old = std::mem::replace(&mut seqs[other], store.new_seq());
                    store.release(&mut old);
                    seqs[other] = store.fork(&seqs[slot], prefix);
                    oracles[other] = refork(&oracles[slot], prefix);
                }
                4 => {}
                5 => {
                    let len = (mix >> 16) as usize % (seqs[slot].len() + 1);
                    store.truncate(&mut seqs[slot], len);
                    oracles[slot].truncate(len);
                }
                _ => {
                    store.release(&mut seqs[slot]);
                    oracles[slot].truncate(0);
                }
            }
            for (seq, oracle) in seqs.iter().zip(&oracles) {
                let (keys, values) = store.gather(seq);
                prop_assert_eq!(keys.as_slice(), oracle.keys().data());
                prop_assert_eq!(values.as_slice(), oracle.values().data());
                // The scratch-buffer variant agrees with the allocating one.
                store.gather_into(seq, &mut key_scratch, &mut value_scratch);
                prop_assert_eq!(key_scratch.as_slice(), keys.as_slice());
                prop_assert_eq!(value_scratch.as_slice(), values.as_slice());
            }
        }
        let live: Vec<_> = seqs.iter().collect();
        store.validate(&live);
    }
}

#[test]
fn model_forward_is_pure_given_cache_state() {
    // Two models from the same seed must produce identical logits on
    // identical inputs, independently of each other.
    let spec = ModelSpec::toy();
    let m1 = TransformerModel::new_random(spec.clone(), 5);
    let m2 = TransformerModel::new_random(spec.clone(), 5);
    let mut c1 = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let mut c2 = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let mut k1 = ExactAttention::new();
    let mut k2 = ExactAttention::new();
    for (pos, tok) in [3usize, 14, 15, 92].iter().enumerate() {
        let l1 = m1.forward(*tok, pos, &mut c1, &mut k1);
        let l2 = m2.forward(*tok, pos, &mut c2, &mut k2);
        assert_eq!(l1, l2, "divergence at pos {pos}");
    }
}

#[test]
fn different_seeds_give_different_models() {
    let spec = ModelSpec::toy();
    let m1 = TransformerModel::new_random(spec.clone(), 1);
    let m2 = TransformerModel::new_random(spec.clone(), 2);
    let mut c1 = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let mut c2 = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let mut k = ExactAttention::new();
    let l1 = m1.forward(7, 0, &mut c1, &mut k);
    let l2 = m2.forward(7, 0, &mut c2, &mut k);
    assert_ne!(l1, l2);
}

#[test]
fn truncate_then_reprefill_resumes_the_model_exactly() {
    // Preemption with partial KV retention, at the storage level: drop a
    // suffix of a request's cache (`KvCache::truncate`), replay only the
    // dropped tokens, and the model must continue exactly as if it had
    // never been interrupted — same cache contents, same logits. This is
    // the contract the serving layer's re-prefill charge prices.
    let spec = ModelSpec::toy();
    let model = TransformerModel::new_random(spec.clone(), 11);
    let tokens = [3usize, 14, 15, 92, 65, 35];

    let mut kernel = ExactAttention::new();
    let mut uninterrupted = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let full_logits = model.forward_sequence(&tokens, &mut uninterrupted, &mut kernel);

    let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    model.forward_sequence(&tokens, &mut cache, &mut kernel);
    // Preempt, retaining a 2-token prefix (as the pager's retention
    // policy would decide), then re-prefill the dropped suffix.
    cache.truncate(2);
    assert_eq!(cache.context_len(), 2);
    let mut resumed_logits = Vec::new();
    for (pos, &tok) in tokens.iter().enumerate().skip(2) {
        resumed_logits = model.forward(tok, pos, &mut cache, &mut kernel);
    }

    assert_eq!(cache, uninterrupted, "re-prefill must rebuild the cache");
    assert_eq!(
        &resumed_logits,
        full_logits.last().unwrap(),
        "resumed generation must match the uninterrupted run"
    );
}
