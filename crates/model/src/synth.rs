//! Synthetic attention workloads with realistic score distributions.
//!
//! We do not have the paper's pretrained models; what drives every access
//! experiment is the *distribution of attention scores*, so this module
//! generates (query, keys, values) triples whose scores follow a controlled
//! profile:
//!
//! * **Locality** (Fig. 4a): recent tokens receive an exponentially decaying
//!   recency boost; the first token (attention sink) receives its own boost.
//! * **Heavy-tailed background**: remaining tokens draw Gaussian scores whose
//!   spread varies *per instance* (Fig. 3: in one instance 4.6% of tokens are
//!   dominant, in another 23.5%).
//!
//! Keys are constructed so the quantized dot products hit the target scores
//! exactly up to quantization error: `k_i = r_i + ((s_i·√d − q·r_i)/‖q‖²)·q`
//! for a random residual `r_i ⊥`-ish to `q`.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use topick_core::Rows;

use crate::rng::{normal_vec, standard_normal};
use crate::tensor::dot;

/// Parameters of the synthetic score profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProfile {
    /// Context length (number of cached tokens).
    pub context_len: usize,
    /// Head dimension.
    pub dim: usize,
    /// Mean of the background score distribution (nats).
    pub score_mean: f64,
    /// Standard deviation of background scores. Larger spread ⇒ fewer
    /// dominant tokens after softmax (paper Fig. 3).
    pub score_std: f64,
    /// Additive boost for the most recent tokens.
    pub locality_strength: f64,
    /// Exponential decay length (tokens) of the recency boost.
    pub locality_decay: f64,
    /// Additive boost for the first token (attention sink).
    pub sink_strength: f64,
}

impl SynthProfile {
    /// A profile matching measured LLM attention at a given context length:
    /// noticeable recency locality, a strong sink, and a background spread
    /// that leaves a few percent of tokens dominant.
    #[must_use]
    pub fn realistic(context_len: usize, dim: usize) -> Self {
        Self {
            context_len,
            dim,
            score_mean: 0.0,
            score_std: 2.5,
            locality_strength: 4.0,
            locality_decay: 8.0,
            sink_strength: 3.0,
        }
    }

    /// A profile with a *wide* score spread — few dominant tokens
    /// (instance A in Fig. 3).
    #[must_use]
    pub fn wide_spread(context_len: usize, dim: usize) -> Self {
        Self {
            score_std: 3.5,
            ..Self::realistic(context_len, dim)
        }
    }

    /// A profile with a *narrow* score spread — many dominant tokens
    /// (instance B in Fig. 3).
    #[must_use]
    pub fn narrow_spread(context_len: usize, dim: usize) -> Self {
        Self {
            score_std: 1.2,
            locality_strength: 2.0,
            sink_strength: 1.5,
            ..Self::realistic(context_len, dim)
        }
    }

    /// Samples a raw score vector only (no key construction) — enough for
    /// access simulators that consume scores directly, such as the SpAtten
    /// cascade model.
    #[must_use]
    pub fn sample_scores(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C0E_5EED);
        (0..self.context_len)
            .map(|i| self.deterministic_boost(i) + self.score_std * standard_normal(&mut rng))
            .collect()
    }

    /// Target score for token `i` of `n` before the Gaussian term.
    #[must_use]
    pub fn deterministic_boost(&self, i: usize) -> f64 {
        let n = self.context_len;
        let recency = (n - 1 - i) as f64;
        let mut s =
            self.score_mean + self.locality_strength * (-recency / self.locality_decay).exp();
        if i == 0 {
            s += self.sink_strength;
        }
        s
    }
}

/// One synthetic attention instance: a query, keys and values realizing a
/// target score vector.
///
/// Keys and values are stored contiguous row-major and exposed through
/// zero-copy [`Rows`] views, matching the layout the attention data path
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthInstance {
    /// The query vector (head dimension).
    pub query: Vec<f32>,
    /// Key rows, `n × dim` row-major.
    keys: Vec<f32>,
    /// Value rows, `n × dim` row-major.
    values: Vec<f32>,
    dim: usize,
    /// The scores the construction targeted (after `1/sqrt(d)` scaling).
    pub target_scores: Vec<f64>,
}

impl SynthInstance {
    /// Generates one instance from a profile and seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile has a zero context length or dimension.
    #[must_use]
    pub fn generate(profile: &SynthProfile, seed: u64) -> Self {
        assert!(profile.context_len > 0, "context_len must be positive");
        assert!(profile.dim > 0, "dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = profile.context_len;
        let d = profile.dim;
        let sqrt_d = (d as f64).sqrt();

        let query = normal_vec(&mut rng, d, 1.0);
        let q_norm2 = f64::from(dot(&query, &query)).max(1e-9);

        let mut target_scores = Vec::with_capacity(n);
        for i in 0..n {
            let z = standard_normal(&mut rng);
            target_scores.push(profile.deterministic_boost(i) + profile.score_std * z);
        }

        let mut keys = Vec::with_capacity(n * d);
        for &s in &target_scores {
            // Residual with small norm so the projection dominates.
            let r = normal_vec(&mut rng, d, 0.3);
            let qr = f64::from(dot(&query, &r));
            let alpha = (s * sqrt_d - qr) / q_norm2;
            keys.extend(
                r.iter()
                    .zip(&query)
                    .map(|(&ri, &qi)| ri + (alpha as f32) * qi),
            );
        }
        let values = normal_vec(&mut rng, n * d, 1.0);
        Self {
            query,
            keys,
            values,
            dim: d,
            target_scores,
        }
    }

    /// Number of cached tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.target_scores.len()
    }

    /// Whether the instance holds no tokens (never true: generation
    /// requires a positive context length).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.target_scores.is_empty()
    }

    /// Head dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Key rows as a zero-copy row-major view.
    #[must_use]
    pub fn keys(&self) -> Rows<'_> {
        Rows::new(&self.keys, self.dim)
    }

    /// Value rows as a zero-copy row-major view.
    #[must_use]
    pub fn values(&self) -> Rows<'_> {
        Rows::new(&self.values, self.dim)
    }

    /// One key row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn key_row(&self, i: usize) -> &[f32] {
        self.keys().row(i)
    }

    /// One value row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn value_row(&self, i: usize) -> &[f32] {
        self.values().row(i)
    }

    /// Consumes the instance, returning the flat value buffer.
    #[must_use]
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// The realized (float, pre-quantization) scores `q·k_i / sqrt(d)`.
    #[must_use]
    pub fn realized_scores(&self) -> Vec<f64> {
        let sqrt_d = (self.query.len() as f64).sqrt();
        self.keys()
            .iter()
            .map(|k| f64::from(dot(&self.query, k)) / sqrt_d)
            .collect()
    }

    /// Softmax probabilities of the realized scores.
    #[must_use]
    pub fn exact_probabilities(&self) -> Vec<f64> {
        topick_core::softmax(&self.realized_scores())
    }

    /// Number of tokens whose exact probability exceeds `threshold`
    /// (the "dominant token" count of Fig. 3).
    #[must_use]
    pub fn dominant_tokens(&self, threshold: f64) -> usize {
        self.exact_probabilities()
            .iter()
            .filter(|&&p| p > threshold)
            .count()
    }
}

/// Samples instance profiles with per-instance spread variability, modeling
/// the population of (layer, head, query) combinations in a real model.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSampler {
    /// Base profile; `score_std` is re-drawn per instance.
    pub base: SynthProfile,
    /// Range of per-instance score standard deviations.
    pub std_range: (f64, f64),
}

impl InstanceSampler {
    /// A sampler covering the paper's observed variability (4.6%–23.5%
    /// dominant tokens at context 1024).
    #[must_use]
    pub fn realistic(context_len: usize, dim: usize) -> Self {
        Self {
            base: SynthProfile::realistic(context_len, dim),
            std_range: (1.2, 3.6),
        }
    }

    /// Draws one instance.
    ///
    /// The spread is biased toward the wide (peaky-softmax) end: measured
    /// LLM attention has mostly concentrated heads with an occasional flat
    /// one, which is what makes the paper's 12.1× average V pruning
    /// coexist with Fig. 3's 23.5% worst case.
    #[must_use]
    pub fn sample(&self, seed: u64) -> SynthInstance {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
        let (lo, hi) = self.std_range;
        let std = lo + (hi - lo) * rng.gen::<f64>().powf(0.45);
        let profile = SynthProfile {
            score_std: std,
            ..self.base.clone()
        };
        SynthInstance::generate(&profile, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realized_scores_match_targets() {
        let p = SynthProfile::realistic(128, 64);
        let inst = SynthInstance::generate(&p, 11);
        let realized = inst.realized_scores();
        for (t, r) in inst.target_scores.iter().zip(&realized) {
            assert!((t - r).abs() < 1e-3, "target {t} vs realized {r}");
        }
    }

    #[test]
    fn locality_boost_shapes_probabilities() {
        let p = SynthProfile {
            score_std: 0.0, // isolate the deterministic part
            ..SynthProfile::realistic(64, 32)
        };
        let inst = SynthInstance::generate(&p, 5);
        let probs = inst.exact_probabilities();
        // Most recent token and the sink should dominate the middle.
        let mid = probs[30];
        assert!(probs[63] > mid);
        assert!(probs[0] > mid);
    }

    #[test]
    fn spread_controls_dominant_count() {
        let n = 1024;
        let wide = SynthInstance::generate(&SynthProfile::wide_spread(n, 64), 1);
        let narrow = SynthInstance::generate(&SynthProfile::narrow_spread(n, 64), 1);
        let dw = wide.dominant_tokens(1e-3);
        let dn = narrow.dominant_tokens(1e-3);
        assert!(
            dw < dn,
            "wide spread should have fewer dominant tokens: {dw} vs {dn}"
        );
        // Paper's Fig. 3 band: instance A 4.6%, instance B 23.5%.
        assert!(
            (dw as f64) / (n as f64) < 0.12,
            "wide frac {}",
            dw as f64 / n as f64
        );
        assert!(
            (dn as f64) / (n as f64) > 0.10,
            "narrow frac {}",
            dn as f64 / n as f64
        );
    }

    #[test]
    fn sampler_produces_varied_instances() {
        let s = InstanceSampler::realistic(512, 64);
        let counts: Vec<usize> = (0..8).map(|i| s.sample(i).dominant_tokens(1e-3)).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "sampler produced identical dominant counts");
    }

    #[test]
    fn deterministic_generation() {
        let p = SynthProfile::realistic(32, 16);
        assert_eq!(
            SynthInstance::generate(&p, 9),
            SynthInstance::generate(&p, 9)
        );
    }
}
