//! Per-layer, per-head key/value caches for autoregressive generation
//! (paper §2.1.2: "KV caching").
//!
//! Storage is contiguous row-major; attention backends read it zero-copy
//! through [`KvView`] / [`Rows`] instead of materializing per-row clones.

use topick_core::Rows;

/// A borrowed, zero-copy view of one head's cache: the key and value
/// buffers an [`AttentionBackend`](crate::AttentionBackend) consumes.
///
/// Fields are private so every `KvView` goes through [`KvView::new`] (or
/// [`HeadCache::view`]) and the keys/values shape agreement can never be
/// violated by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvView<'a> {
    keys: Rows<'a>,
    values: Rows<'a>,
}

impl<'a> KvView<'a> {
    /// Builds a view over two parallel row-major buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers disagree in shape.
    #[must_use]
    pub fn new(keys: Rows<'a>, values: Rows<'a>) -> Self {
        assert_eq!(keys.dim(), values.dim(), "key/value dimension mismatch");
        assert_eq!(
            keys.num_rows(),
            values.num_rows(),
            "key/value length mismatch"
        );
        Self { keys, values }
    }

    /// Number of cached tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.num_rows()
    }

    /// Whether the view holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Head dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.keys.dim()
    }

    /// Key rows, `len × dim` row-major.
    #[must_use]
    pub fn keys(&self) -> Rows<'a> {
        self.keys
    }

    /// Value rows, `len × dim` row-major.
    #[must_use]
    pub fn values(&self) -> Rows<'a> {
        self.values
    }
}

/// The KV cache of one attention head: `len` rows of dimension `dim`,
/// stored row-major. Rows append one per generated token;
/// [`truncate`](Self::truncate) drops a suffix, the storage-level half of
/// paged KV retention across preemptions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeadCache {
    keys: Vec<f32>,
    values: Vec<f32>,
    dim: usize,
    len: usize,
}

impl HeadCache {
    /// An empty cache for head dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            keys: Vec::new(),
            values: Vec::new(),
            dim,
            len: 0,
        }
    }

    /// Appends one token's key and value rows.
    ///
    /// # Panics
    ///
    /// Panics if either row length differs from `dim`.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "key row dimension mismatch");
        assert_eq!(value.len(), self.dim, "value row dimension mismatch");
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
        self.len += 1;
    }

    /// Drops every cached token beyond the first `len`, keeping the
    /// prefix — the storage operation behind partial KV retention across
    /// preemptions: the serving layer's pager decides *how many* tokens
    /// of a victim's prefix survive, and this makes the retained prefix
    /// real by discarding the dropped rows. A `len` at or beyond the
    /// current length is a no-op. Re-pushing the dropped tokens
    /// reconstructs the original cache exactly (appends are
    /// deterministic), which is what re-prefill models.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.keys.truncate(len * self.dim);
        self.values.truncate(len * self.dim);
        self.len = len;
    }

    /// Number of cached tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Head dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Key row of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn key_row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "token {i} out of range");
        &self.keys[i * self.dim..(i + 1) * self.dim]
    }

    /// Value row of token `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn value_row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "token {i} out of range");
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// All key rows as a zero-copy row-major view.
    #[must_use]
    pub fn keys(&self) -> Rows<'_> {
        Rows::new(&self.keys, self.dim)
    }

    /// All value rows as a zero-copy row-major view.
    #[must_use]
    pub fn values(&self) -> Rows<'_> {
        Rows::new(&self.values, self.dim)
    }

    /// The whole cache as a borrowed [`KvView`].
    #[must_use]
    pub fn view(&self) -> KvView<'_> {
        KvView {
            keys: self.keys(),
            values: self.values(),
        }
    }
}

/// KV caches for every layer and head of a model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KvCache {
    layers: Vec<Vec<HeadCache>>,
}

impl KvCache {
    /// An empty cache for `n_layers` layers of `n_heads` heads with head
    /// dimension `head_dim`.
    #[must_use]
    pub fn new(n_layers: usize, n_heads: usize, head_dim: usize) -> Self {
        Self {
            layers: (0..n_layers)
                .map(|_| (0..n_heads).map(|_| HeadCache::new(head_dim)).collect())
                .collect(),
        }
    }

    /// Mutable access to one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn head_mut(&mut self, layer: usize, head: usize) -> &mut HeadCache {
        &mut self.layers[layer][head]
    }

    /// Shared access to one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn head(&self, layer: usize, head: usize) -> &HeadCache {
        &self.layers[layer][head]
    }

    /// Truncates every head of every layer to at most `len` tokens —
    /// the model-wide form of [`HeadCache::truncate`], used when a
    /// preempted request's retained KV prefix is shorter than its
    /// context.
    pub fn truncate(&mut self, len: usize) {
        for layer in &mut self.layers {
            for head in layer {
                head.truncate(len);
            }
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Context length currently cached (tokens in layer 0, head 0).
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.layers
            .first()
            .and_then(|l| l.first())
            .map_or(0, HeadCache::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut c = HeadCache::new(2);
        c.push(&[1.0, 2.0], &[3.0, 4.0]);
        c.push(&[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.key_row(1), &[5.0, 6.0]);
        assert_eq!(c.value_row(0), &[3.0, 4.0]);
        assert_eq!(c.keys().num_rows(), 2);
        assert_eq!(c.keys().data(), &[1.0, 2.0, 5.0, 6.0]);
        let view = c.view();
        assert_eq!(view.len(), 2);
        assert_eq!(view.dim(), 2);
        assert_eq!(view.values().row(1), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dim() {
        let mut c = HeadCache::new(2);
        c.push(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn truncate_keeps_the_prefix_and_repush_restores() {
        let rows: Vec<([f32; 2], [f32; 2])> = (0..4)
            .map(|i| ([i as f32, i as f32 + 0.5], [-(i as f32), i as f32 * 2.0]))
            .collect();
        let mut full = HeadCache::new(2);
        for (k, v) in &rows {
            full.push(k, v);
        }
        let mut truncated = full.clone();
        truncated.truncate(2);
        assert_eq!(truncated.len(), 2);
        assert_eq!(truncated.key_row(1), full.key_row(1));
        assert_eq!(truncated.keys().data().len(), 4);
        // Re-prefilling the dropped suffix reconstructs the cache exactly.
        for (k, v) in &rows[2..] {
            truncated.push(k, v);
        }
        assert_eq!(truncated, full);
        // At-or-beyond lengths are no-ops.
        truncated.truncate(4);
        truncated.truncate(100);
        assert_eq!(truncated, full);
    }

    #[test]
    fn full_cache_truncate_applies_to_every_head() {
        let mut c = KvCache::new(2, 2, 3);
        for _ in 0..3 {
            for layer in 0..2 {
                for head in 0..2 {
                    c.head_mut(layer, head).push(&[1.0; 3], &[2.0; 3]);
                }
            }
        }
        assert_eq!(c.context_len(), 3);
        c.truncate(1);
        assert_eq!(c.context_len(), 1);
        assert_eq!(c.head(1, 1).len(), 1);
    }

    #[test]
    fn full_cache_layout() {
        let mut c = KvCache::new(2, 3, 4);
        assert_eq!(c.num_layers(), 2);
        assert_eq!(c.context_len(), 0);
        c.head_mut(0, 0).push(&[0.0; 4], &[0.0; 4]);
        assert_eq!(c.context_len(), 1);
        assert_eq!(c.head(1, 2).len(), 0);
    }
}
