//! Attention backends: exact reference, Token-Picker pruned, and oracle
//! pruned — all pluggable into the transformer forward pass through the
//! unified [`AttentionBackend`] trait.
//!
//! A backend consumes the KV cache through a borrowed [`KvView`] — two
//! contiguous row-major buffers — so no backend ever clones cache rows.
//! Backends that quantize per call keep their scratch (the recycled key
//! code buffer and the pruner's working memory) alive across calls, making
//! a generation step allocation-light.

use std::fmt;

use topick_core::{
    exact_probabilities, softmax, weighted_value_sum, OraclePruner, PrecisionConfig,
    ProgressivePruner, PruneOutcome, PruneStats, PrunerConfig, PrunerScratch, QMatrix, QVector,
    QuantBuffer,
};

use crate::kvcache::KvView;
use crate::tensor::dot;

/// A per-head attention computation over a query and a borrowed KV view.
///
/// This is the single entry point every attention implementation in the
/// workspace plugs into: the functional kernels here, SpAtten's top-k
/// baseline, and the cycle-level accelerator simulator.
///
/// Backends accumulate access statistics internally so a whole generation
/// run can be audited afterwards via [`AttentionBackend::accumulated_stats`].
pub trait AttentionBackend: fmt::Debug {
    /// Computes the attention output `o = Σ p_i v_i` for one head.
    ///
    /// `q` has the head dimension; `kv` supplies the cached keys and
    /// values zero-copy.
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32>;

    /// Access statistics accumulated across all `attend` calls, if the
    /// backend tracks them.
    fn accumulated_stats(&self) -> Option<&PruneStats> {
        None
    }

    /// Resets accumulated statistics.
    fn reset_stats(&mut self) {}
}

/// Exact full-precision attention (the functional reference).
#[derive(Debug, Clone, Default)]
pub struct ExactAttention;

impl ExactAttention {
    /// Creates the exact backend.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl AttentionBackend for ExactAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        assert!(!kv.is_empty(), "attention over empty cache");
        let scale = 1.0 / (kv.dim() as f32).sqrt();
        let scores: Vec<f64> = kv
            .keys()
            .iter()
            .map(|k| f64::from(dot(q, k) * scale))
            .collect();
        let probs = softmax(&scores);
        let mut out = vec![0.0f32; kv.dim()];
        for (&p, v) in probs.iter().zip(kv.values().iter()) {
            for (o, &vv) in out.iter_mut().zip(v) {
                *o += p as f32 * vv;
            }
        }
        out
    }
}

/// Scratch buffers shared by the quantizing backends: the recycled key-code
/// allocation and the pruner's working memory.
#[derive(Debug, Clone, Default)]
struct QuantScratch {
    keys: QuantBuffer,
    pruner: PrunerScratch,
}

impl QuantScratch {
    /// Quantizes the view's keys, reusing the recycled code buffer.
    fn quantize_keys(&mut self, kv: KvView<'_>, pc: PrecisionConfig) -> QMatrix {
        self.keys
            .quantize(kv.keys().data(), kv.dim(), pc)
            .expect("non-empty cache")
    }

    /// Returns a matrix's code buffer to the scratch pool and produces the
    /// weighted-value output for `outcome` over the view's values.
    fn finish(&mut self, keys: QMatrix, outcome: &PruneOutcome, kv: KvView<'_>) -> Vec<f32> {
        self.keys.reclaim(keys);
        weighted_value_sum(&outcome.probability_pairs(), kv.values())
    }
}

/// Exact attention over *quantized* Q/K/V — isolates quantization error
/// from pruning error when validating Token-Picker.
#[derive(Debug, Clone)]
pub struct QuantizedExactAttention {
    precision: PrecisionConfig,
    scratch: QuantScratch,
}

impl QuantizedExactAttention {
    /// Creates the quantized-exact backend.
    #[must_use]
    pub fn new(precision: PrecisionConfig) -> Self {
        Self {
            precision,
            scratch: QuantScratch::default(),
        }
    }
}

impl AttentionBackend for QuantizedExactAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        let qv = QVector::quantize(q, self.precision);
        let keys = self.scratch.quantize_keys(kv, self.precision);
        let probs = exact_probabilities(&qv, &keys);
        self.scratch.keys.reclaim(keys);
        let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
        weighted_value_sum(&pairs, kv.values())
    }
}

/// Token-Picker pruned attention: quantizes the query and cached keys, runs
/// the progressive pruner, and computes the output over survivors only.
#[derive(Debug, Clone)]
pub struct TokenPickerAttention {
    pruner: ProgressivePruner,
    stats: PruneStats,
    scratch: QuantScratch,
}

impl TokenPickerAttention {
    /// Creates a Token-Picker backend from a pruner configuration.
    #[must_use]
    pub fn new(cfg: PrunerConfig) -> Self {
        let num_chunks = cfg.precision().num_chunks();
        Self {
            pruner: ProgressivePruner::new(cfg),
            stats: PruneStats::new(0, num_chunks),
            scratch: QuantScratch::default(),
        }
    }

    /// The underlying pruner configuration.
    #[must_use]
    pub fn config(&self) -> &PrunerConfig {
        self.pruner.config()
    }
}

impl AttentionBackend for TokenPickerAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        let pc = self.pruner.config().precision();
        let qv = QVector::quantize(q, pc);
        let keys = self.scratch.quantize_keys(kv, pc);
        let outcome = self
            .pruner
            .run_with_scratch(&qv, &keys, &mut self.scratch.pruner)
            .expect("validated dims");
        self.stats.merge(&outcome.stats);
        self.scratch.finish(keys, &outcome, kv)
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats = PruneStats::new(0, self.pruner.config().precision().num_chunks());
    }
}

/// Oracle pruned attention: computes all exact scores, then drops tokens
/// with true probability below the threshold (full K traffic, minimal V
/// traffic). Models the estimation-only "ToPick-V" configuration.
#[derive(Debug, Clone)]
pub struct OracleAttention {
    pruner: OraclePruner,
    precision: PrecisionConfig,
    stats: PruneStats,
    scratch: QuantScratch,
}

impl OracleAttention {
    /// Creates an oracle backend with probability threshold `thr`.
    ///
    /// # Errors
    ///
    /// Returns [`topick_core::CoreError::InvalidThreshold`] if `thr` is not
    /// in `(0, 1)`.
    pub fn new(threshold: f64, precision: PrecisionConfig) -> Result<Self, topick_core::CoreError> {
        Ok(Self {
            pruner: OraclePruner::new(threshold)?,
            precision,
            stats: PruneStats::new(0, precision.num_chunks()),
            scratch: QuantScratch::default(),
        })
    }
}

impl AttentionBackend for OracleAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        let qv = QVector::quantize(q, self.precision);
        let keys = self.scratch.quantize_keys(kv, self.precision);
        let outcome = self.pruner.run(&qv, &keys).expect("validated dims");
        self.stats.merge(&outcome.stats);
        self.scratch.finish(keys, &outcome, kv)
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats = PruneStats::new(0, self.precision.num_chunks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::kvcache::HeadCache;
    use crate::rng::normal_vec;

    fn random_cache(n: usize, dim: usize, seed: u64) -> (Vec<f32>, HeadCache) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = normal_vec(&mut rng, dim, 1.0);
        let mut cache = HeadCache::new(dim);
        for _ in 0..n {
            let k = normal_vec(&mut rng, dim, 1.0);
            let v = normal_vec(&mut rng, dim, 1.0);
            cache.push(&k, &v);
        }
        (q, cache)
    }

    #[test]
    fn exact_and_quantized_agree_closely() {
        let (q, cache) = random_cache(32, 16, 1);
        let a = ExactAttention::new().attend(&q, cache.view());
        let b = QuantizedExactAttention::new(PrecisionConfig::paper()).attend(&q, cache.view());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn token_picker_matches_exact_within_threshold_error() {
        let (q, cache) = random_cache(64, 16, 2);
        let mut exact = ExactAttention::new();
        let cfg = PrunerConfig::new(1e-4).unwrap();
        let mut tp = TokenPickerAttention::new(cfg);
        let a = exact.attend(&q, cache.view());
        let b = tp.attend(&q, cache.view());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.1, "{x} vs {y}");
        }
        let stats = tp.accumulated_stats().unwrap();
        assert_eq!(stats.tokens, 64);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let (q, cache) = random_cache(16, 8, 3);
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-3).unwrap());
        tp.attend(&q, cache.view());
        tp.attend(&q, cache.view());
        assert_eq!(tp.accumulated_stats().unwrap().tokens, 32);
        tp.reset_stats();
        assert_eq!(tp.accumulated_stats().unwrap().tokens, 0);
    }

    #[test]
    fn scratch_reuse_is_transparent_across_growing_caches() {
        // One backend instance driven over caches of different lengths must
        // agree with a fresh backend at every step (buffer reuse must never
        // leak state between calls).
        let cfg = PrunerConfig::new(1e-3).unwrap();
        let mut reused = TokenPickerAttention::new(cfg);
        for n in [8usize, 64, 16] {
            let (q, cache) = random_cache(n, 16, n as u64);
            let mut fresh = TokenPickerAttention::new(cfg);
            assert_eq!(
                reused.attend(&q, cache.view()),
                fresh.attend(&q, cache.view()),
                "divergence at n={n}"
            );
        }
    }

    #[test]
    fn oracle_keeps_fewer_or_equal_tokens() {
        let (q, cache) = random_cache(64, 16, 4);
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-3).unwrap());
        let mut or = OracleAttention::new(1e-3, PrecisionConfig::paper()).unwrap();
        tp.attend(&q, cache.view());
        or.attend(&q, cache.view());
        assert!(or.accumulated_stats().unwrap().kept <= tp.accumulated_stats().unwrap().kept);
    }
}
