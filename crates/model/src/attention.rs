//! Attention kernels: exact reference, Token-Picker pruned, and oracle
//! pruned — all pluggable into the transformer forward pass.

use std::fmt;

use topick_core::{
    exact_probabilities, softmax, weighted_value_sum, OraclePruner, PrecisionConfig,
    ProgressivePruner, PruneStats, PrunerConfig, QMatrix, QVector,
};

use crate::kvcache::HeadCache;
use crate::tensor::dot;

/// A per-head attention computation over a query and a head's KV cache.
///
/// Kernels accumulate access statistics internally so a whole generation run
/// can be audited afterwards via [`AttentionKernel::accumulated_stats`].
pub trait AttentionKernel: fmt::Debug {
    /// Computes the attention output `o = Σ p_i v_i` for one head.
    ///
    /// `q` has the head dimension; the cache supplies keys and values.
    fn attend(&mut self, q: &[f32], cache: &HeadCache) -> Vec<f32>;

    /// Access statistics accumulated across all `attend` calls, if the
    /// kernel tracks them.
    fn accumulated_stats(&self) -> Option<&PruneStats> {
        None
    }

    /// Resets accumulated statistics.
    fn reset_stats(&mut self) {}
}

/// Exact full-precision attention (the functional reference).
#[derive(Debug, Clone, Default)]
pub struct ExactAttention;

impl ExactAttention {
    /// Creates the exact kernel.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl AttentionKernel for ExactAttention {
    fn attend(&mut self, q: &[f32], cache: &HeadCache) -> Vec<f32> {
        let n = cache.len();
        assert!(n > 0, "attention over empty cache");
        let scale = 1.0 / (cache.dim() as f32).sqrt();
        let scores: Vec<f64> = (0..n)
            .map(|i| f64::from(dot(q, cache.key_row(i)) * scale))
            .collect();
        let probs = softmax(&scores);
        let mut out = vec![0.0f32; cache.dim()];
        for (i, &p) in probs.iter().enumerate() {
            let v = cache.value_row(i);
            for (o, &vv) in out.iter_mut().zip(v) {
                *o += p as f32 * vv;
            }
        }
        out
    }
}

/// Exact attention over *quantized* Q/K/V — isolates quantization error
/// from pruning error when validating Token-Picker.
#[derive(Debug, Clone)]
pub struct QuantizedExactAttention {
    precision: PrecisionConfig,
}

impl QuantizedExactAttention {
    /// Creates the quantized-exact kernel.
    #[must_use]
    pub fn new(precision: PrecisionConfig) -> Self {
        Self { precision }
    }
}

impl AttentionKernel for QuantizedExactAttention {
    fn attend(&mut self, q: &[f32], cache: &HeadCache) -> Vec<f32> {
        let qv = QVector::quantize(q, self.precision);
        let keys =
            QMatrix::quantize_rows(&cache.key_rows(), self.precision).expect("non-empty cache");
        let probs = exact_probabilities(&qv, &keys);
        let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
        weighted_value_sum(&pairs, &cache.value_rows())
    }
}

/// Token-Picker pruned attention: quantizes the query and cached keys, runs
/// the progressive pruner, and computes the output over survivors only.
#[derive(Debug, Clone)]
pub struct TokenPickerAttention {
    pruner: ProgressivePruner,
    stats: PruneStats,
}

impl TokenPickerAttention {
    /// Creates a Token-Picker kernel from a pruner configuration.
    #[must_use]
    pub fn new(cfg: PrunerConfig) -> Self {
        let num_chunks = cfg.precision().num_chunks();
        Self {
            pruner: ProgressivePruner::new(cfg),
            stats: PruneStats::new(0, num_chunks),
        }
    }

    /// The underlying pruner configuration.
    #[must_use]
    pub fn config(&self) -> &PrunerConfig {
        self.pruner.config()
    }
}

impl AttentionKernel for TokenPickerAttention {
    fn attend(&mut self, q: &[f32], cache: &HeadCache) -> Vec<f32> {
        let pc = self.pruner.config().precision();
        let qv = QVector::quantize(q, pc);
        let keys = QMatrix::quantize_rows(&cache.key_rows(), pc).expect("non-empty cache");
        let outcome = self.pruner.run(&qv, &keys).expect("validated dims");
        self.stats.merge(&outcome.stats);
        weighted_value_sum(&outcome.probability_pairs(), &cache.value_rows())
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats = PruneStats::new(0, self.pruner.config().precision().num_chunks());
    }
}

/// Oracle pruned attention: computes all exact scores, then drops tokens
/// with true probability below the threshold (full K traffic, minimal V
/// traffic). Models the estimation-only "ToPick-V" configuration.
#[derive(Debug, Clone)]
pub struct OracleAttention {
    pruner: OraclePruner,
    precision: PrecisionConfig,
    stats: PruneStats,
}

impl OracleAttention {
    /// Creates an oracle kernel with probability threshold `thr`.
    ///
    /// # Errors
    ///
    /// Returns [`topick_core::CoreError::InvalidThreshold`] if `thr` is not
    /// in `(0, 1)`.
    pub fn new(threshold: f64, precision: PrecisionConfig) -> Result<Self, topick_core::CoreError> {
        Ok(Self {
            pruner: OraclePruner::new(threshold)?,
            precision,
            stats: PruneStats::new(0, precision.num_chunks()),
        })
    }
}

impl AttentionKernel for OracleAttention {
    fn attend(&mut self, q: &[f32], cache: &HeadCache) -> Vec<f32> {
        let qv = QVector::quantize(q, self.precision);
        let keys =
            QMatrix::quantize_rows(&cache.key_rows(), self.precision).expect("non-empty cache");
        let outcome = self.pruner.run(&qv, &keys).expect("validated dims");
        self.stats.merge(&outcome.stats);
        weighted_value_sum(&outcome.probability_pairs(), &cache.value_rows())
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats = PruneStats::new(0, self.precision.num_chunks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::rng::normal_vec;

    fn random_cache(n: usize, dim: usize, seed: u64) -> (Vec<f32>, HeadCache) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = normal_vec(&mut rng, dim, 1.0);
        let mut cache = HeadCache::new(dim);
        for _ in 0..n {
            let k = normal_vec(&mut rng, dim, 1.0);
            let v = normal_vec(&mut rng, dim, 1.0);
            cache.push(&k, &v);
        }
        (q, cache)
    }

    #[test]
    fn exact_and_quantized_agree_closely() {
        let (q, cache) = random_cache(32, 16, 1);
        let a = ExactAttention::new().attend(&q, &cache);
        let b = QuantizedExactAttention::new(PrecisionConfig::paper()).attend(&q, &cache);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.05, "{x} vs {y}");
        }
    }

    #[test]
    fn token_picker_matches_exact_within_threshold_error() {
        let (q, cache) = random_cache(64, 16, 2);
        let mut exact = ExactAttention::new();
        let cfg = PrunerConfig::new(1e-4).unwrap();
        let mut tp = TokenPickerAttention::new(cfg);
        let a = exact.attend(&q, &cache);
        let b = tp.attend(&q, &cache);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.1, "{x} vs {y}");
        }
        let stats = tp.accumulated_stats().unwrap();
        assert_eq!(stats.tokens, 64);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let (q, cache) = random_cache(16, 8, 3);
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-3).unwrap());
        tp.attend(&q, &cache);
        tp.attend(&q, &cache);
        assert_eq!(tp.accumulated_stats().unwrap().tokens, 32);
        tp.reset_stats();
        assert_eq!(tp.accumulated_stats().unwrap().tokens, 0);
    }

    #[test]
    fn oracle_keeps_fewer_or_equal_tokens() {
        let (q, cache) = random_cache(64, 16, 4);
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-3).unwrap());
        let mut or = OracleAttention::new(1e-3, PrecisionConfig::paper()).unwrap();
        tp.attend(&q, &cache);
        or.attend(&q, &cache);
        assert!(or.accumulated_stats().unwrap().kept <= tp.accumulated_stats().unwrap().kept);
    }
}
