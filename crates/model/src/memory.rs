//! Analytic off-chip memory-traffic model for the generation phase —
//! reproduces the paper's Fig. 2 breakdown.
//!
//! Per generation step with batch size `B` and per-request context `S`:
//!
//! * pretrained weights are read once (shared across the batch),
//! * the word-embedding table is read once,
//! * each request streams its own `S` tokens of KV cache.
//!
//! As `B` grows the KV share explodes (7.8% at B=1 → 84.3% at B=64 in the
//! paper), which is the motivation for minimizing KV transfer.

use crate::specs::ModelSpec;

/// Off-chip traffic of one generation step, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// KV-cache bytes (scales with batch × context).
    pub kv_bytes: u64,
    /// Pretrained weight bytes (read once per step).
    pub weight_bytes: u64,
    /// Word-embedding bytes (read once per step).
    pub embedding_bytes: u64,
}

impl TrafficBreakdown {
    /// Computes the breakdown for `batch` requests each attending over
    /// `context` tokens.
    #[must_use]
    pub fn compute(spec: &ModelSpec, batch: usize, context: usize) -> Self {
        Self {
            kv_bytes: spec.kv_bytes_per_token() * batch as u64 * context as u64,
            weight_bytes: spec.weight_bytes(),
            embedding_bytes: spec.embedding_bytes(),
        }
    }

    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.kv_bytes + self.weight_bytes + self.embedding_bytes
    }

    /// KV fraction of the total (the Fig. 2 stacked-bar share).
    #[must_use]
    pub fn kv_fraction(&self) -> f64 {
        self.kv_bytes as f64 / self.total() as f64
    }

    /// Weight fraction of the total.
    #[must_use]
    pub fn weight_fraction(&self) -> f64 {
        self.weight_bytes as f64 / self.total() as f64
    }

    /// Embedding fraction of the total.
    #[must_use]
    pub fn embedding_fraction(&self) -> f64 {
        self.embedding_bytes as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let spec = ModelSpec::gpt2_xl();
        let t = TrafficBreakdown::compute(&spec, 16, 1024);
        let sum = t.kv_fraction() + t.weight_fraction() + t.embedding_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kv_share_grows_with_batch() {
        let spec = ModelSpec::opt_6_7b();
        let shares: Vec<f64> = [1, 4, 16, 64]
            .iter()
            .map(|&b| TrafficBreakdown::compute(&spec, b, 2048).kv_fraction())
            .collect();
        for w in shares.windows(2) {
            assert!(w[0] < w[1], "KV share must grow with batch: {shares:?}");
        }
    }

    #[test]
    fn paper_fig2_anchor_points() {
        // GPT2-XL @ S=1024: KV share is small (~8%) at B=1 and dominant
        // (>80%) at B=64 — the 7.8% / 84.3% anchors of §2.2.1.
        let spec = ModelSpec::gpt2_xl();
        let b1 = TrafficBreakdown::compute(&spec, 1, 1024).kv_fraction();
        let b64 = TrafficBreakdown::compute(&spec, 64, 1024).kv_fraction();
        assert!(b1 > 0.04 && b1 < 0.15, "B=1 share {b1}");
        assert!(b64 > 0.75, "B=64 share {b64}");
    }
}
