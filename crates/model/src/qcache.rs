//! Quantize-on-append KV caching — the storage discipline the ToPick
//! hardware actually uses.
//!
//! The attention kernels in [`crate::attention`] re-quantize the float
//! cache on every call, which is simple but (a) re-derives the scale each
//! step and (b) costs O(n·d) conversion work per query. Hardware quantizes
//! each K/V row **once, when it is appended**, against a fixed per-head
//! scale, and streams the stored codes ever after. This module implements
//! that discipline and a kernel built on it.
//!
//! A fixed scale must be chosen up front (hardware calibrates it from the
//! prompt); values clamping at the rail are counted so saturation is
//! observable.

use topick_core::{
    weighted_value_sum, PrecisionConfig, ProgressivePruner, PruneStats, PrunerConfig, QMatrix,
    QVector, Rows,
};

use crate::attention::AttentionBackend;
use crate::kvcache::HeadCache;

/// A per-head KV cache storing quantized codes, with quantize-on-append.
///
/// V rows are stored as their *dequantized* reals (`v_real`, contiguous
/// row-major): they round-trip through the fixed quantization grid on
/// append — so saturation and precision loss are faithfully modeled —
/// but the weighted-value sum then reads a zero-copy [`Rows`] view
/// instead of re-dequantizing the whole cache per step, mirroring the
/// hardware's dequantizing step-1 datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedHeadCache {
    k_codes: Vec<i16>,
    v_real: Vec<f32>,
    dim: usize,
    len: usize,
    scale: f64,
    precision: PrecisionConfig,
    saturated: u64,
}

impl QuantizedHeadCache {
    /// An empty cache with a fixed quantization `scale`
    /// (`real ≈ code · scale`).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `scale` is not positive and finite.
    #[must_use]
    pub fn new(dim: usize, scale: f64, precision: PrecisionConfig) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self {
            k_codes: Vec::new(),
            v_real: Vec::new(),
            dim,
            len: 0,
            scale,
            precision,
            saturated: 0,
        }
    }

    /// Chooses a scale from calibration rows (e.g. the prompt's K/V) so the
    /// largest observed magnitude maps to the largest code, then builds the
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn calibrated(dim: usize, rows: Rows<'_>, precision: PrecisionConfig) -> Self {
        let max_abs = rows
            .data()
            .iter()
            .fold(0f64, |m, &v| m.max(f64::from(v).abs()));
        let qmax = f64::from(precision.max_value());
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        Self::new(dim, scale, precision)
    }

    /// Appends one token's K and V rows, quantizing against the fixed
    /// scale. Out-of-range values clamp and are counted.
    ///
    /// # Panics
    ///
    /// Panics if either row length differs from `dim`.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "key row dimension mismatch");
        assert_eq!(value.len(), self.dim, "value row dimension mismatch");
        let lo = f64::from(self.precision.min_value());
        let hi = f64::from(self.precision.max_value());
        let mut quantize = |v: f32, out: &mut Vec<i16>| {
            let c = (f64::from(v) / self.scale).round();
            if c < lo || c > hi {
                self.saturated += 1;
            }
            out.push(c.clamp(lo, hi) as i16);
        };
        // Split borrows: quantize into temporaries to appease the closure.
        let mut k_new = Vec::with_capacity(self.dim);
        let mut v_new = Vec::with_capacity(self.dim);
        for &v in key {
            quantize(v, &mut k_new);
        }
        for &v in value {
            quantize(v, &mut v_new);
        }
        self.k_codes.extend_from_slice(&k_new);
        self.v_real
            .extend(v_new.iter().map(|&c| (f64::from(c) * self.scale) as f32));
        self.len += 1;
    }

    /// Number of cached tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed quantization scale.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Values that clamped at the representable rail so far.
    #[must_use]
    pub fn saturated_count(&self) -> u64 {
        self.saturated
    }

    /// A [`QMatrix`] view of the stored key codes (cheap clone of codes;
    /// no re-quantization).
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    #[must_use]
    pub fn keys(&self) -> QMatrix {
        QMatrix::from_codes(self.k_codes.clone(), self.dim, self.scale, self.precision)
            .expect("non-empty cache")
    }

    /// Dequantized value rows as a zero-copy row-major view (for the
    /// weighted sum).
    #[must_use]
    pub fn values(&self) -> Rows<'_> {
        Rows::new(&self.v_real, self.dim)
    }
}

/// Token-Picker attention over a quantize-on-append cache.
///
/// Unlike [`crate::TokenPickerAttention`], this kernel maintains its own
/// [`QuantizedHeadCache`] per (layer, head) pairing is the caller's job —
/// it wraps a single head and is driven directly with float rows.
#[derive(Debug, Clone)]
pub struct QuantizedTokenPicker {
    cache: QuantizedHeadCache,
    pruner: ProgressivePruner,
    stats: PruneStats,
    scratch: topick_core::PrunerScratch,
}

impl QuantizedTokenPicker {
    /// Creates the kernel around an existing cache.
    #[must_use]
    pub fn new(cache: QuantizedHeadCache, cfg: PrunerConfig) -> Self {
        let chunks = cfg.precision().num_chunks();
        Self {
            cache,
            pruner: ProgressivePruner::new(cfg),
            stats: PruneStats::new(0, chunks),
            scratch: topick_core::PrunerScratch::new(),
        }
    }

    /// Appends a token and computes the attention output for `q` over the
    /// cache (including the new token).
    ///
    /// # Panics
    ///
    /// Panics if row dimensions mismatch the cache.
    pub fn step(&mut self, q: &[f32], key: &[f32], value: &[f32]) -> Vec<f32> {
        self.cache.push(key, value);
        let pc = self.pruner.config().precision();
        let qv = QVector::quantize(q, pc);
        let keys = self.cache.keys();
        let outcome = self
            .pruner
            .run_with_scratch(&qv, &keys, &mut self.scratch)
            .expect("validated dims");
        self.stats.merge(&outcome.stats);
        weighted_value_sum(&outcome.probability_pairs(), self.cache.values())
    }

    /// Accumulated pruning statistics.
    #[must_use]
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// The underlying cache.
    #[must_use]
    pub fn cache(&self) -> &QuantizedHeadCache {
        &self.cache
    }
}

/// Compatibility shim: evaluates the quantize-on-append pipeline against
/// the re-quantizing kernel on the same float cache, returning the maximum
/// element-wise output difference. Used by fidelity tests and available for
/// users validating the simplification.
#[must_use]
pub fn requantization_gap(
    q: &[f32],
    float_cache: &HeadCache,
    qcache: &QuantizedHeadCache,
    cfg: PrunerConfig,
) -> f32 {
    let mut requant = crate::attention::TokenPickerAttention::new(cfg);
    let a = requant.attend(q, float_cache.view());

    let pc = cfg.precision();
    let qv = QVector::quantize(q, pc);
    let keys = qcache.keys();
    let outcome = ProgressivePruner::new(cfg)
        .run(&qv, &keys)
        .expect("validated dims");
    let b = weighted_value_sum(&outcome.probability_pairs(), qcache.values());
    a.iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthInstance, SynthProfile};

    fn build_caches(
        n: usize,
        dim: usize,
        seed: u64,
    ) -> (HeadCache, QuantizedHeadCache, SynthInstance) {
        let inst = SynthInstance::generate(&SynthProfile::realistic(n, dim), seed);
        let mut float_cache = HeadCache::new(dim);
        let mut qcache = QuantizedHeadCache::calibrated(dim, inst.keys(), PrecisionConfig::paper());
        for (k, v) in inst.keys().iter().zip(inst.values().iter()) {
            float_cache.push(k, v);
            qcache.push(k, v);
        }
        (float_cache, qcache, inst)
    }

    #[test]
    fn quantize_on_append_matches_requantization() {
        let (float_cache, qcache, inst) = build_caches(96, 32, 3);
        let cfg = PrunerConfig::new(1e-3).unwrap();
        let gap = requantization_gap(&inst.query, &float_cache, &qcache, cfg);
        // Scales differ slightly (per-call max vs calibration max), so the
        // outputs differ by at most a few LSBs of V.
        assert!(gap < 0.05, "gap {gap}");
    }

    #[test]
    fn saturation_is_counted() {
        let pc = PrecisionConfig::paper();
        let mut cache = QuantizedHeadCache::new(2, 0.001, pc);
        cache.push(&[100.0, 0.0], &[0.0, 0.0]); // 100/0.001 >> 2047
        assert!(cache.saturated_count() >= 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn kernel_steps_accumulate_stats() {
        let dim = 16;
        let inst = SynthInstance::generate(&SynthProfile::realistic(8, dim), 5);
        let cache = QuantizedHeadCache::calibrated(dim, inst.keys(), PrecisionConfig::paper());
        let mut kernel = QuantizedTokenPicker::new(cache, PrunerConfig::new(1e-3).unwrap());
        for (i, (k, v)) in inst.keys().iter().zip(inst.values().iter()).enumerate() {
            let out = kernel.step(&inst.query, k, v);
            assert_eq!(out.len(), dim);
            assert_eq!(kernel.cache().len(), i + 1);
        }
        // Sum over steps of context sizes 1..=8.
        assert_eq!(kernel.stats().tokens, (1..=8).sum::<usize>());
    }

    #[test]
    fn calibrated_scale_covers_rows() {
        let rows = [2.0f32, -3.0, 0.5, 1.0];
        let view = Rows::new(&rows, 2);
        let cache = QuantizedHeadCache::calibrated(2, view, PrecisionConfig::paper());
        let mut c = cache.clone();
        for r in view.iter() {
            c.push(r, r);
        }
        assert_eq!(c.saturated_count(), 0, "calibrated scale must not clip");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn invalid_scale_rejected() {
        let _ = QuantizedHeadCache::new(4, 0.0, PrecisionConfig::paper());
    }
}
