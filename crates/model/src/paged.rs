//! Paged KV storage with copy-on-write prefix sharing — the storage-level
//! counterpart of the serving engine's refcounted `KvPager`.
//!
//! Where [`HeadCache`](crate::HeadCache) stores one sequence's rows
//! contiguously, a [`PagedKvStore`] stores rows in fixed-size **pages**
//! and lets several logical sequences ([`PagedSeq`]) map the same
//! physical pages. Forking a sequence at a prefix
//! ([`fork`](PagedKvStore::fork)) shares the pages covering that prefix
//! by reference count instead of copying them; the first append that
//! would write *into* a shared page copies it first
//! ([copy-on-write](PagedKvStore::push)), so no holder ever observes
//! another's writes. This is the mechanism that makes prefix caching
//! sound: the pager's accounting layer decides *which* pages to share,
//! and this layer proves the sharing is invisible to reads.
//!
//! The proof obligation — a forked sequence reads back exactly like an
//! independently built [`HeadCache`](crate::HeadCache) — is pinned by the
//! golden and property tests in this module and in
//! `crates/model/tests/proptests.rs`.

/// One physical page: up to `page_size` key/value rows, plus the number
/// of logical sequences currently mapping it. (A sequence's logical view
/// may end before the physically present rows: its own `len` governs
/// what it reads.)
#[derive(Debug, Clone, PartialEq, Default)]
struct Page {
    keys: Vec<f32>,
    values: Vec<f32>,
    refs: u32,
}

/// A logical KV sequence: a page table into a [`PagedKvStore`] plus the
/// sequence's own length. Cheap to fork; reads are bounds-checked against
/// the logical length, never the physical page fill.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PagedSeq {
    /// Page indices in position order: `pages[j]` holds rows
    /// `[j * page_size, (j + 1) * page_size)`.
    pages: Vec<usize>,
    len: usize,
}

impl PagedSeq {
    /// Cached tokens in this sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A paged key/value store shared by many logical sequences, with
/// copy-on-write page sharing.
///
/// # Examples
///
/// ```
/// use topick_model::paged::PagedKvStore;
///
/// let mut store = PagedKvStore::new(2, 2); // dim 2, 2 rows per page
/// let mut a = store.new_seq();
/// for i in 0..4 {
///     store.push(&mut a, &[i as f32; 2], &[i as f32 + 0.5; 2]);
/// }
///
/// // Fork at the full 2-page prefix: zero rows are copied.
/// let mut b = store.fork(&a, 4);
/// assert_eq!(store.allocated_pages(), 2);
///
/// // Divergent appends copy-on-write only what they touch.
/// store.push(&mut b, &[9.0; 2], &[9.9; 2]);
/// assert_eq!(store.key_row(&a, 1), &[1.0, 1.0]); // a is unaffected
/// assert_eq!(store.key_row(&b, 4), &[9.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PagedKvStore {
    dim: usize,
    page_size: usize,
    pages: Vec<Page>,
    free: Vec<usize>,
}

impl PagedKvStore {
    /// An empty store for head dimension `dim` and `page_size` rows per
    /// page (both clamped to at least 1).
    #[must_use]
    pub fn new(dim: usize, page_size: usize) -> Self {
        Self {
            dim: dim.max(1),
            page_size: page_size.max(1),
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Head dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows per page.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// An empty logical sequence.
    #[must_use]
    pub fn new_seq(&self) -> PagedSeq {
        PagedSeq::default()
    }

    /// Pages currently mapped by at least one sequence.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Pages currently on the free list (allocated once, now reusable).
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages mapped by more than one sequence.
    #[must_use]
    pub fn shared_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.refs > 1).count()
    }

    /// Forks `parent` at `prefix` tokens (clamped to the parent's
    /// length): the new sequence maps every page covering the prefix by
    /// reference, copying nothing. A partial tail page is shared too —
    /// the first append into it (by either holder) copies it first, so
    /// the fork is copy-on-write all the way down.
    #[must_use]
    pub fn fork(&mut self, parent: &PagedSeq, prefix: usize) -> PagedSeq {
        let prefix = prefix.min(parent.len);
        let shared_pages = prefix.div_ceil(self.page_size);
        let pages = parent.pages[..shared_pages].to_vec();
        for &p in &pages {
            self.pages[p].refs += 1;
        }
        PagedSeq { pages, len: prefix }
    }

    /// Appends one token's key and value rows to `seq`, copying the tail
    /// page first if it is shared (copy-on-write) and allocating a fresh
    /// page when the tail is full.
    ///
    /// # Panics
    ///
    /// Panics if either row's length differs from the store dimension.
    pub fn push(&mut self, seq: &mut PagedSeq, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.dim, "key row dimension mismatch");
        assert_eq!(value.len(), self.dim, "value row dimension mismatch");
        let within = seq.len % self.page_size;
        if within == 0 {
            // Tail page full (or sequence empty): open a fresh page.
            let p = self.alloc();
            seq.pages.push(p);
        } else {
            let tail = *seq.pages.last().expect("non-empty tail");
            if self.pages[tail].refs > 1 {
                // Copy-on-write: duplicate the rows this sequence can
                // see, then drop the shared mapping.
                let p = self.alloc();
                let (keys, values) = {
                    let t = &self.pages[tail];
                    (
                        t.keys[..within * self.dim].to_vec(),
                        t.values[..within * self.dim].to_vec(),
                    )
                };
                self.pages[p].keys = keys;
                self.pages[p].values = values;
                self.unref(tail);
                *seq.pages.last_mut().expect("non-empty tail") = p;
            }
        }
        let tail = *seq.pages.last().expect("tail exists");
        let page = &mut self.pages[tail];
        // A privately mapped physical page can hold rows beyond this
        // sequence's logical end (left by a truncate); drop them before
        // appending so the new row lands at the logical position.
        page.keys.truncate(within * self.dim);
        page.values.truncate(within * self.dim);
        page.keys.extend_from_slice(key);
        page.values.extend_from_slice(value);
        seq.len += 1;
    }

    /// Truncates `seq` to at most `len` tokens, unmapping every page past
    /// the new end (the storage half of paged retention). Shared pages
    /// survive for their other holders; physical rows beyond the logical
    /// end of a still-mapped tail page are left in place and overwritten
    /// by the next append.
    pub fn truncate(&mut self, seq: &mut PagedSeq, len: usize) {
        if len >= seq.len {
            return;
        }
        let keep_pages = len.div_ceil(self.page_size);
        for p in seq.pages.drain(keep_pages..) {
            self.unref(p);
        }
        seq.len = len;
    }

    /// Releases every page of `seq`, leaving it empty.
    pub fn release(&mut self, seq: &mut PagedSeq) {
        self.truncate(seq, 0);
    }

    /// Key row of token `i` of `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= seq.len()`.
    #[must_use]
    pub fn key_row(&self, seq: &PagedSeq, i: usize) -> &[f32] {
        let (page, at) = self.locate(seq, i);
        &self.pages[page].keys[at * self.dim..(at + 1) * self.dim]
    }

    /// Value row of token `i` of `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= seq.len()`.
    #[must_use]
    pub fn value_row(&self, seq: &PagedSeq, i: usize) -> &[f32] {
        let (page, at) = self.locate(seq, i);
        &self.pages[page].values[at * self.dim..(at + 1) * self.dim]
    }

    /// Gathers `seq` into contiguous row-major key and value buffers —
    /// the bridge to [`HeadCache`](crate::HeadCache)-shaped consumers
    /// (pages are not contiguous, so this copies).
    #[must_use]
    pub fn gather(&self, seq: &PagedSeq) -> (Vec<f32>, Vec<f32>) {
        let mut keys = Vec::new();
        let mut values = Vec::new();
        self.gather_into(seq, &mut keys, &mut values);
        (keys, values)
    }

    /// [`gather`](Self::gather) into caller-owned buffers, clearing them
    /// first — the allocation-free variant the per-step decode loop uses
    /// so gathering every head each step reuses one pair of scratch
    /// buffers instead of allocating per attend.
    pub fn gather_into(&self, seq: &PagedSeq, keys: &mut Vec<f32>, values: &mut Vec<f32>) {
        keys.clear();
        values.clear();
        keys.reserve(seq.len * self.dim);
        values.reserve(seq.len * self.dim);
        for i in 0..seq.len {
            keys.extend_from_slice(self.key_row(seq, i));
            values.extend_from_slice(self.value_row(seq, i));
        }
    }

    /// Checks refcount conservation: every page's refcount equals the
    /// number of mappings across `live`, free pages have refcount 0 and
    /// no page is both free and mapped. Panics on the first violation —
    /// the oracle the property tests drive.
    pub fn validate(&self, live: &[&PagedSeq]) {
        let mut mappings = vec![0u32; self.pages.len()];
        for seq in live {
            assert!(
                seq.pages.len() == seq.len.div_ceil(self.page_size),
                "sequence of {} tokens maps {} pages",
                seq.len,
                seq.pages.len()
            );
            for &p in &seq.pages {
                mappings[p] += 1;
            }
        }
        for (p, page) in self.pages.iter().enumerate() {
            assert_eq!(
                page.refs, mappings[p],
                "page {p}: refcount {} vs {} live mappings",
                page.refs, mappings[p]
            );
        }
        for &p in &self.free {
            assert_eq!(self.pages[p].refs, 0, "free page {p} is still mapped");
        }
        assert_eq!(
            self.allocated_pages(),
            mappings.iter().filter(|&&m| m > 0).count(),
            "allocated pages disagree with live mappings"
        );
    }

    fn locate(&self, seq: &PagedSeq, i: usize) -> (usize, usize) {
        assert!(i < seq.len, "token {i} out of range");
        (seq.pages[i / self.page_size], i % self.page_size)
    }

    fn alloc(&mut self) -> usize {
        let p = match self.free.pop() {
            Some(p) => p,
            None => {
                self.pages.push(Page::default());
                self.pages.len() - 1
            }
        };
        let page = &mut self.pages[p];
        page.keys.clear();
        page.values.clear();
        page.refs = 1;
        p
    }

    fn unref(&mut self, p: usize) {
        debug_assert!(self.pages[p].refs > 0, "unref of an unmapped page");
        self.pages[p].refs -= 1;
        if self.pages[p].refs == 0 {
            self.free.push(p);
        }
    }
}

/// Binds a layer-major bundle of [`PagedSeq`] rows inside a shared
/// [`PagedKvStore`] to the model's [`DecodeKv`](crate::DecodeKv)
/// interface: `seqs[layer * n_heads + head]` is the `(layer, head)` row
/// sequence. This is what lets
/// [`decode_step`](crate::TransformerModel::decode_step) run over
/// copy-on-write paged storage — forked prefixes are physically shared
/// across requests while each request's binding reads only its own
/// logical rows.
///
/// Attention reads gather the (non-contiguous) pages into two reusable
/// scratch buffers and hand the kernel an ordinary
/// [`KvView`](crate::KvView); because [`PagedKvStore::gather_into`]
/// preserves row order, the kernel sees bit-identical inputs to the
/// contiguous [`KvCache`](crate::KvCache) path.
#[derive(Debug)]
pub struct PagedKvBinding<'a> {
    store: &'a mut PagedKvStore,
    seqs: &'a mut [PagedSeq],
    n_heads: usize,
    key_scratch: Vec<f32>,
    value_scratch: Vec<f32>,
}

impl<'a> PagedKvBinding<'a> {
    /// Binds `seqs` (layer-major, `n_layers * n_heads` entries) in
    /// `store` for one request's decode steps.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty, its length is not a multiple of
    /// `n_heads`, or the sequences disagree on length (every head of
    /// every layer must hold the same number of tokens).
    #[must_use]
    pub fn new(store: &'a mut PagedKvStore, seqs: &'a mut [PagedSeq], n_heads: usize) -> Self {
        assert!(n_heads > 0, "n_heads must be positive");
        assert!(!seqs.is_empty(), "binding needs at least one sequence");
        assert_eq!(
            seqs.len() % n_heads,
            0,
            "sequence count must be n_layers * n_heads"
        );
        let len = seqs[0].len();
        assert!(
            seqs.iter().all(|s| s.len() == len),
            "all head sequences must hold the same number of tokens"
        );
        Self {
            store,
            seqs,
            n_heads,
            key_scratch: Vec::new(),
            value_scratch: Vec::new(),
        }
    }
}

impl crate::DecodeKv for PagedKvBinding<'_> {
    fn context_len(&self) -> usize {
        self.seqs[0].len()
    }

    fn push_row(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]) {
        let seq = &mut self.seqs[layer * self.n_heads + head];
        self.store.push(seq, key, value);
    }

    fn attend(
        &mut self,
        layer: usize,
        head: usize,
        q: &[f32],
        kernel: &mut dyn crate::AttentionBackend,
    ) -> Vec<f32> {
        let seq = &self.seqs[layer * self.n_heads + head];
        self.store
            .gather_into(seq, &mut self.key_scratch, &mut self.value_scratch);
        let dim = self.store.dim();
        let view = crate::KvView::new(
            topick_core::Rows::new(&self.key_scratch, dim),
            topick_core::Rows::new(&self.value_scratch, dim),
        );
        kernel.attend(q, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeadCache;

    fn row(i: usize, salt: f32) -> ([f32; 3], [f32; 3]) {
        let x = i as f32 + salt;
        ([x, x + 0.25, x + 0.5], [-x, x * 2.0, x * 0.125])
    }

    /// Builds the same logical sequence into a `HeadCache`, the oracle a
    /// paged sequence must read back identically to.
    fn oracle(rows: &[([f32; 3], [f32; 3])]) -> HeadCache {
        let mut c = HeadCache::new(3);
        for (k, v) in rows {
            c.push(k, v);
        }
        c
    }

    fn assert_matches_oracle(store: &PagedKvStore, seq: &PagedSeq, rows: &[([f32; 3], [f32; 3])]) {
        let o = oracle(rows);
        assert_eq!(seq.len(), o.len());
        for i in 0..o.len() {
            assert_eq!(store.key_row(seq, i), o.key_row(i), "key row {i}");
            assert_eq!(store.value_row(seq, i), o.value_row(i), "value row {i}");
        }
        let (keys, values) = store.gather(seq);
        assert_eq!(keys, o.keys().data());
        assert_eq!(values, o.values().data());
    }

    #[test]
    fn forked_sequences_read_like_independent_caches() {
        let mut store = PagedKvStore::new(3, 4);
        let shared: Vec<_> = (0..10).map(|i| row(i, 0.0)).collect();
        let mut a = store.new_seq();
        for (k, v) in &shared {
            store.push(&mut a, k, v);
        }

        // Fork at the full prefix, then diverge both holders.
        let mut b = store.fork(&a, 10);
        let mut a_rows = shared.clone();
        let mut b_rows = shared.clone();
        for i in 0..6 {
            let (k, v) = row(100 + i, 0.5);
            store.push(&mut a, &k, &v);
            a_rows.push((k, v));
            let (k, v) = row(200 + i, 0.25);
            store.push(&mut b, &k, &v);
            b_rows.push((k, v));
        }
        assert_matches_oracle(&store, &a, &a_rows);
        assert_matches_oracle(&store, &b, &b_rows);
        store.validate(&[&a, &b]);
    }

    #[test]
    fn full_page_fork_copies_nothing_and_cow_copies_one_page() {
        let mut store = PagedKvStore::new(3, 4);
        let mut a = store.new_seq();
        for i in 0..8 {
            let (k, v) = row(i, 0.0);
            store.push(&mut a, &k, &v);
        }
        assert_eq!(store.allocated_pages(), 2);

        // Page-aligned fork: pure sharing.
        let mut b = store.fork(&a, 8);
        assert_eq!(store.allocated_pages(), 2);
        assert_eq!(store.shared_pages(), 2);

        // b's next append opens a fresh page — still nothing copied.
        let (k, v) = row(50, 0.5);
        store.push(&mut b, &k, &v);
        assert_eq!(store.allocated_pages(), 3);
        assert_eq!(store.shared_pages(), 2);
        store.validate(&[&a, &b]);
    }

    #[test]
    fn partial_page_fork_cows_on_either_holders_write() {
        let mut store = PagedKvStore::new(3, 4);
        let rows: Vec<_> = (0..6).map(|i| row(i, 0.0)).collect();
        let mut a = store.new_seq();
        for (k, v) in &rows {
            store.push(&mut a, k, v);
        }
        // Fork mid-page: both map the half-filled page 1.
        let mut b = store.fork(&a, 6);
        assert_eq!(store.allocated_pages(), 2);

        // The parent writing into the shared tail page must also COW —
        // otherwise b would observe a's row 6.
        let (k, v) = row(60, 0.5);
        store.push(&mut a, &k, &v);
        assert_eq!(store.allocated_pages(), 3, "parent write copied the tail");
        let mut a_rows = rows.clone();
        a_rows.push((k, v));
        let (k, v) = row(70, 0.25);
        store.push(&mut b, &k, &v);
        let mut b_rows = rows.clone();
        b_rows.push((k, v));
        assert_matches_oracle(&store, &a, &a_rows);
        assert_matches_oracle(&store, &b, &b_rows);
        store.validate(&[&a, &b]);
    }

    #[test]
    fn truncate_and_release_conserve_pages() {
        let mut store = PagedKvStore::new(3, 4);
        let mut a = store.new_seq();
        let rows: Vec<_> = (0..10).map(|i| row(i, 0.0)).collect();
        for (k, v) in &rows {
            store.push(&mut a, k, v);
        }
        let mut b = store.fork(&a, 8);

        // Truncating the parent below the shared prefix keeps b intact.
        store.truncate(&mut a, 3);
        assert_eq!(a.len(), 3);
        assert_matches_oracle(&store, &a, &rows[..3]);
        assert_matches_oracle(&store, &b, &rows[..8]);
        store.validate(&[&a, &b]);

        // Appending after a truncate overwrites the stale physical rows.
        let (k, v) = row(33, 0.5);
        store.push(&mut a, &k, &v);
        let mut a_rows = rows[..3].to_vec();
        a_rows.push((k, v));
        assert_matches_oracle(&store, &a, &a_rows);
        assert_matches_oracle(&store, &b, &rows[..8]);

        store.release(&mut a);
        store.release(&mut b);
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(store.allocated_pages(), 0);
        store.validate(&[&a, &b]);
    }

    #[test]
    fn fork_of_fork_chains_share_soundly() {
        let mut store = PagedKvStore::new(3, 2);
        let rows: Vec<_> = (0..4).map(|i| row(i, 0.0)).collect();
        let mut a = store.new_seq();
        for (k, v) in &rows {
            store.push(&mut a, k, v);
        }
        let b = store.fork(&a, 4);
        let mut c = store.fork(&b, 2);
        let (k, v) = row(9, 0.5);
        store.push(&mut c, &k, &v);
        assert_matches_oracle(&store, &a, &rows);
        assert_matches_oracle(&store, &b, &rows);
        let mut c_rows = rows[..2].to_vec();
        c_rows.push((k, v));
        assert_matches_oracle(&store, &c, &c_rows);
        store.validate(&[&a, &b, &c]);
    }

    /// Regression pin for the audited truncate-into-shared-page case:
    /// after a fork shares a page and `truncate` makes it the (partial)
    /// tail, the next `push` must copy-on-write that page — mutating it
    /// in place would corrupt rows the sibling still reads.
    #[test]
    fn push_after_truncate_into_shared_page_cows_and_spares_the_sibling() {
        let mut store = PagedKvStore::new(3, 4);
        let rows: Vec<_> = (0..8).map(|i| row(i, 0.0)).collect();
        let mut a = store.new_seq();
        for (k, v) in &rows {
            store.push(&mut a, k, v);
        }
        // Fork at the full 8 tokens: both pages shared.
        let b = store.fork(&a, 8);
        // Truncate the parent into the middle of shared page 1...
        store.truncate(&mut a, 6);
        assert_eq!(store.shared_pages(), 2, "truncate kept the tail mapped");
        // ...then append. The tail page still has refs == 2, so this must
        // COW; the sibling's rows 6 and 7 must survive untouched.
        let (k, v) = row(60, 0.5);
        store.push(&mut a, &k, &v);
        let mut a_rows = rows[..6].to_vec();
        a_rows.push((k, v));
        assert_matches_oracle(&store, &a, &a_rows);
        assert_matches_oracle(&store, &b, &rows);
        store.validate(&[&a, &b]);

        // Same shape one level deeper: truncate to a page boundary drops
        // the shared tail entirely, and the re-append opens a fresh page.
        let mut c = store.fork(&b, 8);
        store.truncate(&mut c, 4);
        let (k, v) = row(70, 0.25);
        store.push(&mut c, &k, &v);
        let mut c_rows = rows[..4].to_vec();
        c_rows.push((k, v));
        assert_matches_oracle(&store, &c, &c_rows);
        assert_matches_oracle(&store, &b, &rows);
        store.validate(&[&a, &b, &c]);
    }

    /// The paged binding drives the *model* to the same logits as the
    /// contiguous cache — bit-identical, because gather preserves row
    /// order and the kernel is shared.
    #[test]
    fn paged_binding_matches_contiguous_cache_logits_bit_for_bit() {
        use crate::{ExactAttention, KvCache, ModelSpec, PagedKvBinding, TransformerModel};
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec.clone(), 7);
        let tokens = [1usize, 2, 3, 44, 5];

        let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
        let mut k = ExactAttention::new();
        let contiguous = model.prefill(&tokens, &mut cache, &mut k);

        let mut store = PagedKvStore::new(spec.head_dim(), 4);
        let mut seqs = vec![store.new_seq(); spec.n_layers * spec.n_heads];
        let mut k = ExactAttention::new();
        let mut binding = PagedKvBinding::new(&mut store, &mut seqs, spec.n_heads);
        let paged = model.prefill(&tokens, &mut binding, &mut k);
        assert_eq!(contiguous, paged);

        // And a forked child continues from the shared prefix with the
        // exact same logits as an unshared rebuild of the same tokens.
        // Forking at the page boundary (4 tokens, page_size 4) keeps the
        // shared page physically shared: the child's appends open a fresh
        // page instead of copy-on-writing the prefix.
        let forked: Vec<_> = seqs.iter().map(|s| store.fork(s, 4)).collect();
        let mut forked_seqs = forked;
        let mut k = ExactAttention::new();
        let mut child = PagedKvBinding::new(&mut store, &mut forked_seqs, spec.n_heads);
        let child_logits = model.prefill(&tokens[4..], &mut child, &mut k);
        assert_eq!(child_logits, contiguous);
        assert!(store.shared_pages() > 0, "the fork physically shares");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reads_are_bounds_checked_against_the_logical_length() {
        let mut store = PagedKvStore::new(3, 4);
        let mut a = store.new_seq();
        let (k, v) = row(0, 0.0);
        store.push(&mut a, &k, &v);
        let _ = store.key_row(&a, 1);
    }
}
