//! Transformer building blocks: linear projection, layer norm, embeddings,
//! and the feed-forward network.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::rng::normal_vec;
use crate::tensor::{add_assign, gelu, Matrix};

/// A dense affine layer `y = W x + b` with `W: out x in`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
}

impl Linear {
    /// Random initialization with gain `sigma / sqrt(in_dim)` (keeps the
    /// output variance roughly `sigma^2` for unit-variance input).
    #[must_use]
    pub fn new_random(in_dim: usize, out_dim: usize, sigma: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = sigma / (in_dim as f64).sqrt();
        let data = normal_vec(&mut rng, in_dim * out_dim, scale);
        let mut it = data.into_iter();
        let weight = Matrix::from_fn(out_dim, in_dim, |_, _| it.next().expect("sized"));
        Self {
            weight,
            bias: vec![0.0; out_dim],
        }
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.weight.gemv(x);
        add_assign(&mut y, &self.bias);
        y
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of parameters (weights + biases).
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }
}

/// Layer normalization with learned scale/shift (initialized to identity).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `dim` features.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Normalizes `x` to zero mean / unit variance, then scales and shifts.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the configured dimension.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.gamma.len(), "layernorm dimension mismatch");
        let n = x.len() as f32;
        let mean = x.iter().sum::<f32>() / n;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + self.eps).sqrt();
        x.iter()
            .zip(self.gamma.iter().zip(&self.beta))
            .map(|(&v, (&g, &b))| (v - mean) * inv * g + b)
            .collect()
    }
}

/// Token/positional embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    table: Matrix,
}

impl Embedding {
    /// Random embedding table of `entries x dim`.
    #[must_use]
    pub fn new_random(entries: usize, dim: usize, sigma: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = normal_vec(&mut rng, entries * dim, sigma);
        let mut it = data.into_iter();
        Self {
            table: Matrix::from_fn(entries, dim, |_, _| it.next().expect("sized")),
        }
    }

    /// Looks one entry up.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn lookup(&self, index: usize) -> &[f32] {
        self.table.row(index)
    }

    /// Tied-embedding logits: `logits_i = table_i · h`.
    #[must_use]
    pub fn tied_logits(&self, h: &[f32]) -> Vec<f32> {
        self.table.gemv(h)
    }

    /// Number of entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Number of parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.table.rows() * self.table.cols()
    }
}

/// The position-wise feed-forward network: `Linear -> GELU -> Linear`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedForward {
    up: Linear,
    down: Linear,
}

impl FeedForward {
    /// Random FFN with hidden width `d_ff`.
    #[must_use]
    pub fn new_random(d_model: usize, d_ff: usize, seed: u64) -> Self {
        Self {
            up: Linear::new_random(d_model, d_ff, 1.0, seed ^ 0x1111),
            down: Linear::new_random(d_ff, d_model, 1.0, seed ^ 0x2222),
        }
    }

    /// Forward pass.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut h = self.up.forward(x);
        for v in &mut h {
            *v = gelu(*v);
        }
        self.down.forward(&h)
    }

    /// Number of parameters.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.up.num_params() + self.down.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_determinism() {
        let l1 = Linear::new_random(8, 4, 1.0, 99);
        let l2 = Linear::new_random(8, 4, 1.0, 99);
        assert_eq!(l1, l2);
        let y = l1.forward(&[1.0; 8]);
        assert_eq!(y.len(), 4);
        assert_eq!(l1.num_params(), 8 * 4 + 4);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(64);
        let x: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let y = ln.forward(&x);
        let mean = y.iter().sum::<f32>() / 64.0;
        let var = y.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn embedding_lookup_and_tied_logits() {
        // Wide rows so the self-dot dominates with overwhelming probability
        // regardless of the PRNG stream.
        let e = Embedding::new_random(10, 32, 0.5, 3);
        let h = e.lookup(3).to_vec();
        let logits = e.tied_logits(&h);
        // The matching row should give the largest logit with high
        // probability for random gaussian rows (self-dot dominates).
        let best = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3);
    }

    #[test]
    fn ffn_shape_preserved() {
        let ffn = FeedForward::new_random(16, 64, 7);
        let y = ffn.forward(&[0.1; 16]);
        assert_eq!(y.len(), 16);
        assert_eq!(ffn.num_params(), (16 * 64 + 64) + (64 * 16 + 16));
    }
}
