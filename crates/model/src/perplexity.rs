//! Perplexity evaluation — the paper's algorithm-quality metric (§5.1.1).
//!
//! The paper reports Wikitext-2 perplexity deltas (+0.05 for ToPick, +0.3
//! for ToPick-0.3, +0.5 for the Fig. 9 operating point). Without pretrained
//! weights we measure the same *mechanism* — how much attention pruning
//! perturbs next-token log-likelihood — on a teacher-generated synthetic
//! corpus: a seed model samples a corpus; the model's NLL on that corpus is
//! then evaluated under the exact kernel and under pruned kernels, and the
//! difference is the ΔPPL proxy used to calibrate thresholds.

use crate::attention::AttentionBackend;
use crate::kvcache::KvCache;
use crate::model::TransformerModel;

/// The result of one perplexity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityReport {
    /// Mean negative log-likelihood per predicted token (nats).
    pub mean_nll: f64,
    /// `exp(mean_nll)`.
    pub perplexity: f64,
    /// Number of predictions scored.
    pub tokens_scored: usize,
}

/// Generates a synthetic evaluation corpus by sampling from the model
/// itself at the given temperature (teacher generation).
///
/// # Panics
///
/// Panics if `len` exceeds the model's maximum context.
#[must_use]
pub fn teacher_corpus(model: &TransformerModel, len: usize, seed: u64) -> Vec<usize> {
    teacher_corpus_with_temperature(model, len, seed, 0.9)
}

/// Like [`teacher_corpus`] with an explicit sampling temperature; higher
/// temperatures yield a higher-entropy corpus (larger absolute perplexity),
/// making pruning-induced degradation easier to see.
///
/// # Panics
///
/// Panics if `len < 2` or `len` exceeds the model's maximum context.
#[must_use]
pub fn teacher_corpus_with_temperature(
    model: &TransformerModel,
    len: usize,
    seed: u64,
    temperature: f64,
) -> Vec<usize> {
    assert!(len >= 2, "corpus must have at least two tokens");
    let prompt = [1usize];
    let mut corpus = prompt.to_vec();
    let mut kernel = crate::attention::ExactAttention::new();
    corpus.extend(model.generate(&prompt, len - 1, temperature, seed, &mut kernel));
    corpus
}

/// Evaluates teacher-forced perplexity of `model` on `corpus` under the
/// given attention kernel.
///
/// Each position `t` scores `-ln p(corpus[t+1] | corpus[..=t])`.
///
/// # Panics
///
/// Panics if the corpus is shorter than two tokens or exceeds the maximum
/// context length.
#[must_use]
pub fn evaluate_perplexity(
    model: &TransformerModel,
    corpus: &[usize],
    kernel: &mut dyn AttentionBackend,
) -> PerplexityReport {
    assert!(corpus.len() >= 2, "corpus must have at least two tokens");
    let spec = model.spec();
    assert!(
        corpus.len() <= spec.max_context,
        "corpus exceeds max context"
    );
    let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
    let mut total_nll = 0.0f64;
    let mut scored = 0usize;
    for t in 0..corpus.len() - 1 {
        let logits = model.forward(corpus[t], t, &mut cache, kernel);
        let target = corpus[t + 1];
        total_nll += nll_from_logits(&logits, target);
        scored += 1;
    }
    let mean_nll = total_nll / scored as f64;
    PerplexityReport {
        mean_nll,
        perplexity: mean_nll.exp(),
        tokens_scored: scored,
    }
}

/// `-ln softmax(logits)[target]`, computed stably in the log domain.
///
/// # Panics
///
/// Panics if `target` is out of range.
#[must_use]
pub fn nll_from_logits(logits: &[f32], target: usize) -> f64 {
    assert!(target < logits.len(), "target out of range");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let lse: f64 = logits
        .iter()
        .map(|&l| f64::from(l - max).exp())
        .sum::<f64>()
        .ln()
        + f64::from(max);
    lse - f64::from(logits[target])
}

/// Convenience: ΔPPL of a pruned kernel relative to the exact kernel on the
/// same corpus.
#[must_use]
pub fn delta_ppl(
    model: &TransformerModel,
    corpus: &[usize],
    pruned: &mut dyn AttentionBackend,
) -> f64 {
    let mut exact = crate::attention::ExactAttention::new();
    let base = evaluate_perplexity(model, corpus, &mut exact);
    let test = evaluate_perplexity(model, corpus, pruned);
    test.perplexity - base.perplexity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{ExactAttention, TokenPickerAttention};
    use crate::specs::ModelSpec;
    use topick_core::PrunerConfig;

    #[test]
    fn nll_matches_manual_softmax() {
        let logits = [1.0f32, 2.0, 0.5];
        let p = topick_core::softmax(&[1.0, 2.0, 0.5]);
        for (t, &pt) in p.iter().enumerate() {
            let direct = -pt.ln();
            assert!((nll_from_logits(&logits, t) - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_perplexity_is_reproducible() {
        let model = TransformerModel::new_random(ModelSpec::toy(), 2);
        let corpus = teacher_corpus(&model, 24, 0);
        let mut k1 = ExactAttention::new();
        let mut k2 = ExactAttention::new();
        let a = evaluate_perplexity(&model, &corpus, &mut k1);
        let b = evaluate_perplexity(&model, &corpus, &mut k2);
        assert_eq!(a, b);
        assert_eq!(a.tokens_scored, 23);
        assert!(a.perplexity.is_finite() && a.perplexity > 1.0);
    }

    #[test]
    fn tight_threshold_has_negligible_delta_ppl() {
        let model = TransformerModel::new_random(ModelSpec::toy(), 4);
        let corpus = teacher_corpus(&model, 24, 1);
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-7).unwrap());
        let d = delta_ppl(&model, &corpus, &mut tp);
        assert!(d.abs() < 0.5, "delta ppl {d} too large for thr=1e-7");
    }

    #[test]
    fn looser_threshold_does_not_decrease_pruning() {
        let model = TransformerModel::new_random(ModelSpec::toy(), 4);
        let corpus = teacher_corpus(&model, 24, 1);
        let mut tight = TokenPickerAttention::new(PrunerConfig::new(1e-6).unwrap());
        let mut loose = TokenPickerAttention::new(PrunerConfig::new(1e-2).unwrap());
        let _ = evaluate_perplexity(&model, &corpus, &mut tight);
        let _ = evaluate_perplexity(&model, &corpus, &mut loose);
        let kt = tight.accumulated_stats().unwrap().kept;
        let kl = loose.accumulated_stats().unwrap().kept;
        assert!(kl <= kt, "loose kept {kl} > tight kept {kt}");
    }
}
