//! The model zoo: architectural shapes of every model the paper evaluates
//! (§5.1.1), plus down-scaled variants that run quickly on a laptop.

/// Architectural shape of a decoder-only language model.
///
/// # Examples
///
/// ```
/// use topick_model::ModelSpec;
///
/// let spec = ModelSpec::gpt2_xl();
/// assert_eq!(spec.n_layers, 48);
/// assert_eq!(spec.head_dim(), 64);
/// assert!(spec.num_params() > 1_300_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Hidden (embedding) dimension.
    pub d_model: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context length.
    pub max_context: usize,
    /// Whether the FFN is gated (SwiGLU-style, three matrices) as in
    /// LLaMa-2, or plain two-matrix MLP as in GPT-2/OPT.
    pub gated_ffn: bool,
}

impl ModelSpec {
    /// GPT2-Medium (used for the Fig. 9 SpAtten comparison).
    #[must_use]
    pub fn gpt2_medium() -> Self {
        Self {
            name: "GPT2-Medium",
            d_model: 1024,
            n_layers: 24,
            n_heads: 16,
            d_ff: 4096,
            vocab: 50257,
            max_context: 1024,
            gated_ffn: false,
        }
    }

    /// GPT2-Large.
    #[must_use]
    pub fn gpt2_large() -> Self {
        Self {
            name: "GPT2-Large",
            d_model: 1280,
            n_layers: 36,
            n_heads: 20,
            d_ff: 5120,
            vocab: 50257,
            max_context: 1024,
            gated_ffn: false,
        }
    }

    /// GPT2-XL.
    #[must_use]
    pub fn gpt2_xl() -> Self {
        Self {
            name: "GPT2-XL",
            d_model: 1600,
            n_layers: 48,
            n_heads: 25,
            d_ff: 6400,
            vocab: 50257,
            max_context: 1024,
            gated_ffn: false,
        }
    }

    /// OPT-1.3B.
    #[must_use]
    pub fn opt_1_3b() -> Self {
        Self {
            name: "OPT-1.3B",
            d_model: 2048,
            n_layers: 24,
            n_heads: 32,
            d_ff: 8192,
            vocab: 50272,
            max_context: 2048,
            gated_ffn: false,
        }
    }

    /// OPT-2.7B.
    #[must_use]
    pub fn opt_2_7b() -> Self {
        Self {
            name: "OPT-2.7B",
            d_model: 2560,
            n_layers: 32,
            n_heads: 32,
            d_ff: 10240,
            vocab: 50272,
            max_context: 2048,
            gated_ffn: false,
        }
    }

    /// OPT-6.7B.
    #[must_use]
    pub fn opt_6_7b() -> Self {
        Self {
            name: "OPT-6.7B",
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            d_ff: 16384,
            vocab: 50272,
            max_context: 2048,
            gated_ffn: false,
        }
    }

    /// OPT-13B.
    #[must_use]
    pub fn opt_13b() -> Self {
        Self {
            name: "OPT-13B",
            d_model: 5120,
            n_layers: 40,
            n_heads: 40,
            d_ff: 20480,
            vocab: 50272,
            max_context: 2048,
            gated_ffn: false,
        }
    }

    /// LLaMa-2-7B.
    #[must_use]
    pub fn llama2_7b() -> Self {
        Self {
            name: "LLaMa-2-7B",
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            d_ff: 11008,
            vocab: 32000,
            max_context: 4096,
            gated_ffn: true,
        }
    }

    /// LLaMa-2-13B.
    #[must_use]
    pub fn llama2_13b() -> Self {
        Self {
            name: "LLaMa-2-13B",
            d_model: 5120,
            n_layers: 40,
            n_heads: 40,
            d_ff: 13824,
            vocab: 32000,
            max_context: 4096,
            gated_ffn: true,
        }
    }

    /// The eight models of the paper's Fig. 8 / Fig. 10 sweep, in order.
    #[must_use]
    pub fn paper_sweep() -> Vec<Self> {
        vec![
            Self::gpt2_large(),
            Self::gpt2_xl(),
            Self::opt_1_3b(),
            Self::opt_2_7b(),
            Self::opt_6_7b(),
            Self::opt_13b(),
            Self::llama2_7b(),
            Self::llama2_13b(),
        ]
    }

    /// A small model that runs fast in tests and examples.
    #[must_use]
    pub fn toy() -> Self {
        Self {
            name: "Toy",
            d_model: 64,
            n_layers: 2,
            n_heads: 4,
            d_ff: 128,
            vocab: 256,
            max_context: 256,
            gated_ffn: false,
        }
    }

    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "d_model must divide by n_heads"
        );
        self.d_model / self.n_heads
    }

    /// Total parameter count (QKV/out projections, FFN, embeddings,
    /// positional table; biases ignored as negligible).
    #[must_use]
    pub fn num_params(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        let per_layer = 4 * d * d + ffn_mats * d * self.d_ff as u64;
        per_layer * self.n_layers as u64 + (self.vocab as u64) * d + (self.max_context as u64) * d
    }

    /// Bytes of pretrained weights transferred per generation step,
    /// assuming 16-bit weights (the Fig. 2 accounting).
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        let d = self.d_model as u64;
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        let per_layer = 4 * d * d + ffn_mats * d * self.d_ff as u64;
        2 * per_layer * self.n_layers as u64
    }

    /// Bytes of word-embedding table transfer per step (16-bit).
    #[must_use]
    pub fn embedding_bytes(&self) -> u64 {
        2 * (self.vocab as u64) * self.d_model as u64
    }

    /// Bytes of KV cache per token per request (16-bit K and V across all
    /// layers).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * 2 * (self.n_layers as u64) * self.d_model as u64
    }

    /// A proportionally scaled-down spec (for laptop-scale functional runs):
    /// dimensions and layer count divided by `factor`, vocabulary capped.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or does not evenly divide the shape.
    #[must_use]
    pub fn scaled_down(&self, factor: usize) -> Self {
        assert!(factor > 0, "factor must be positive");
        Self {
            name: self.name,
            d_model: (self.d_model / factor).max(self.n_heads),
            n_layers: (self.n_layers / factor).max(1),
            n_heads: self.n_heads.min((self.d_model / factor).max(1)),
            d_ff: (self.d_ff / factor).max(4),
            vocab: self.vocab.min(512),
            max_context: self.max_context,
            gated_ffn: self.gated_ffn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_in_the_right_ballpark() {
        // Published sizes: GPT2-L ~0.77B, GPT2-XL ~1.5B, OPT-6.7B ~6.7B,
        // LLaMa-2-7B ~6.7B. Allow 20% slack for our simplified accounting.
        let cases = [
            (ModelSpec::gpt2_large(), 0.77e9),
            (ModelSpec::gpt2_xl(), 1.5e9),
            (ModelSpec::opt_6_7b(), 6.7e9),
            (ModelSpec::llama2_7b(), 6.7e9),
            (ModelSpec::opt_13b(), 13.0e9),
        ];
        for (spec, expect) in cases {
            let got = spec.num_params() as f64;
            assert!(
                (got - expect).abs() / expect < 0.2,
                "{}: {got:.2e} vs {expect:.2e}",
                spec.name
            );
        }
    }

    #[test]
    fn head_dims_divide() {
        for spec in ModelSpec::paper_sweep() {
            assert_eq!(spec.d_model % spec.n_heads, 0, "{}", spec.name);
        }
        assert_eq!(ModelSpec::gpt2_xl().head_dim(), 64);
        assert_eq!(ModelSpec::opt_6_7b().head_dim(), 128);
    }

    #[test]
    fn kv_bytes_gpt2_xl() {
        // 2 (K+V) * 2 bytes * 48 layers * 1600 dim = 307200 bytes/token.
        assert_eq!(ModelSpec::gpt2_xl().kv_bytes_per_token(), 307_200);
    }

    #[test]
    fn sweep_has_eight_models() {
        assert_eq!(ModelSpec::paper_sweep().len(), 8);
    }

    #[test]
    fn toy_is_small() {
        let t = ModelSpec::toy();
        assert!(t.num_params() < 1_000_000);
        assert_eq!(t.head_dim(), 16);
    }
}
