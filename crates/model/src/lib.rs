//! # topick-model
//!
//! The transformer substrate for the Token-Picker reproduction: a
//! from-scratch decoder-only language model with KV caching and pluggable
//! attention backends, the paper's model zoo shapes, synthetic attention
//! workloads with controlled score distributions, perplexity evaluation,
//! and the analytic memory-traffic model behind Fig. 2.
//!
//! ## The `AttentionBackend` trait
//!
//! [`AttentionBackend`] is the single interface every attention
//! implementation in the workspace plugs into. A backend receives the
//! query and a borrowed, zero-copy [`KvView`] of one head's contiguous
//! KV cache ([`HeadCache::view`]) — no backend ever clones cache rows.
//! Implementations span three crates:
//!
//! * here: [`ExactAttention`], [`QuantizedExactAttention`],
//!   [`TokenPickerAttention`], [`OracleAttention`];
//! * `topick-spatten`: the fixed-ratio `TopKAttention` baseline;
//! * `topick-accel`: `SimulatedAttention`, which runs every call through
//!   the cycle-level accelerator and accumulates cycles and energy.
//!
//! ## Example: pruned vs exact generation
//!
//! ```
//! use topick_core::PrunerConfig;
//! use topick_model::{
//!     AttentionBackend, ExactAttention, ModelSpec, TokenPickerAttention, TransformerModel,
//! };
//!
//! let model = TransformerModel::new_random(ModelSpec::toy(), 42);
//! let mut exact = ExactAttention::new();
//! let mut pruned = TokenPickerAttention::new(PrunerConfig::new(1e-5)?);
//! let a = model.generate(&[1, 2, 3], 4, 0.0, 0, &mut exact);
//! let b = model.generate(&[1, 2, 3], 4, 0.0, 0, &mut pruned);
//! assert_eq!(a, b); // tight threshold: outputs unchanged
//! let stats = pruned.accumulated_stats().expect("token-picker tracks stats");
//! println!("kept {}/{} tokens", stats.kept, stats.tokens);
//! # Ok::<(), topick_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod kvcache;
pub mod layers;
pub mod memory;
pub mod model;
pub mod paged;
pub mod perplexity;
pub mod qcache;
pub mod rng;
pub mod specs;
pub mod synth;
pub mod tensor;

pub use attention::{
    AttentionBackend, ExactAttention, OracleAttention, QuantizedExactAttention,
    TokenPickerAttention,
};
pub use kvcache::{HeadCache, KvCache, KvView};
pub use memory::TrafficBreakdown;
pub use model::{argmax_token, sample_token, DecodeKv, TransformerModel};
pub use paged::{PagedKvBinding, PagedKvStore, PagedSeq};
pub use perplexity::{
    delta_ppl, evaluate_perplexity, nll_from_logits, teacher_corpus,
    teacher_corpus_with_temperature, PerplexityReport,
};
pub use qcache::{requantization_gap, QuantizedHeadCache, QuantizedTokenPicker};
pub use specs::ModelSpec;
pub use synth::{InstanceSampler, SynthInstance, SynthProfile};
