//! Deterministic random-number helpers (Gaussian sampling on top of `rand`).

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use topick_model::rng::standard_normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills a vector with `n` i.i.d. `N(0, sigma^2)` samples as `f32`.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<f32> {
    (0..n)
        .map(|_| (standard_normal(rng) * sigma) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = normal_vec(&mut StdRng::seed_from_u64(1), 8, 2.0);
        let b = normal_vec(&mut StdRng::seed_from_u64(1), 8, 2.0);
        assert_eq!(a, b);
    }
}
