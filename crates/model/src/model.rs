//! A from-scratch decoder-only transformer with pluggable attention
//! kernels — the substrate standing in for the paper's HuggingFace models.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::attention::AttentionBackend;
use crate::kvcache::KvCache;
use crate::layers::{Embedding, FeedForward, LayerNorm, Linear};
use crate::specs::ModelSpec;
use crate::tensor::add_assign;

/// KV storage the resumable decode path writes into and attends over.
///
/// The model's forward loop only ever needs two storage operations per
/// `(layer, head)`: append one token's key/value rows, and attend over
/// everything cached so far. Abstracting those two behind this trait lets
/// the *same* loop run over the contiguous per-request [`KvCache`] and
/// over [`PagedKvBinding`](crate::PagedKvBinding), whose rows live in a
/// shared copy-on-write [`PagedKvStore`](crate::PagedKvStore) — which is
/// how a serving batch physically shares system-prompt KV while the
/// model code stays oblivious.
pub trait DecodeKv {
    /// Number of tokens whose K/V rows are currently materialised. The
    /// next [`decode_step`](TransformerModel::decode_step) appends at
    /// exactly this position.
    fn context_len(&self) -> usize;

    /// Appends one token's key and value rows for `(layer, head)`.
    fn push_row(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]);

    /// Runs `kernel` over every cached row of `(layer, head)` for query
    /// `q`, returning the attention output.
    fn attend(
        &mut self,
        layer: usize,
        head: usize,
        q: &[f32],
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32>;
}

impl DecodeKv for KvCache {
    fn context_len(&self) -> usize {
        KvCache::context_len(self)
    }

    fn push_row(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]) {
        self.head_mut(layer, head).push(key, value);
    }

    fn attend(
        &mut self,
        layer: usize,
        head: usize,
        q: &[f32],
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        kernel.attend(q, self.head(layer, head).view())
    }
}

/// One decoder layer's weights.
#[derive(Debug, Clone)]
struct DecoderLayer {
    ln1: LayerNorm,
    ln2: LayerNorm,
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    w_o: Linear,
    ffn: FeedForward,
}

/// A decoder-only transformer language model with KV caching.
///
/// Weights are deterministic pseudo-random (there is no pretraining in this
/// reproduction; see DESIGN.md §2 for why that is sufficient). The QK
/// projections use an enlarged gain so attention distributions are peaky,
/// mimicking trained-model behaviour.
///
/// # Examples
///
/// ```
/// use topick_model::{ExactAttention, KvCache, ModelSpec, TransformerModel};
///
/// let spec = ModelSpec::toy();
/// let model = TransformerModel::new_random(spec.clone(), 42);
/// let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
/// let mut kernel = ExactAttention::new();
/// let logits = model.forward(5, 0, &mut cache, &mut kernel);
/// assert_eq!(logits.len(), spec.vocab);
/// ```
#[derive(Debug, Clone)]
pub struct TransformerModel {
    spec: ModelSpec,
    token_emb: Embedding,
    pos_emb: Embedding,
    layers: Vec<DecoderLayer>,
    ln_f: LayerNorm,
}

impl TransformerModel {
    /// Builds a model with deterministic random weights from `seed`.
    #[must_use]
    pub fn new_random(spec: ModelSpec, seed: u64) -> Self {
        let d = spec.d_model;
        // Larger QK gain -> larger score variance -> peaky softmax, like
        // trained LLMs (scores routinely span tens of nats; see Fig. 3).
        let qk_sigma = 2.0;
        let layers = (0..spec.n_layers)
            .map(|l| {
                let s = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(l as u64);
                DecoderLayer {
                    ln1: LayerNorm::new(d),
                    ln2: LayerNorm::new(d),
                    w_q: Linear::new_random(d, d, qk_sigma, s ^ 0xA),
                    w_k: Linear::new_random(d, d, qk_sigma, s ^ 0xB),
                    w_v: Linear::new_random(d, d, 1.0, s ^ 0xC),
                    w_o: Linear::new_random(d, d, 0.5, s ^ 0xD),
                    ffn: FeedForward::new_random(d, spec.d_ff, s ^ 0xE),
                }
            })
            .collect();
        Self {
            token_emb: Embedding::new_random(spec.vocab, d, 0.5, seed ^ 0xF00D),
            pos_emb: Embedding::new_random(spec.max_context, d, 0.1, seed ^ 0xBEEF),
            layers,
            ln_f: LayerNorm::new(d),
            spec,
        }
    }

    /// The architectural spec.
    #[must_use]
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Runs one token through the model: appends its K/V to the cache and
    /// returns next-token logits.
    ///
    /// `pos` is the absolute position of `token` in the sequence; the cache
    /// must already hold exactly `pos` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `token >= vocab`, `pos >= max_context`, or the cache length
    /// disagrees with `pos`.
    pub fn forward(
        &self,
        token: usize,
        pos: usize,
        cache: &mut KvCache,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        self.forward_with(token, pos, cache, kernel)
    }

    /// The forward pass over any [`DecodeKv`] storage — the single code
    /// path behind [`forward`](Self::forward) (contiguous cache) and the
    /// paged serving path, so the two cannot drift.
    fn forward_with(
        &self,
        token: usize,
        pos: usize,
        kv: &mut dyn DecodeKv,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        assert!(token < self.spec.vocab, "token id out of vocabulary");
        assert!(pos < self.spec.max_context, "position beyond max context");
        assert_eq!(kv.context_len(), pos, "cache length must equal pos");
        let d = self.spec.d_model;
        let hd = self.spec.head_dim();

        let mut h: Vec<f32> = self.token_emb.lookup(token).to_vec();
        add_assign(&mut h, self.pos_emb.lookup(pos));

        for (li, layer) in self.layers.iter().enumerate() {
            // Self-attention sublayer.
            let x = layer.ln1.forward(&h);
            let q = layer.w_q.forward(&x);
            let k = layer.w_k.forward(&x);
            let v = layer.w_v.forward(&x);
            let mut attn_cat = vec![0.0f32; d];
            for head in 0..self.spec.n_heads {
                let range = head * hd..(head + 1) * hd;
                kv.push_row(li, head, &k[range.clone()], &v[range.clone()]);
                let out = kv.attend(li, head, &q[range.clone()], kernel);
                attn_cat[range].copy_from_slice(&out);
            }
            let attn_out = layer.w_o.forward(&attn_cat);
            add_assign(&mut h, &attn_out);

            // Feed-forward sublayer.
            let x2 = layer.ln2.forward(&h);
            let ffn_out = layer.ffn.forward(&x2);
            add_assign(&mut h, &ffn_out);
        }

        let hf = self.ln_f.forward(&h);
        self.token_emb.tied_logits(&hf)
    }

    /// Resumable prefill: feeds `tokens` starting at the storage's
    /// current context length and returns the logits after the last one.
    /// On empty storage this is ordinary prompt ingestion; on non-empty
    /// storage it extends the cached context (e.g. rebuilding the suffix
    /// a preemption dropped).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or any forwarded position violates the
    /// [`forward`](Self::forward) invariants.
    pub fn prefill(
        &self,
        tokens: &[usize],
        kv: &mut dyn DecodeKv,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        assert!(!tokens.is_empty(), "prefill needs at least one token");
        let mut logits = Vec::new();
        for &t in tokens {
            logits = self.decode_step(t, kv, kernel);
        }
        logits
    }

    /// One resumable decode step: appends `token` at the storage's
    /// current context length and returns next-token logits. Unlike
    /// [`generate`](Self::generate), the caller owns the KV storage, so
    /// decoding can stop, be truncated or swapped, and resume later.
    ///
    /// # Panics
    ///
    /// Panics if the forwarded position violates the
    /// [`forward`](Self::forward) invariants.
    pub fn decode_step(
        &self,
        token: usize,
        kv: &mut dyn DecodeKv,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        let pos = kv.context_len();
        self.forward_with(token, pos, kv, kernel)
    }

    /// Teacher-forced forward over a whole sequence, returning the logits
    /// produced at every position.
    pub fn forward_sequence(
        &self,
        tokens: &[usize],
        cache: &mut KvCache,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<Vec<f32>> {
        tokens
            .iter()
            .enumerate()
            .map(|(pos, &t)| self.forward(t, pos, cache, kernel))
            .collect()
    }

    /// Autoregressive generation: feeds `prompt`, then samples `steps`
    /// tokens greedily (argmax) or with temperature via `temperature > 0`.
    ///
    /// Returns the generated continuation (not including the prompt).
    /// This is a thin wrapper over [`prefill`](Self::prefill) and
    /// [`decode_step`](Self::decode_step) against a private [`KvCache`];
    /// the sampled tokens are byte-identical to the pre-resumable
    /// implementation (pinned by seeded goldens). Unlike that
    /// implementation, the final sampled token *is* forwarded into the
    /// cache, so a caller-owned storage left behind by the resumable path
    /// can continue generating from where this stopped.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or the total length exceeds the
    /// maximum context.
    pub fn generate(
        &self,
        prompt: &[usize],
        steps: usize,
        temperature: f64,
        seed: u64,
        kernel: &mut dyn AttentionBackend,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + steps <= self.spec.max_context,
            "sequence exceeds max context"
        );
        let mut cache = KvCache::new(self.spec.n_layers, self.spec.n_heads, self.spec.head_dim());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut logits = self.prefill(prompt, &mut cache, kernel);
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let next = sample_token(&logits, temperature, &mut rng);
            out.push(next);
            logits = self.decode_step(next, &mut cache, kernel);
        }
        out
    }
}

/// The greedy sampling decision: the index of the maximal logit, with
/// ties broken toward the highest index. This *is* [`sample_token`]'s
/// temperature-0 path (they share this function), so greedy serving
/// paths that argmax directly can never drift from `generate`'s
/// tie-breaking.
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn argmax_token(logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .expect("non-empty")
        .0
}

/// Samples a token from logits: argmax when `temperature == 0` (via
/// [`argmax_token`]), otherwise softmax sampling at the given
/// temperature.
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn sample_token<R: Rng + ?Sized>(logits: &[f32], temperature: f64, rng: &mut R) -> usize {
    assert!(!logits.is_empty(), "empty logits");
    if temperature <= 0.0 {
        return argmax_token(logits);
    }
    let scaled: Vec<f64> = logits.iter().map(|&l| f64::from(l) / temperature).collect();
    let probs = topick_core::softmax(&scaled);
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{ExactAttention, TokenPickerAttention};
    use topick_core::PrunerConfig;

    #[test]
    fn forward_shapes_and_cache_growth() {
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec.clone(), 1);
        let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
        let mut kernel = ExactAttention::new();
        let l0 = model.forward(1, 0, &mut cache, &mut kernel);
        assert_eq!(l0.len(), spec.vocab);
        assert_eq!(cache.context_len(), 1);
        let _ = model.forward(2, 1, &mut cache, &mut kernel);
        assert_eq!(cache.context_len(), 2);
    }

    #[test]
    fn generation_is_deterministic_greedy() {
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec, 7);
        let mut k1 = ExactAttention::new();
        let mut k2 = ExactAttention::new();
        let a = model.generate(&[1, 2, 3], 8, 0.0, 0, &mut k1);
        let b = model.generate(&[1, 2, 3], 8, 0.0, 0, &mut k2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn pruned_generation_tracks_exact_generation() {
        // With a tight threshold, Token-Picker generation should match the
        // exact kernel's greedy outputs for a good number of steps.
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec, 3);
        let mut exact = ExactAttention::new();
        let mut tp = TokenPickerAttention::new(PrunerConfig::new(1e-6).unwrap());
        let a = model.generate(&[5, 6], 6, 0.0, 0, &mut exact);
        let b = model.generate(&[5, 6], 6, 0.0, 0, &mut tp);
        assert_eq!(a, b, "tight-threshold pruning changed greedy outputs");
    }

    /// Seeded goldens captured from the pre-resumable `generate`
    /// implementation: the refactor onto `prefill`/`decode_step` must
    /// reproduce these byte-identically.
    #[test]
    fn generate_matches_pre_refactor_goldens() {
        let m7 = TransformerModel::new_random(ModelSpec::toy(), 7);
        let mut k = ExactAttention::new();
        assert_eq!(
            m7.generate(&[1, 2, 3], 8, 0.0, 0, &mut k),
            vec![3, 3, 3, 3, 50, 50, 50, 50]
        );
        let m3 = TransformerModel::new_random(ModelSpec::toy(), 3);
        let mut k = ExactAttention::new();
        assert_eq!(m3.generate(&[5, 6], 6, 0.0, 0, &mut k), vec![6; 6]);
        // Temperature sampling threads through the same RNG stream.
        let m11 = TransformerModel::new_random(ModelSpec::toy(), 11);
        let mut k = ExactAttention::new();
        assert_eq!(m11.generate(&[9, 8, 7, 6], 10, 0.8, 5, &mut k), vec![6; 10]);
    }

    /// The resumable API can stop mid-generation and continue on the same
    /// caller-owned cache, reproducing an uninterrupted greedy run — the
    /// capability the old `generate` (throwaway cache, final token never
    /// forwarded) could not offer.
    #[test]
    fn decode_resumes_mid_sequence_exactly() {
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec.clone(), 7);
        let mut k = ExactAttention::new();
        let full = model.generate(&[1, 2, 3], 8, 0.0, 0, &mut k);

        let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
        let mut k = ExactAttention::new();
        let mut logits = model.prefill(&[1, 2, 3], &mut cache, &mut k);
        let mut out = Vec::new();
        for _ in 0..3 {
            let next = sample_token(&logits, 0.0, &mut StdRng::seed_from_u64(0));
            out.push(next);
            logits = model.decode_step(next, &mut cache, &mut k);
        }
        // "Pause": the cache already holds prompt + 3 generated tokens.
        assert_eq!(cache.context_len(), 3 + 3);
        // Resume on the same cache for the remaining 5 steps.
        for _ in 0..5 {
            let next = sample_token(&logits, 0.0, &mut StdRng::seed_from_u64(0));
            out.push(next);
            logits = model.decode_step(next, &mut cache, &mut k);
        }
        assert_eq!(out, full);
    }

    /// `prefill` extends a non-empty cache from its current frontier —
    /// truncate-then-reprefill lands on the exact same logits.
    #[test]
    fn prefill_extends_a_truncated_cache_exactly() {
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec.clone(), 5);
        let tokens = [4usize, 9, 2, 7, 1, 8];

        let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
        let mut k = ExactAttention::new();
        let full = model.prefill(&tokens, &mut cache, &mut k);

        cache.truncate(2);
        let mut k = ExactAttention::new();
        let rebuilt = model.prefill(&tokens[2..], &mut cache, &mut k);
        assert_eq!(rebuilt, full);
        assert_eq!(cache.context_len(), tokens.len());
    }

    #[test]
    fn sample_token_respects_temperature_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_token(&[0.0, 5.0, 1.0], 0.0, &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "cache length must equal pos")]
    fn forward_rejects_desynced_cache() {
        let spec = ModelSpec::toy();
        let model = TransformerModel::new_random(spec.clone(), 1);
        let mut cache = KvCache::new(spec.n_layers, spec.n_heads, spec.head_dim());
        let mut kernel = ExactAttention::new();
        let _ = model.forward(1, 3, &mut cache, &mut kernel);
    }
}
