//! A deliberately small dense-matrix library — just what a decoder-only
//! transformer forward pass needs (no autograd, `f32`, row-major).

use std::fmt;

/// A row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use topick_model::tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// let y = m.gemv(&[1.0, 0.0, 0.0]);
/// assert_eq!(y, vec![0.0, 3.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `(row, col) -> value`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `y = M x` (`x.len() == cols`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn gemv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        let mut y = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y.push(dot(row, x));
        }
        y
    }

    /// Transposed matrix–vector product `y = Mᵀ x` (`x.len() == rows`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn gemv_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "gemv_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, &m) in y.iter_mut().zip(row) {
                *yc += xr * m;
            }
        }
        y
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// In-place element-wise addition `a += b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// The GELU activation (tanh approximation, as used by GPT-2).
#[must_use]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_identity() {
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = [1.0, -2.0, 3.0];
        assert_eq!(id.gemv(&x), x.to_vec());
    }

    #[test]
    fn gemv_t_matches_manual_transpose() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let x = [1.0, 2.0];
        let y = m.gemv_t(&x);
        // Mᵀ = [[0,3],[1,4],[2,5]]; y = [0+6, 1+8, 2+10]
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn gelu_limits() {
        assert!(gelu(10.0) > 9.99);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert_eq!(gelu(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "gemv dimension mismatch")]
    fn gemv_rejects_bad_len() {
        let m = Matrix::zeros(2, 3);
        let _ = m.gemv(&[1.0, 2.0]);
    }

    #[test]
    fn add_assign_works() {
        let mut a = vec![1.0f32, 2.0];
        add_assign(&mut a, &[0.5, -0.5]);
        assert_eq!(a, vec![1.5, 1.5]);
    }
}
