//! Integration tests of the cycle-level accelerator: functional
//! correctness against exact attention, estimator soundness in arrival
//! order, and the architectural claims (speedup ordering of the modes).

use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
use topick_core::{
    exact_probabilities, weighted_value_sum, PrecisionConfig, QMatrix, QVector, Rows,
};
use topick_model::{SynthInstance, SynthProfile};

fn quantized_instance(n: usize, seed: u64) -> (QVector, QMatrix, Vec<f32>) {
    let pc = PrecisionConfig::paper();
    let inst = SynthInstance::generate(&SynthProfile::realistic(n, 64), seed);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), 64, pc).expect("non-empty");
    (q, keys, inst.into_values())
}

fn run(mode: AccelMode, thr: f64, n: usize, seed: u64) -> topick_accel::AttentionStepResult {
    let (q, keys, values) = quantized_instance(n, seed);
    let accel = ToPickAccelerator::new(AccelConfig::paper(mode, thr).expect("valid thr"));
    accel
        .run_attention(&q, &keys, Rows::new(&values, 64))
        .expect("valid run")
}

#[test]
fn baseline_output_matches_exact_attention() {
    let (q, keys, values) = quantized_instance(128, 1);
    let accel = ToPickAccelerator::new(AccelConfig::baseline());
    let values = Rows::new(&values, 64);
    let result = accel.run_attention(&q, &keys, values).unwrap();
    let probs = exact_probabilities(&q, &keys);
    let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
    let expect = weighted_value_sum(&pairs, values);
    for (a, b) in result.output.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
    assert_eq!(result.kept.len(), 128);
}

#[test]
fn out_of_order_output_close_to_exact() {
    let (q, keys, values) = quantized_instance(256, 2);
    let thr = 1e-4;
    let accel = ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, thr).unwrap());
    let values = Rows::new(&values, 64);
    let result = accel.run_attention(&q, &keys, values).unwrap();
    let probs = exact_probabilities(&q, &keys);
    let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
    let expect = weighted_value_sum(&pairs, values);
    for (a, b) in result.output.iter().zip(&expect) {
        assert!((a - b).abs() < 0.1, "{a} vs {b}");
    }
}

#[test]
fn soundness_in_arrival_order() {
    // No token with true probability above thr may be pruned, regardless of
    // the DRAM arrival order driving the decisions.
    for seed in 0..4 {
        let (q, keys, values) = quantized_instance(192, 100 + seed);
        let thr = 1e-3;
        let accel = ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, thr).unwrap());
        let result = accel
            .run_attention(&q, &keys, Rows::new(&values, 64))
            .unwrap();
        let exact = exact_probabilities(&q, &keys);
        for (t, &p) in exact.iter().enumerate() {
            if p > thr {
                assert!(
                    result.kept.contains(&t),
                    "seed {seed}: token {t} with p={p} pruned"
                );
            }
        }
    }
}

#[test]
fn topick_is_faster_than_baseline() {
    let n = 512;
    let baseline = run(AccelMode::Baseline, 0.5, n, 7);
    let topick = run(AccelMode::OutOfOrder, 1e-3, n, 7);
    let speedup = topick.speedup_vs(&baseline);
    assert!(
        speedup > 1.5,
        "expected >1.5x speedup, got {speedup:.2} ({} vs {} cycles)",
        baseline.cycles,
        topick.cycles
    );
}

#[test]
fn mode_ordering_matches_paper() {
    // Baseline slowest; estimate-only in between; full ToPick fastest.
    let n = 512;
    let baseline = run(AccelMode::Baseline, 0.5, n, 8);
    let est = run(AccelMode::EstimateOnly, 1e-3, n, 8);
    let ooo = run(AccelMode::OutOfOrder, 1e-3, n, 8);
    assert!(
        est.cycles < baseline.cycles,
        "estimate-only should beat baseline"
    );
    assert!(
        ooo.cycles < est.cycles,
        "out-of-order should beat estimate-only"
    );
}

#[test]
fn blocking_is_slower_than_out_of_order_with_same_traffic_shape() {
    let n = 256;
    let ooo = run(AccelMode::OutOfOrder, 1e-3, n, 9);
    let blocking = run(AccelMode::Blocking, 1e-3, n, 9);
    assert!(
        blocking.cycles > ooo.cycles,
        "blocking {} should exceed ooo {}",
        blocking.cycles,
        ooo.cycles
    );
    // Both prune V heavily; K chunk traffic is within 2x of each other
    // (decision order differs slightly).
    let pc = PrecisionConfig::paper();
    let k_ooo = ooo.prune.k_bits_fetched(64, &pc);
    let k_blk = blocking.prune.k_bits_fetched(64, &pc);
    let ratio = k_ooo as f64 / k_blk as f64;
    assert!(ratio > 0.5 && ratio < 2.0, "K traffic ratio {ratio}");
}

#[test]
fn energy_breakdown_is_dram_dominated() {
    // The generation phase is memory-bound: DRAM should dominate energy in
    // the baseline (paper Fig. 10b shows ~70-90% DRAM).
    let baseline = run(AccelMode::Baseline, 0.5, 512, 10);
    let (d, _s, _c) = baseline.energy.fractions();
    assert!(d > 0.5, "DRAM fraction {d} unexpectedly low");
}

#[test]
fn topick_saves_energy() {
    let baseline = run(AccelMode::Baseline, 0.5, 512, 11);
    let topick = run(AccelMode::OutOfOrder, 1e-3, 512, 11);
    let gain = topick.energy_gain_vs(&baseline);
    assert!(gain > 1.3, "energy gain {gain:.2} too small");
}

#[test]
fn traffic_accounting_consistent_with_dram() {
    // Bits counted by PruneStats must equal the bytes the DRAM actually
    // moved (modulo per-burst padding).
    let result = run(AccelMode::OutOfOrder, 1e-3, 128, 12);
    let pc = PrecisionConfig::paper();
    let k_bits = result.prune.k_bits_fetched(64, &pc);
    let v_bits = result.prune.v_bits_fetched(64, &pc);
    let dram_bits = result.dram_stats.reads * 32 * 8;
    assert_eq!(dram_bits, k_bits + v_bits, "DRAM traffic mismatch");
}

#[test]
fn single_token_context_works() {
    let pc = PrecisionConfig::paper();
    let q = QVector::quantize(&vec![0.5; 64], pc);
    let keys = QMatrix::quantize_flat(&[0.5; 64], 64, pc).unwrap();
    let values = vec![2.0f32; 64];
    for mode in [
        AccelMode::Baseline,
        AccelMode::EstimateOnly,
        AccelMode::OutOfOrder,
        AccelMode::Blocking,
    ] {
        let accel = ToPickAccelerator::new(AccelConfig::paper(mode, 1e-3).unwrap());
        let r = accel
            .run_attention(&q, &keys, Rows::new(&values, 64))
            .unwrap();
        assert_eq!(r.kept, vec![0], "{mode:?}");
        assert!((r.output[0] - 2.0).abs() < 1e-5, "{mode:?}");
    }
}

#[test]
fn dimension_mismatch_rejected() {
    let pc = PrecisionConfig::paper();
    let q = QVector::quantize(&[0.5; 32], pc);
    let keys = QMatrix::quantize_flat(&[0.5; 64], 64, pc).unwrap();
    let values = vec![1.0f32; 64];
    let accel = ToPickAccelerator::new(AccelConfig::baseline());
    assert!(accel
        .run_attention(&q, &keys, Rows::new(&values, 64))
        .is_err());
}

#[test]
fn wider_head_dimension_is_supported() {
    // OPT/LLaMa shapes use 128-dim heads: chunks span multiple bursts.
    let pc = PrecisionConfig::paper();
    let inst = SynthInstance::generate(&SynthProfile::realistic(64, 128), 13);
    let q = QVector::quantize(&inst.query, pc);
    let keys = QMatrix::quantize_flat(inst.keys().data(), 128, pc).unwrap();
    let accel = ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap());
    let r = accel.run_attention(&q, &keys, inst.values()).unwrap();
    assert!(!r.kept.is_empty());
    assert!(r.cycles > 0);
}
