//! Property tests of the accelerator: soundness under arbitrary timing,
//! exact traffic accounting, and robustness to degenerate configurations.

use proptest::prelude::*;
use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
use topick_core::{exact_probabilities, PrecisionConfig, QMatrix, QVector, Rows};

fn random_instance(seed: u64, n: usize, dim: usize) -> (QVector, QMatrix, Vec<f32>) {
    let pc = PrecisionConfig::paper();
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 33) as f32 / 2_147_483_648.0) * 4.0 - 2.0
    };
    let q: Vec<f32> = (0..dim).map(|_| next()).collect();
    let keys: Vec<f32> = (0..n * dim).map(|_| next()).collect();
    let values: Vec<f32> = (0..n * dim).map(|_| next()).collect();
    (
        QVector::quantize(&q, pc),
        QMatrix::quantize_flat(&keys, dim, pc).expect("non-empty"),
        values,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness holds for every mode regardless of workload and timing.
    #[test]
    fn no_dominant_token_pruned_any_mode(
        seed in any::<u64>(),
        n in 2usize..96,
        thr_exp in 1.5f64..4.0,
    ) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let thr = 10f64.powf(-thr_exp);
        let exact = exact_probabilities(&q, &keys);
        for mode in [AccelMode::EstimateOnly, AccelMode::OutOfOrder, AccelMode::Blocking] {
            let accel = ToPickAccelerator::new(
                AccelConfig::paper(mode, thr).expect("thr in range"),
            );
            let r = accel
                .run_attention(&q, &keys, Rows::new(&values, dim))
                .expect("run");
            for (t, &p) in exact.iter().enumerate() {
                if p > thr {
                    prop_assert!(
                        r.kept.contains(&t),
                        "{:?}: token {} with p={} pruned at thr={}",
                        mode, t, p, thr
                    );
                }
            }
        }
    }

    /// DRAM bytes moved equal the bit-level accounting in PruneStats, for
    /// both 64-dim (1 burst/chunk) and 128-dim (2 bursts/chunk) heads.
    #[test]
    fn traffic_identity(seed in any::<u64>(), n in 2usize..64, wide in any::<bool>()) {
        let dim = if wide { 128 } else { 64 };
        let (q, keys, values) = random_instance(seed, n, dim);
        let accel = ToPickAccelerator::new(
            AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr"),
        );
        let r = accel
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("run");
        let pc = PrecisionConfig::paper();
        let k_bits = r.prune.k_bits_fetched(dim, &pc);
        let v_bits = r.prune.v_bits_fetched(dim, &pc);
        let dram_bits = r.dram_stats.reads * 32 * 8;
        prop_assert_eq!(dram_bits, k_bits + v_bits);
    }

    /// A one-entry scoreboard still completes and stays sound — it only
    /// costs cycles.
    #[test]
    fn tiny_scoreboard_is_safe(seed in any::<u64>(), n in 2usize..48) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let mut cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        cfg.scoreboard_entries = 1;
        let tiny = ToPickAccelerator::new(cfg)
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("tiny scoreboard run");
        let full = ToPickAccelerator::new(
            AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr"),
        )
        .run_attention(&q, &keys, Rows::new(&values, dim))
        .expect("full scoreboard run");
        prop_assert!(tiny.cycles >= full.cycles);
        let exact = exact_probabilities(&q, &keys);
        for (t, &p) in exact.iter().enumerate() {
            if p > 1e-3 {
                prop_assert!(tiny.kept.contains(&t));
            }
        }
    }

    /// Baseline output equals exact attention for any workload.
    #[test]
    fn baseline_always_exact(seed in any::<u64>(), n in 1usize..64) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let r = ToPickAccelerator::new(AccelConfig::baseline())
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("run");
        let probs = exact_probabilities(&q, &keys);
        let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
        let expect = topick_core::weighted_value_sum(&pairs, Rows::new(&values, dim));
        for (a, b) in r.output.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
        prop_assert_eq!(r.kept.len(), n);
    }
}
