//! Property tests of the accelerator: soundness under arbitrary timing,
//! exact traffic accounting, robustness to degenerate configurations, and
//! the serving engine's admission invariants under any scheduling policy.

use proptest::prelude::*;
use topick_accel::serve::trace::run_recorded;
use topick_accel::{
    AccelConfig, AccelMode, ClusterEngine, ClusterEvent, KvPager, PolicyKind, RetentionPolicy,
    RoutingKind, ScenarioKind, ServeEvent, ServingEngine, ServingRequest, ToPickAccelerator,
    TraceMeta,
};
use topick_core::{exact_probabilities, PrecisionConfig, QMatrix, QVector, Rows};

fn random_instance(seed: u64, n: usize, dim: usize) -> (QVector, QMatrix, Vec<f32>) {
    let pc = PrecisionConfig::paper();
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 33) as f32 / 2_147_483_648.0) * 4.0 - 2.0
    };
    let q: Vec<f32> = (0..dim).map(|_| next()).collect();
    let keys: Vec<f32> = (0..n * dim).map(|_| next()).collect();
    let values: Vec<f32> = (0..n * dim).map(|_| next()).collect();
    (
        QVector::quantize(&q, pc),
        QMatrix::quantize_flat(&keys, dim, pc).expect("non-empty"),
        values,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness holds for every mode regardless of workload and timing.
    #[test]
    fn no_dominant_token_pruned_any_mode(
        seed in any::<u64>(),
        n in 2usize..96,
        thr_exp in 1.5f64..4.0,
    ) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let thr = 10f64.powf(-thr_exp);
        let exact = exact_probabilities(&q, &keys);
        for mode in [AccelMode::EstimateOnly, AccelMode::OutOfOrder, AccelMode::Blocking] {
            let accel = ToPickAccelerator::new(
                AccelConfig::paper(mode, thr).expect("thr in range"),
            );
            let r = accel
                .run_attention(&q, &keys, Rows::new(&values, dim))
                .expect("run");
            for (t, &p) in exact.iter().enumerate() {
                if p > thr {
                    prop_assert!(
                        r.kept.contains(&t),
                        "{:?}: token {} with p={} pruned at thr={}",
                        mode, t, p, thr
                    );
                }
            }
        }
    }

    /// DRAM bytes moved equal the bit-level accounting in PruneStats, for
    /// both 64-dim (1 burst/chunk) and 128-dim (2 bursts/chunk) heads.
    #[test]
    fn traffic_identity(seed in any::<u64>(), n in 2usize..64, wide in any::<bool>()) {
        let dim = if wide { 128 } else { 64 };
        let (q, keys, values) = random_instance(seed, n, dim);
        let accel = ToPickAccelerator::new(
            AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr"),
        );
        let r = accel
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("run");
        let pc = PrecisionConfig::paper();
        let k_bits = r.prune.k_bits_fetched(dim, &pc);
        let v_bits = r.prune.v_bits_fetched(dim, &pc);
        let dram_bits = r.dram_stats.reads * 32 * 8;
        prop_assert_eq!(dram_bits, k_bits + v_bits);
    }

    /// A one-entry scoreboard still completes and stays sound — it only
    /// costs cycles.
    #[test]
    fn tiny_scoreboard_is_safe(seed in any::<u64>(), n in 2usize..48) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let mut cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        cfg.scoreboard_entries = 1;
        let tiny = ToPickAccelerator::new(cfg)
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("tiny scoreboard run");
        let full = ToPickAccelerator::new(
            AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr"),
        )
        .run_attention(&q, &keys, Rows::new(&values, dim))
        .expect("full scoreboard run");
        prop_assert!(tiny.cycles >= full.cycles);
        let exact = exact_probabilities(&q, &keys);
        for (t, &p) in exact.iter().enumerate() {
            if p > 1e-3 {
                prop_assert!(tiny.kept.contains(&t));
            }
        }
    }

    /// Under any interleaving of enqueue and step, any policy (the
    /// SLO-aware one included), any chunked-prefill budget, and
    /// preemption on or off, the batch never exceeds its slot limit or
    /// its provisioned-token budget; every request — even one stuck
    /// behind chunked long prompts — finishes (no starvation); goodput
    /// never exceeds generation and deadline-free requests never
    /// violate. With preemption off, no admitted request ever leaves
    /// the batch before finishing.
    #[test]
    fn serving_invariants_hold_under_any_interleaving(
        seed in any::<u64>(),
        max_batch in 1usize..5,
        budget in 400usize..1200,
        policy_idx in 0usize..PolicyKind::all().len(),
        preempt in any::<bool>(),
        prefill_chunk in 0usize..6,
        priced in any::<bool>(),
        reject in any::<bool>(),
        ops in prop::collection::vec(0u8..4, 4..32),
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        let mut builder = ServingEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(max_batch)
            .max_batch_tokens(budget)
            .prefill_factor(if priced { 1.0 } else { 0.0 })
            .prefill_chunk_pages(prefill_chunk)
            .reject_expired_ttft(reject)
            .seed(seed)
            .policy(policy);
        if preempt {
            builder = builder.enable_preemption();
        }
        let mut engine = builder.build();

        let mut next_id = 0u64;
        let check_step = |engine: &ServingEngine, report: Option<topick_accel::StepReport>| {
            prop_assert!(engine.running() <= max_batch);
            if let Some(s) = report {
                prop_assert!(s.batch <= max_batch, "{policy}: batch over slots");
                prop_assert!(
                    s.context_tokens <= budget,
                    "{policy}: {} context tokens over budget {budget}",
                    s.context_tokens
                );
            }
        };
        // Random interleaving: op 0 enqueues (with randomized shape,
        // priority, client, arrival and — on half the requests — SLO
        // deadlines), anything else steps once.
        for (i, op) in ops.iter().enumerate() {
            if *op == 0 {
                let mix = seed.wrapping_mul(31).wrapping_add(i as u64);
                let mut req = ServingRequest::new(
                    next_id,
                    4 + (mix % 48) as usize,
                    1 + (mix % 5) as usize,
                )
                .with_priority((mix % 7) as u8)
                .with_client(mix % 3)
                .arriving_at(mix % 6);
                if mix.is_multiple_of(2) {
                    req = req
                        .with_ttft_deadline(1 + mix % 9)
                        .with_itl_deadline(1 + mix % 4);
                }
                engine.enqueue(req).expect("request fits the budget alone");
                next_id += 1;
            } else {
                let report = engine.step().expect("step succeeds");
                check_step(&engine, report);
            }
        }
        // Drain the rest, checking every remaining step.
        let mut guard = 0;
        while !engine.is_idle() {
            let report = engine.step().expect("step succeeds");
            check_step(&engine, report);
            guard += 1;
            prop_assert!(guard < 4096, "engine failed to drain");
        }

        let report = engine.report();
        prop_assert_eq!(report.requests.len(), next_id as usize);
        // A rejected request never admits, never decodes, and always
        // carries a blown deadline; without the flag nothing is rejected.
        let rejected: std::collections::HashSet<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Rejected { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        if !reject {
            prop_assert!(rejected.is_empty(), "rejection fired with the flag off");
            prop_assert_eq!(report.rejections, 0);
        }
        prop_assert_eq!(report.rejections, rejected.len());
        if !preempt {
            // Never-evict guarantee: no preemption events, one admission
            // per request, and every admitted request ran to its target.
            prop_assert_eq!(report.preemptions, 0);
            for r in &report.requests {
                prop_assert_eq!(r.preemptions, 0);
                let admissions = engine
                    .events()
                    .iter()
                    .filter(|e| matches!(e, ServeEvent::Admitted { id, .. } if *id == r.id))
                    .count();
                let expected = usize::from(!rejected.contains(&r.id));
                prop_assert_eq!(admissions, expected, "request {} admissions", r.id);
            }
        }
        for r in &report.requests {
            if rejected.contains(&r.id) {
                prop_assert_eq!(r.generated, 0, "rejected request {} decoded", r.id);
                prop_assert_eq!(r.good_tokens, 0);
                prop_assert!(r.slo_violated, "a reject is a blown deadline");
                prop_assert!(r.has_deadline(), "deadline-free request rejected");
                prop_assert!(r.finished_at.is_some());
                continue;
            }
            // No starvation: whatever the chunk budget did to scheduling,
            // every request ran to completion.
            prop_assert!(r.generated >= 1);
            prop_assert!(r.finished_at.is_some());
            // SLO accounting: goodput never exceeds generation, a blown
            // deadline implies a deadline existed, and deadline-free
            // requests count every token as good.
            prop_assert!(r.good_tokens <= r.generated);
            if r.has_deadline() {
                prop_assert!(r.slo_violated || r.good_tokens == r.generated);
            } else {
                prop_assert!(!r.slo_violated, "deadline-free request violated");
                prop_assert_eq!(r.good_tokens, r.generated);
            }
        }
    }

    /// KV page accounting never leaks: at every point of any interleaving
    /// of enqueue/step — any policy, preemption, retention and prefix
    /// caching included — the distinct pages mapped by requests (running,
    /// or retained by queued preemption victims), the refcount-0 cached
    /// pages and the free list exactly partition the pager's capacity
    /// (with every refcount equal to its table mappings, per
    /// `KvPager::validate`), and a drained engine unmaps every page.
    /// Finite chunk budgets put requests mid-prefill across many steps —
    /// and under eviction with partially built prompts — so the oracle
    /// also covers the prefill frontier's page accounting.
    #[test]
    fn kv_page_accounting_never_leaks(
        seed in any::<u64>(),
        max_batch in 1usize..5,
        budget in 400usize..1200,
        page_size in 1usize..48,
        policy_idx in 0usize..PolicyKind::all().len(),
        retention_idx in 0usize..4,
        prefix_cache in any::<bool>(),
        prefill_chunk in 0usize..4,
        host_tier_idx in 0usize..3,
        ops in prop::collection::vec(0u8..4, 4..32),
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let retention = [
            RetentionPolicy::None,
            RetentionPolicy::Pages(1),
            RetentionPolicy::Pages(3),
            RetentionPolicy::Fraction(0.5),
        ][retention_idx];
        // Host tier off, tight (forces partial swaps) and roomy.
        let host_pages = [0usize, 2, 64][host_tier_idx];
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        let mut engine = ServingEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(max_batch)
            .max_batch_tokens(budget)
            .page_size(page_size)
            .seed(seed)
            .prefix_cache(prefix_cache)
            .prefill_factor(if prefix_cache { 1.0 } else { 0.0 })
            .prefill_chunk_pages(prefill_chunk)
            .host_pages(host_pages)
            .swap_cost_factor(0.25)
            .policy(policy)
            .enable_preemption()
            .retention(retention)
            .build();

        let check_pager = |engine: &ServingEngine| {
            let pager = engine.kv_pager();
            pager.validate();
            // The device tiers partition capacity; the host tier holds
            // swapped *contents*, never device pages, so it adds nothing
            // to the partition and never exceeds its own bound.
            assert_eq!(
                pager.allocated_pages() + pager.cached_pages() + pager.free_pages(),
                pager.total_pages(),
                "page leak under {policy} / {retention:?} / cache {prefix_cache}"
            );
            assert!(
                pager.host_pages_used() <= pager.host_capacity(),
                "host tier over capacity under {policy} / {retention:?}"
            );
            assert!(
                host_pages > 0 || pager.host_pages_used() == 0,
                "disabled host tier holding pages under {policy}"
            );
        };
        let mut next_id = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if *op == 0 {
                let mix = seed.wrapping_mul(31).wrapping_add(i as u64);
                // A couple of shared prefix pools so adoption genuinely
                // happens (page-aligned halves of the prompts).
                let req = ServingRequest::new(
                    next_id,
                    4 + (mix % 48) as usize,
                    1 + (mix % 5) as usize,
                )
                .with_priority((mix % 7) as u8)
                .with_client(mix % 3)
                .with_shared_prefix(mix % 2, page_size * ((mix % 4) as usize))
                .arriving_at(mix % 6);
                if engine.enqueue(req).is_ok() {
                    next_id += 1;
                }
            } else {
                engine.step().expect("step succeeds");
            }
            check_pager(&engine);
        }
        let mut guard = 0;
        while !engine.is_idle() {
            engine.step().expect("step succeeds");
            check_pager(&engine);
            guard += 1;
            prop_assert!(guard < 4096, "engine failed to drain");
        }
        // Idle engine: nothing stays mapped. Without the cache every page
        // is back on the free list; with it, pages are free or cached —
        // and every host-tier holding was copied back or discarded.
        prop_assert_eq!(engine.kv_pager().allocated_pages(), 0);
        prop_assert_eq!(engine.kv_pager().host_pages_used(), 0);
        if !prefix_cache {
            prop_assert_eq!(engine.kv_pager().cached_pages(), 0);
        }
        prop_assert_eq!(
            engine.kv_pager().free_pages() + engine.kv_pager().cached_pages(),
            engine.kv_pager().total_pages()
        );
        prop_assert_eq!(engine.report().requests.len(), next_id as usize);
    }

    /// Refcounted pager conservation, driven directly: under arbitrary
    /// interleavings of admit (reserve), share (register + adopt by a
    /// second owner), fork (adopt), retire (release), preempt (truncate)
    /// and reclaim (cache eviction inside reserve), the sum of reachable
    /// refcounts matches the owner tables, no page is double-freed, no
    /// page is owned by zero holders while marked allocated, and
    /// allocated + cached + free always equals capacity
    /// (`KvPager::validate` checks all of it after every operation).
    #[test]
    fn refcounted_pager_conserves_under_any_op_sequence(
        seed in any::<u64>(),
        page_size in 1usize..24,
        budget in 100usize..800,
        cache_enabled in any::<bool>(),
        host_cap in 0usize..6,
        ops in prop::collection::vec(0u8..11, 4..64),
    ) {
        const OWNERS: u64 = 5;
        let mut pager = KvPager::new(page_size, budget)
            .with_prefix_cache(cache_enabled)
            .with_host_tier(host_cap);
        // Three content chains of up to 4 pages each; chains share no keys.
        let chains: Vec<Vec<u64>> = (0..3u64)
            .map(|c| (0..4).map(|p| c * 100 + p + 1).collect())
            .collect();
        for (i, op) in ops.iter().enumerate() {
            let mix = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            let owner = mix % OWNERS;
            let chain = &chains[(mix >> 8) as usize % chains.len()];
            let chain_len = 1 + (mix >> 16) as usize % chain.len();
            let tokens = 1 + (mix >> 24) as usize % (budget / 2);
            match op {
                0..=2 => {
                    // Admit: reserve gated exactly like the engine.
                    if pager.can_reserve(owner, tokens) {
                        pager.reserve(owner, tokens);
                    }
                }
                3 => pager.register_prefix(owner, &chain[..chain_len]),
                4 => {
                    // Fork/share: adopt a prefix, then cover it like a
                    // real admission would.
                    let (hits, _) = pager.adoptable(owner, chain);
                    if hits > 0 {
                        pager.adopt_prefix(owner, chain);
                    }
                }
                5 => {
                    // Preempt: truncate to an arbitrary retained prefix.
                    let keep = (mix >> 16) as usize % (pager.pages_of(owner) + 1);
                    pager.truncate(owner, keep);
                }
                6 | 7 => {
                    // Retire / reclaim retained pages.
                    pager.release(owner);
                }
                8 => {
                    // Swap out: dropped contents move to the bounded host
                    // tier; the grant never exceeds the remaining room.
                    let want = 1 + (mix >> 16) as usize % 4;
                    let room = host_cap - pager.host_pages_used();
                    let granted = pager.swap_out(owner, want);
                    prop_assert!(granted <= want.min(room), "over-granted swap");
                }
                9 => {
                    // Copy-back on re-admission empties the owner's holding.
                    let held = pager.host_pages_of(owner);
                    prop_assert_eq!(pager.swap_in(owner), held);
                    prop_assert_eq!(pager.host_pages_of(owner), 0);
                }
                _ => {
                    // Retire without copy-back (the owner finished or was
                    // rejected while swapped out).
                    pager.host_discard(owner);
                    prop_assert_eq!(pager.host_pages_of(owner), 0);
                }
            }
            pager.validate();
        }
        // Releasing every owner (device and host tiers) unmaps everything.
        for owner in 0..OWNERS {
            pager.release(owner);
            pager.host_discard(owner);
        }
        pager.validate();
        prop_assert_eq!(pager.allocated_pages(), 0);
        prop_assert_eq!(pager.mapped_pages(), 0);
        prop_assert_eq!(pager.host_pages_used(), 0);
        if !cache_enabled {
            prop_assert_eq!(pager.free_pages(), pager.total_pages());
        }
    }

    /// Cluster conservation: under arbitrary enqueue/step interleavings —
    /// any shard count, worker thread count (1 = sequential through more
    /// threads than shards), routing policy, scheduler policy, chunked-
    /// prefill budget, stealing and preemption on or off — no request is
    /// lost, duplicated, or decoded
    /// on two shards; every shard's pager satisfies its conservation
    /// oracle at the end and drains to nothing allocated; shards stay in
    /// lockstep with the cluster clock; and with stealing off every
    /// request finishes on the shard it was routed to.
    #[test]
    fn cluster_conserves_requests_across_shards(
        seed in any::<u64>(),
        shards in 1usize..5,
        routing_idx in 0usize..3,
        stealing in any::<bool>(),
        policy_idx in 0usize..PolicyKind::all().len(),
        preempt in any::<bool>(),
        prefill_chunk in 0usize..3,
        threads in 1usize..6,
        tiered in any::<bool>(),
        ops in prop::collection::vec(0u8..4, 4..28),
    ) {
        let routing = RoutingKind::all()[routing_idx];
        let policy = PolicyKind::all()[policy_idx];
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        let mut builder = ClusterEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(2)
            .max_batch_tokens(400)
            .page_size(16)
            .seed(seed)
            .prefix_cache(true)
            .prefill_factor(1.0)
            .prefill_chunk_pages(prefill_chunk)
            .policy(policy)
            .shards(shards)
            .routing(routing)
            .stealing(stealing)
            .threads(threads);
        if tiered {
            // The tiered dimensions: a bounded host swap tier and priced
            // cross-shard page shipping on top of the same invariants.
            builder = builder
                .host_pages(32)
                .swap_cost_factor(0.25)
                .ship_cost_factor(0.25);
        }
        if preempt {
            builder = builder
                .enable_preemption()
                .retention(RetentionPolicy::Fraction(0.5));
        }
        let mut cluster = builder.build();

        let mut next_id = 0u64;
        let mut routed: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if *op == 0 {
                let mix = seed.wrapping_mul(31).wrapping_add(i as u64);
                let req = ServingRequest::new(
                    next_id,
                    4 + (mix % 48) as usize,
                    1 + (mix % 5) as usize,
                )
                .with_priority((mix % 7) as u8)
                .with_client(mix % 3)
                .with_shared_prefix(mix % 2, 16 * ((mix % 3) as usize))
                .arriving_at(mix % 6);
                let shard = cluster.enqueue(req).expect("request fits any shard alone");
                prop_assert!(shard < shards);
                routed.insert(next_id, shard);
                next_id += 1;
            } else {
                cluster.step().expect("step succeeds");
            }
        }
        let mut guard = 0;
        while !cluster.is_idle() {
            cluster.step().expect("step succeeds");
            guard += 1;
            prop_assert!(guard < 4096, "cluster failed to drain");
        }

        let report = cluster.report();
        // No request lost or duplicated: the finished ids across all
        // shards are exactly the enqueued ids, each exactly once.
        let mut finished: Vec<u64> = report.requests().map(|(_, r)| r.id).collect();
        finished.sort_unstable();
        let mut expected: Vec<u64> = (0..next_id).collect();
        expected.sort_unstable();
        prop_assert_eq!(finished, expected, "requests lost or duplicated");
        // No request ever decodes on two shards — unless shipping
        // migrated it (a `Shipped` event for that id), in which case the
        // shard may change but each id still decodes on one shard at a
        // time, never two in the same step.
        let shipped_ids: std::collections::HashSet<u64> = cluster
            .events()
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::Shipped { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let mut decode_shard: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        let mut decode_step: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new();
        for e in cluster.events() {
            if let ClusterEvent::Shard {
                shard_id,
                event: ServeEvent::TokenGenerated { id, step, .. },
            } = e
            {
                let prev = decode_shard.insert(*id, *shard_id);
                prop_assert!(
                    prev.is_none() || prev == Some(*shard_id) || shipped_ids.contains(id),
                    "request {} decoded on shards {:?} and {} without a ship",
                    id,
                    prev,
                    shard_id
                );
                if let Some((s, shard)) = decode_step.insert(*id, (*step, *shard_id)) {
                    prop_assert!(
                        s != *step || shard == *shard_id,
                        "request {} decoded on two shards in step {}",
                        id,
                        step
                    );
                }
            }
        }
        if !tiered {
            prop_assert!(shipped_ids.is_empty(), "shipping fired with the tier off");
            prop_assert_eq!(report.ships, 0);
        }
        // With stealing off, every request finishes on its routed shard.
        if !stealing {
            prop_assert_eq!(report.steals, 0);
            for (shard, r) in report.requests() {
                prop_assert_eq!(
                    shard,
                    routed[&r.id],
                    "request {} finished off its routed shard",
                    r.id
                );
            }
        }
        // Every shard's pager conserves and drains; shards kept lockstep.
        for i in 0..cluster.shard_count() {
            let pager = cluster.shard(i).kv_pager();
            pager.validate();
            prop_assert_eq!(pager.allocated_pages(), 0);
            prop_assert_eq!(report.shards[i].steps.len(), report.cluster_steps);
        }
    }

    /// At any truncation point of any tiered cluster run — mid-prefill,
    /// mid-decode, before the first completion — the admission-normalized
    /// prefix hit rate stays inside [0, 1]. The old finished-only
    /// normalization could pin it to 0.0 with hits already landed; a
    /// demand derived from anything narrower than admissions could push
    /// it past 1.
    #[test]
    fn truncated_run_prefix_hit_rate_stays_in_unit_range(
        seed in any::<u64>(),
        shards in 1usize..4,
        cutoff in 1usize..40,
        tiered in any::<bool>(),
    ) {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        let mut builder = ClusterEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(2)
            .max_batch_tokens(600)
            .page_size(16)
            .seed(seed)
            .prefix_cache(true)
            .prefill_factor(1.0)
            .shards(shards)
            .routing(RoutingKind::PrefixAffinity);
        if tiered {
            builder = builder
                .host_pages(16)
                .swap_cost_factor(0.25)
                .ship_cost_factor(0.25);
        }
        let mut cluster = builder.build();
        for i in 0..10u64 {
            let mix = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i);
            cluster
                .enqueue(
                    ServingRequest::new(i, 32 + (mix % 64) as usize, 4 + (mix % 16) as usize)
                        .with_shared_prefix(i % 2, 32)
                        .arriving_at(mix % 8),
                )
                .expect("valid request");
        }
        for _ in 0..cutoff {
            let rate = cluster.report().prefix_hit_rate();
            prop_assert!(
                (0.0..=1.0).contains(&rate),
                "truncated hit rate {} left the unit range",
                rate
            );
            if cluster.step().expect("step succeeds").is_none() {
                break;
            }
        }
        let mut guard = 0;
        while !cluster.is_idle() {
            cluster.step().expect("step succeeds");
            guard += 1;
            prop_assert!(guard < 4096, "cluster failed to drain");
        }
        let rate = cluster.report().prefix_hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate), "drained hit rate {}", rate);
    }

    /// Chunk charges telescope exactly: for any workload of priced
    /// prompts, any policy and any finite chunk budget, splitting
    /// prefill across steps leaves every request's generated tokens,
    /// total prefill bill and decode attention identical to the one-lump
    /// run — and the chunk events walk each prompt's frontier
    /// monotonically without ever reaching the boundary (the completing
    /// step decodes instead).
    #[test]
    fn chunked_prefill_telescopes_to_the_lump_bill(
        seed in any::<u64>(),
        n in 2usize..8,
        max_batch in 1usize..4,
        chunk in 1usize..8,
        policy_idx in 0usize..PolicyKind::all().len(),
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let requests: Vec<ServingRequest> = (0..n as u64)
            .map(|id| {
                let mix = seed.wrapping_mul(0x9E37_79B9).wrapping_add(id * 0x85EB_CA6B);
                ServingRequest::new(id, 16 + (mix % 200) as usize, 1 + (mix % 4) as usize)
                    .arriving_at(mix % 5)
            })
            .collect();
        let run = |chunk_pages: usize| {
            let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
            let mut engine = ServingEngine::builder(accel)
                .heads(2)
                .weight_bytes(1_000_000)
                .max_batch(max_batch)
                .max_batch_tokens(2048)
                .page_size(16)
                .prefill_factor(1.0)
                .prefill_chunk_pages(chunk_pages)
                .seed(seed)
                .policy(policy)
                .build();
            for r in &requests {
                engine.enqueue(*r).expect("request fits the budget alone");
            }
            let report = engine.run_to_completion(8192).expect("completes");
            let events = engine.drain_events();
            (report, events)
        };
        let (lump, _) = run(0);
        let (split, events) = run(chunk);
        prop_assert_eq!(lump.tokens_generated, split.tokens_generated);
        for a in &lump.requests {
            let b = split
                .requests
                .iter()
                .find(|r| r.id == a.id)
                .expect("request finished under chunking");
            prop_assert_eq!(a.generated, b.generated, "request {} tokens", a.id);
            prop_assert_eq!(
                a.prefill_cycles,
                b.prefill_cycles,
                "request {} chunk charges must telescope to the lump",
                a.id
            );
            prop_assert_eq!(
                a.attention_cycles,
                b.attention_cycles,
                "request {} decode attention",
                a.id
            );
        }
        let mut frontier: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for e in &events {
            if let ServeEvent::PrefillChunk { id, built_tokens, remaining_tokens, .. } = e {
                let prompt = requests[*id as usize].prompt_len;
                prop_assert_eq!(
                    built_tokens + remaining_tokens,
                    prompt,
                    "request {} frontier must tile the prompt",
                    id
                );
                let prev = frontier.insert(*id, *built_tokens).unwrap_or(0);
                prop_assert!(*built_tokens > prev, "request {} frontier stalled", id);
                prop_assert!(*built_tokens < prompt, "a completing chunk decodes instead");
            }
        }
    }

    /// Baseline output equals exact attention for any workload.
    #[test]
    fn scenario_record_replay_is_a_fixed_point_at_any_seed(
        kind_idx in 0usize..ScenarioKind::all().len(),
        scenario_seed in any::<u64>(),
        policy_idx in 0usize..PolicyKind::all().len(),
    ) {
        // Every scenario at an arbitrary seed, on a 2-shard cluster with
        // least-loaded routing and stealing (the placement machinery most
        // sensitive to event ordering): record → replay → record must
        // reproduce the trace exactly.
        let kind = ScenarioKind::all()[kind_idx];
        let policy = PolicyKind::all()[policy_idx];
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("valid threshold");
        let cfg = kind.build().serving_config(accel);
        let meta = TraceMeta::new(&cfg, policy.name())
            .for_scenario(kind.name(), scenario_seed)
            .for_cluster(2, RoutingKind::LeastLoaded.name(), true, 1);
        let requests = kind.build().generate(scenario_seed);
        let (first, _) = run_recorded(&meta, &requests).expect("record");
        let (second, _) = first.replay().expect("replay");
        prop_assert_eq!(first.digest, second.digest, "{}/{}", kind, policy);
        prop_assert_eq!(&first.events, &second.events, "{}/{}", kind, policy);
    }

    #[test]
    fn baseline_always_exact(seed in any::<u64>(), n in 1usize..64) {
        let dim = 64;
        let (q, keys, values) = random_instance(seed, n, dim);
        let r = ToPickAccelerator::new(AccelConfig::baseline())
            .run_attention(&q, &keys, Rows::new(&values, dim))
            .expect("run");
        let probs = exact_probabilities(&q, &keys);
        let pairs: Vec<(usize, f64)> = probs.into_iter().enumerate().collect();
        let expect = topick_core::weighted_value_sum(&pairs, Rows::new(&values, dim));
        for (a, b) in r.output.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
        prop_assert_eq!(r.kept.len(), n);
    }
}
