//! # topick-accel
//!
//! A cycle-level simulator of the **ToPick** accelerator (paper §4) and its
//! no-pruning baseline: 16 PE lanes fed by 8-channel HBM2, with the Margin
//! Generator, Scoreboard, RPDU, PEC and DAG modules implementing
//! probability estimation and out-of-order score calculation.
//!
//! Four pipeline variants are modeled (see [`AccelMode`]):
//!
//! | mode | K traffic | V traffic | latency hiding |
//! |---|---|---|---|
//! | `Baseline` | full | full | n/a |
//! | `EstimateOnly` | full | pruned | n/a (no on-demand requests) |
//! | `OutOfOrder` | chunked on-demand | pruned | out-of-order scoreboard |
//! | `Blocking` | chunked on-demand | pruned | none (ablation) |
//!
//! ## Example
//!
//! ```
//! use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
//! use topick_core::{PrecisionConfig, QMatrix, QVector, Rows};
//!
//! let pc = PrecisionConfig::paper();
//! let query = QVector::quantize(&vec![0.4; 64], pc);
//! let rows: Vec<f32> = (0..64).flat_map(|i| vec![(i as f32 - 32.0) / 40.0; 64]).collect();
//! let keys = QMatrix::quantize_flat(&rows, 64, pc)?;
//! let values = vec![0.5f32; 64 * 64];
//!
//! let baseline = ToPickAccelerator::new(AccelConfig::baseline())
//!     .run_attention(&query, &keys, Rows::new(&values, 64))?;
//! let topick = ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?)
//!     .run_attention(&query, &keys, Rows::new(&values, 64))?;
//! println!("speedup: {:.2}x", topick.speedup_vs(&baseline));
//! # Ok::<(), topick_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod batch;
pub mod config;
pub mod engine;
pub mod generation;
pub mod layout;
pub mod prompt;
pub mod result;
pub mod serve;

pub use backend::SimulatedAttention;
pub use batch::{
    compare_batch_step, simulate_batch_step, weight_stream_cycles, BatchStepParams, BatchStepResult,
};
pub use config::{AccelConfig, AccelMode};
pub use engine::ToPickAccelerator;
pub use generation::{GenerationConfig, GenerationRunResult, GenerationSimulator};
pub use layout::KvLayout;
pub use prompt::{run_prompt_phase, PromptPhaseResult};
pub use result::AttentionStepResult;
pub use serve::{
    run_token_backed, AdmissionConfig, ClusterEngine, ClusterEngineBuilder, ClusterEvent,
    ClusterReport, ClusterStepReport, FairRoundRobin, Fifo, KvPager, PendingView, PolicyKind,
    PreemptionConfig, PriorityAging, RequestStats, RetentionPolicy, RoutingKind, RoutingPolicy,
    RunReport, RunningView, Scenario, ScenarioKind, SchedulerPolicy, ServeError, ServeEvent,
    ServingConfig, ServingEngine, ServingEngineBuilder, ServingReport, ServingRequest,
    SessionStats, ShardView, ShortestJobFirst, SloAware, StepReport, TokenBackedBatch,
    TokenBackedRun, Trace, TraceError, TraceMeta, TraceRecorder, TraceReplay,
};
