//! Result type of one simulated attention step.

use topick_core::PruneStats;
use topick_dram::DramStats;
use topick_energy::{EnergyBreakdown, EventCounts};

/// Everything one accelerator run produces: functional output, cycle count,
/// access statistics, event counts and the energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionStepResult {
    /// Accelerator cycles (500 MHz domain) for step 0 + step 1.
    pub cycles: u64,
    /// The attention output vector `o_t`.
    pub output: Vec<f32>,
    /// Indices of tokens whose V contributed (ascending).
    pub kept: Vec<usize>,
    /// Pruning / chunk-fetch statistics.
    pub prune: PruneStats,
    /// On-chip event counts.
    pub events: EventCounts,
    /// DRAM statistics of this run.
    pub dram_stats: DramStats,
    /// Elapsed DRAM clock cycles.
    pub dram_cycles: u64,
    /// Energy breakdown (DRAM / buffer / compute).
    pub energy: EnergyBreakdown,
}

impl AttentionStepResult {
    /// Speedup of this run relative to `baseline` (baseline cycles divided
    /// by this run's cycles).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &AttentionStepResult) -> f64 {
        if self.cycles == 0 {
            return f64::INFINITY;
        }
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy-efficiency gain relative to `baseline` (baseline energy
    /// divided by this run's energy).
    #[must_use]
    pub fn energy_gain_vs(&self, baseline: &AttentionStepResult) -> f64 {
        let own = self.energy.total_pj();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        baseline.energy.total_pj() / own
    }
}
