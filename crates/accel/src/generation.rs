//! A generation-phase driver: sweeps the accelerator over a whole
//! multi-step, multi-head generation run, including the KV-append write
//! traffic each new token produces.
//!
//! This is what the Fig. 10 evaluation measures in aggregate; the driver
//! exposes it as a reusable simulation with per-step results.

use topick_core::{CoreError, PrecisionConfig, PruneStats, QMatrix, QVector, Rows};
use topick_dram::DramSim;
use topick_energy::{EnergyBreakdown, EventCounts};

use crate::config::AccelConfig;
use crate::engine::ToPickAccelerator;

/// Configuration of a generation-phase sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationConfig {
    /// Accelerator configuration (mode, threshold, geometry).
    pub accel: AccelConfig,
    /// Prompt length (context at step 0).
    pub prompt_len: usize,
    /// Number of generation steps to simulate.
    pub steps: usize,
    /// Heads simulated per step (each gets an independent instance).
    pub heads: usize,
    /// Whether to model the KV-append write traffic of each new token.
    pub model_kv_writes: bool,
}

/// Aggregate result of a generation-phase sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRunResult {
    /// Total accelerator cycles (attention steps + KV-append writes).
    pub cycles: u64,
    /// Aggregate pruning statistics over all (step, head) pairs.
    pub prune: PruneStats,
    /// Aggregate on-chip event counts.
    pub events: EventCounts,
    /// Aggregate energy.
    pub energy: EnergyBreakdown,
    /// Cycles spent on KV-append writes.
    pub write_cycles: u64,
    /// Bytes written for KV appends.
    pub kv_write_bytes: u64,
    /// Per-step attention cycles (summed over heads).
    pub per_step_cycles: Vec<u64>,
}

impl GenerationRunResult {
    /// Mean attention cycles per generation step.
    #[must_use]
    pub fn mean_step_cycles(&self) -> f64 {
        if self.per_step_cycles.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.per_step_cycles.iter().sum();
        sum as f64 / self.per_step_cycles.len() as f64
    }
}

/// The generation-phase simulator.
///
/// Workload instances are produced by a caller-supplied factory so the
/// driver stays decoupled from any particular synthetic distribution:
/// `instance(step, head, context_len)` must return `(query, keys, values)`
/// with `keys.num_tokens() == context_len` and `values` a contiguous
/// row-major buffer of the same shape.
#[derive(Debug, Clone)]
pub struct GenerationSimulator {
    cfg: GenerationConfig,
}

impl GenerationSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len`, `steps` or `heads` is zero.
    #[must_use]
    pub fn new(cfg: GenerationConfig) -> Self {
        assert!(cfg.prompt_len > 0, "prompt_len must be positive");
        assert!(cfg.steps > 0, "steps must be positive");
        assert!(cfg.heads > 0, "heads must be positive");
        Self { cfg }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GenerationConfig {
        &self.cfg
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from malformed instances produced by the
    /// factory (dimension mismatches, empty key sets).
    pub fn run<F>(&self, mut instance: F) -> Result<GenerationRunResult, CoreError>
    where
        F: FnMut(usize, usize, usize) -> (QVector, QMatrix, Vec<f32>),
    {
        let accel = ToPickAccelerator::new(self.cfg.accel.clone());
        let pc: PrecisionConfig = self.cfg.accel.precision;
        let mut prune = PruneStats::new(0, pc.num_chunks());
        let mut events = EventCounts::default();
        let mut energy = EnergyBreakdown::default();
        let mut cycles = 0u64;
        let mut per_step_cycles = Vec::with_capacity(self.cfg.steps);

        for step in 0..self.cfg.steps {
            let ctx = self.cfg.prompt_len + step;
            let mut step_cycles = 0u64;
            for head in 0..self.cfg.heads {
                let (q, keys, values) = instance(step, head, ctx);
                let r = accel.run_attention(&q, &keys, Rows::new(&values, keys.dim()))?;
                step_cycles += r.cycles;
                prune.merge(&r.prune);
                events.merge(&r.events);
                energy.dram_pj += r.energy.dram_pj;
                energy.buffer_pj += r.energy.buffer_pj;
                energy.compute_pj += r.energy.compute_pj;
            }
            per_step_cycles.push(step_cycles);
            cycles += step_cycles;
        }

        // KV-append writes: each step stores the new token's K and V rows
        // for every head.
        let mut write_cycles = 0u64;
        let mut kv_write_bytes = 0u64;
        if self.cfg.model_kv_writes {
            let row_bytes = (self.cfg.accel.dim as u64 * u64::from(pc.total_bits())).div_ceil(8);
            let burst = u64::from(self.cfg.accel.dram.access_bytes);
            let bursts_per_step = 2 * self.cfg.heads as u64 * row_bytes.div_ceil(burst); // K + V
            let mut dram = DramSim::new(self.cfg.accel.dram.clone());
            let total_bursts = bursts_per_step * self.cfg.steps as u64;
            let mut issued = 0u64;
            let mut addr = 0u64;
            while issued < total_bursts || !dram.is_idle() {
                while issued < total_bursts && dram.try_enqueue_write(issued, addr) {
                    issued += 1;
                    addr += burst;
                }
                dram.tick();
                while dram.pop_completed().is_some() {}
            }
            write_cycles = dram.cycle().div_ceil(self.cfg.accel.clock_ratio);
            kv_write_bytes = total_bursts * burst;
            energy.dram_pj += dram.stats().energy_pj(&self.cfg.accel.dram, dram.cycle());
            cycles += write_cycles;
        }

        Ok(GenerationRunResult {
            cycles,
            prune,
            events,
            energy,
            write_cycles,
            kv_write_bytes,
            per_step_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;

    fn synthetic_factory(
        seed: u64,
    ) -> impl FnMut(usize, usize, usize) -> (QVector, QMatrix, Vec<f32>) {
        move |step, head, ctx| {
            let pc = PrecisionConfig::paper();
            let profile = topick_model::SynthProfile::realistic(ctx, 64);
            let inst = topick_model::SynthInstance::generate(
                &profile,
                seed.wrapping_add(step as u64 * 1009)
                    .wrapping_add(head as u64 * 131),
            );
            (
                QVector::quantize(&inst.query, pc),
                QMatrix::quantize_flat(inst.keys().data(), 64, pc).expect("non-empty"),
                inst.into_values(),
            )
        }
    }

    #[test]
    fn sweep_aggregates_every_step_and_head() {
        let cfg = GenerationConfig {
            accel: AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap(),
            prompt_len: 32,
            steps: 4,
            heads: 2,
            model_kv_writes: false,
        };
        let r = GenerationSimulator::new(cfg)
            .run(synthetic_factory(1))
            .unwrap();
        // Tokens processed: sum over steps of heads * (prompt + step).
        let expect: usize = (0..4).map(|s| 2 * (32 + s)).sum();
        assert_eq!(r.prune.tokens, expect);
        assert_eq!(r.per_step_cycles.len(), 4);
        assert!(r.cycles > 0);
        assert_eq!(r.write_cycles, 0);
    }

    #[test]
    fn kv_writes_add_cycles_and_bytes() {
        let base = GenerationConfig {
            accel: AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap(),
            prompt_len: 32,
            steps: 4,
            heads: 2,
            model_kv_writes: false,
        };
        let with_writes = GenerationConfig {
            model_kv_writes: true,
            ..base.clone()
        };
        let a = GenerationSimulator::new(base)
            .run(synthetic_factory(2))
            .unwrap();
        let b = GenerationSimulator::new(with_writes)
            .run(synthetic_factory(2))
            .unwrap();
        assert!(b.cycles > a.cycles);
        assert!(b.write_cycles > 0);
        // 2 rows (K+V) x 2 heads x 96 bytes x 4 steps.
        assert_eq!(b.kv_write_bytes, 2 * 2 * 96 * 4);
        assert!(b.energy.total_pj() > a.energy.total_pj());
    }

    #[test]
    fn baseline_sweep_is_slower_than_topick_sweep() {
        // Contexts must be long enough for out-of-order execution to have
        // something to overlap (the paper evaluates at 1024-2048); with a
        // handful of tokens per lane the round-trip latency dominates.
        let mk = |mode| GenerationConfig {
            accel: AccelConfig::paper(mode, 1e-3).unwrap(),
            prompt_len: 256,
            steps: 2,
            heads: 1,
            model_kv_writes: true,
        };
        let base = GenerationSimulator::new(mk(AccelMode::Baseline))
            .run(synthetic_factory(3))
            .unwrap();
        let topick = GenerationSimulator::new(mk(AccelMode::OutOfOrder))
            .run(synthetic_factory(3))
            .unwrap();
        assert!(topick.cycles < base.cycles);
        assert!(topick.mean_step_cycles() < base.mean_step_cycles());
    }
}
