//! Multi-request serving with continuous batching — the paper's batched
//! generation motivation (§2.2.1) turned into an executable engine, with
//! the *scheduling* answers (who runs next, who gets evicted) factored out
//! behind a policy API.
//!
//! A [`ServingEngine`] owns an arrival queue and a running batch. Every
//! engine step models one batched decode iteration:
//!
//! 1. **Admission**: a [`SchedulerPolicy`] picks queued requests to join
//!    the batch; the engine enforces the invariants — a free slot *and*
//!    enough free KV pages for the request's final context. The KV token
//!    budget ([`AdmissionConfig`]) is carved into fixed-size pages by a
//!    [`KvPager`], the same paged-allocation guardrail a production
//!    scheduler uses to bound KV-cache memory (fragmentation from
//!    partially-filled tail pages included). With
//!    [`prefix_cache`](AdmissionConfig::prefix_cache) on, a candidate
//!    whose prompt shares a full-page-aligned prefix with pages already
//!    resident adopts them copy-on-write instead of re-allocating, and
//!    prompt prefill ([`prefill_factor`](ServingConfig::prefill_factor))
//!    is charged only for the unshared suffix. Under pressure, and only
//!    when [`PreemptionConfig`] allows it, the policy may evict a running
//!    request back to the queue; a configurable [`RetentionPolicy`] keeps
//!    a prefix of the victim's pages allocated, so re-admission only
//!    re-prefills the dropped suffix — and the re-prefill charge to the
//!    step model scales with what was actually dropped, so eviction is
//!    never free but retention makes it cheaper. Shared pages are never
//!    reclaimed out from under a second owner.
//! 2. **Weight streaming**: the FC/FFN weights stream from DRAM once and
//!    are shared by every request in the batch
//!    ([`weight_stream_cycles`]).
//! 3. **Attention**: each request streams its own KV cache through the
//!    cycle-level simulator at its own context length — heterogeneous
//!    contexts batch together, exactly the regime where Token-Picker's
//!    pruning pays off hardest.
//! 4. **Retirement**: requests that reached their token target leave the
//!    batch, freeing budget for the queue at the *next* step — continuous
//!    batching rather than batch-synchronous scheduling.
//!
//! Progress is observable per token through a typed event stream
//! ([`ServeEvent`]) and per request through [`SessionStats`] (queue wait,
//! time-to-first-token, decode steps), not only through the final
//! [`ServingReport`].
//!
//! The per-request attention cost is measured (not modeled): one
//! cycle-level simulation per request per step on a synthetic instance of
//! the request's current context, scaled by the model's head count.

pub mod batch_state;
pub mod cluster;
pub mod error;
pub mod events;
pub mod kv_pager;
pub mod policy;
pub mod queue;
pub mod router;
pub mod scenario;
pub mod stats;
pub mod token_backed;
pub mod trace;
pub mod workloads;

pub use batch_state::AdmissionConfig;
pub use cluster::{
    ClusterEngine, ClusterEngineBuilder, ClusterEvent, ClusterReport, ClusterStepReport,
};
pub use error::ServeError;
pub use events::ServeEvent;
pub use kv_pager::KvPager;
pub use policy::{
    FairRoundRobin, Fifo, PendingView, PolicyKind, PreemptionConfig, PriorityAging,
    RetentionPolicy, RunningView, SchedulerPolicy, ShortestJobFirst, SloAware,
};
pub use queue::ServingRequest;
pub use router::{LeastLoaded, PrefixAffinity, RoundRobin, RoutingKind, RoutingPolicy, ShardView};
pub use scenario::{Scenario, ScenarioKind};
pub use stats::{RequestStats, ServingReport, SessionStats, StepReport};
pub use token_backed::{run_token_backed, TokenBackedBatch, TokenBackedRun};
pub use trace::{RunReport, Trace, TraceError, TraceMeta, TraceRecorder, TraceReplay};

use topick_core::{PruneStats, QVector, QuantBuffer};
use topick_model::{SynthInstance, SynthProfile};

use crate::batch::weight_stream_cycles;
use crate::config::AccelConfig;
use crate::engine::ToPickAccelerator;

use batch_state::{ActiveRequest, BatchState};
use queue::PendingQueue;

/// Full configuration of the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Accelerator configuration each attention step runs under.
    pub accel: AccelConfig,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Preemption behavior (off by default).
    pub preemption: PreemptionConfig,
    /// Extra attention passes charged on a freshly admitted request's
    /// first decode step, modeling prompt prefill. The charge is
    /// proportional to the request's measured attention cost at its
    /// prompt, scaled by the share of the prompt the prefix cache did
    /// *not* serve. `0` (the default) prices prompts as free — the
    /// pre-prefill-model behavior, bit-identical to earlier engines.
    pub prefill_factor: f64,
    /// Chunked prefill: the KV pages' worth of prompt tokens the whole
    /// batch may prefill per step, consumed in slot order. A slot whose
    /// prompt is not fully built spends its step advancing the prefill
    /// frontier instead of decoding, so one long prompt no longer lands
    /// its entire prefill charge in a single step and stalls every
    /// co-resident decode (Sarathi-style chunked interleaving). The step
    /// that completes a prompt also decodes its first token, and the
    /// chunk charges telescope to exactly the one-lump charge. `0` (the
    /// default) means unlimited — whole-prompt prefill in one step,
    /// bit-identical to the lump engine.
    pub prefill_chunk_pages: usize,
    /// Host-memory swap tier capacity in KV pages (0 — the default —
    /// disables the tier, keeping eviction's drop-and-re-prefill behavior
    /// bit-identical to earlier engines). With a tier provisioned, pages
    /// reclaimed from preemption victims move their contents off-device
    /// instead of being dropped, and re-admission pays a priced copy-back
    /// ([`swap_cost_factor`](Self::swap_cost_factor)) instead of
    /// re-prefilling them.
    pub host_pages: usize,
    /// Cycles to copy one swapped token back from the host tier, as a
    /// fraction of the same token's measured re-prefill cost (the charge
    /// is `attention cycles × swap_cost_factor × swapped/context`,
    /// mirroring the re-prefill formula). Below
    /// [`reprefill_factor`](policy::PreemptionConfig::reprefill_factor)
    /// the swap tier wins; above it, dropping and re-prefilling is
    /// cheaper — the crossover the tiered bench sweeps.
    pub swap_cost_factor: f64,
    /// Cycles to ship one KV token between cluster shards, as a fraction
    /// of its prefill cost (same formula shape as
    /// [`swap_cost_factor`](Self::swap_cost_factor)). 0 — the default —
    /// disables cross-shard page shipping entirely, keeping cluster
    /// schedules bit-identical to earlier engines.
    pub ship_cost_factor: f64,
    /// Opt-in admission-time SLO rejection: refuse queued requests whose
    /// TTFT deadline has already elapsed before they produced a token —
    /// admitting them could only burn prefill on guaranteed-zero goodput.
    /// Rejected requests are reported with
    /// [`slo_violated`](RequestStats::slo_violated) set and still count
    /// in [`deadline_attainment`](ServingReport::deadline_attainment)'s
    /// denominator. Off by default (bit-identical schedules).
    pub reject_expired_ttft: bool,
    /// FC/FFN weight bytes streamed once per decode step.
    pub weight_bytes: u64,
    /// Attention heads per request per step (layers × heads of the model;
    /// the per-head cost is measured once per request and scaled).
    pub heads: usize,
    /// Accelerator clock in Hz, for cycles → seconds conversion.
    pub clock_hz: f64,
    /// Base seed of the synthetic per-request workloads.
    pub seed: u64,
}

impl ServingConfig {
    /// Default host-tier copy-back charge factor: copying a token's KV
    /// back from host costs a quarter of prefilling it, the ballpark of
    /// PCIe transfer vs recompute in production swap tiers.
    pub const DEFAULT_SWAP_COST_FACTOR: f64 = 0.25;

    /// A configuration around an accelerator config with paper-flavoured
    /// defaults: 50 MB of weights, 16 heads, 500 MHz core clock.
    #[must_use]
    pub fn new(accel: AccelConfig) -> Self {
        Self {
            accel,
            admission: AdmissionConfig::default(),
            preemption: PreemptionConfig::default(),
            prefill_factor: 0.0,
            prefill_chunk_pages: 0,
            host_pages: 0,
            swap_cost_factor: Self::DEFAULT_SWAP_COST_FACTOR,
            ship_cost_factor: 0.0,
            reject_expired_ttft: false,
            weight_bytes: 50_000_000,
            heads: 16,
            clock_hz: 500e6,
            seed: 0,
        }
    }
}

/// Step-by-step construction of a [`ServingEngine`]: configuration knobs,
/// the scheduling policy, and event recording.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode, PolicyKind, ServingEngine, ServingRequest};
///
/// let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// let mut engine = ServingEngine::builder(accel)
///     .heads(2)
///     .max_batch(4)
///     .policy(PolicyKind::ShortestJobFirst)
///     .build();
/// engine.enqueue(ServingRequest::new(0, 32, 2).with_priority(3))?;
/// let report = engine.run_to_completion(16)?;
/// assert_eq!(report.policy, "shortest-job-first");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServingEngineBuilder {
    cfg: ServingConfig,
    policy: Box<dyn SchedulerPolicy>,
    record_events: bool,
}

impl ServingEngineBuilder {
    /// Starts from paper-flavoured defaults around an accelerator config,
    /// with the FIFO policy and preemption off.
    #[must_use]
    pub fn new(accel: AccelConfig) -> Self {
        Self {
            cfg: ServingConfig::new(accel),
            policy: Box::new(Fifo),
            record_events: true,
        }
    }

    /// Replaces the whole serving configuration.
    #[must_use]
    pub fn config(mut self, cfg: ServingConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the admission limits.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Sets the batch slot limit.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.admission.max_batch = max_batch;
        self
    }

    /// Sets the batch KV token budget.
    #[must_use]
    pub fn max_batch_tokens(mut self, max_batch_tokens: usize) -> Self {
        self.cfg.admission.max_batch_tokens = max_batch_tokens;
        self
    }

    /// Sets the KV page size in tokens (the granularity the token budget
    /// is carved into; admission rounds every request's footprint up to
    /// whole pages).
    #[must_use]
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.cfg.admission.page_size = page_size;
        self
    }

    /// Enables copy-on-write prefix caching over the KV pager: requests
    /// whose prompts share a full-page-aligned prefix with resident pages
    /// adopt them instead of re-allocating and re-prefilling, and pages
    /// of retired requests stay cached until pressure reclaims them.
    #[must_use]
    pub fn prefix_cache(mut self, enabled: bool) -> Self {
        self.cfg.admission.prefix_cache = enabled;
        self
    }

    /// Sets the prompt-prefill charge factor (see
    /// [`ServingConfig::prefill_factor`]; `0` keeps prompts free).
    #[must_use]
    pub fn prefill_factor(mut self, prefill_factor: f64) -> Self {
        self.cfg.prefill_factor = prefill_factor;
        self
    }

    /// Sets the chunked-prefill budget in KV pages per step (see
    /// [`ServingConfig::prefill_chunk_pages`]; `0` keeps prefill
    /// unchunked — whole prompts build in one step).
    #[must_use]
    pub fn prefill_chunk_pages(mut self, pages: usize) -> Self {
        self.cfg.prefill_chunk_pages = pages;
        self
    }

    /// Provisions the host-memory swap tier, in KV pages (see
    /// [`ServingConfig::host_pages`]; `0` keeps eviction dropping pages —
    /// bit-identical to earlier engines).
    #[must_use]
    pub fn host_pages(mut self, pages: usize) -> Self {
        self.cfg.host_pages = pages;
        self
    }

    /// Sets the host-tier copy-back price (see
    /// [`ServingConfig::swap_cost_factor`]).
    #[must_use]
    pub fn swap_cost_factor(mut self, factor: f64) -> Self {
        self.cfg.swap_cost_factor = factor;
        self
    }

    /// Sets the cross-shard KV transfer price (see
    /// [`ServingConfig::ship_cost_factor`]; `0` disables shipping).
    #[must_use]
    pub fn ship_cost_factor(mut self, factor: f64) -> Self {
        self.cfg.ship_cost_factor = factor;
        self
    }

    /// Enables admission-time rejection of requests whose TTFT deadline
    /// already elapsed in the queue (see
    /// [`ServingConfig::reject_expired_ttft`]).
    #[must_use]
    pub fn reject_expired_ttft(mut self, reject: bool) -> Self {
        self.cfg.reject_expired_ttft = reject;
        self
    }

    /// Sets the attention head count per request per step.
    #[must_use]
    pub fn heads(mut self, heads: usize) -> Self {
        self.cfg.heads = heads;
        self
    }

    /// Sets the FC/FFN weight bytes streamed per step.
    #[must_use]
    pub fn weight_bytes(mut self, weight_bytes: u64) -> Self {
        self.cfg.weight_bytes = weight_bytes;
        self
    }

    /// Sets the base seed of the synthetic per-request workloads.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Selects a built-in scheduling policy.
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = kind.build();
        self
    }

    /// Installs a custom scheduling policy.
    #[must_use]
    pub fn policy_boxed(mut self, policy: Box<dyn SchedulerPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the preemption behavior.
    #[must_use]
    pub fn preemption(mut self, preemption: PreemptionConfig) -> Self {
        self.cfg.preemption = preemption;
        self
    }

    /// Enables preemption, keeping whatever cost, thrash and retention
    /// settings are already configured (so the call order relative to
    /// [`retention`](Self::retention) does not matter).
    #[must_use]
    pub fn enable_preemption(mut self) -> Self {
        self.cfg.preemption.enabled = true;
        self
    }

    /// Sets how much of a preemption victim's paged KV cache survives the
    /// eviction (does not by itself enable preemption).
    #[must_use]
    pub fn retention(mut self, retention: RetentionPolicy) -> Self {
        self.cfg.preemption.retention = retention;
        self
    }

    /// Toggles event recording (on by default; benches that only need the
    /// final report can switch it off).
    #[must_use]
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(self) -> ServingEngine {
        ServingEngine::from_parts(self.cfg, self.policy, self.record_events)
    }
}

/// The continuous-batching serving engine.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode, ServingConfig, ServingEngine, ServingRequest};
///
/// let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// let mut cfg = ServingConfig::new(accel);
/// cfg.heads = 2;
/// let mut engine = ServingEngine::new(cfg);
/// for id in 0..3 {
///     engine.enqueue(ServingRequest::new(id, 24 + 8 * id as usize, 2))?;
/// }
/// let report = engine.run_to_completion(64)?;
/// assert_eq!(report.tokens_generated, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    cfg: ServingConfig,
    accel: ToPickAccelerator,
    policy: Box<dyn SchedulerPolicy>,
    pending: PendingQueue,
    batch: BatchState,
    finished: Vec<RequestStats>,
    steps: Vec<StepReport>,
    events: Vec<ServeEvent>,
    record_events: bool,
    prune: PruneStats,
    total_cycles: u64,
    tokens_generated: usize,
    preemptions: usize,
    admitted_prompt_tokens: usize,
    admitted_hit_tokens: usize,
    rejections: usize,
    step_index: usize,
    arrival_seq: u64,
    key_buf: QuantBuffer,
}

impl ServingEngine {
    /// Creates an idle engine with the FIFO policy (the pre-redesign
    /// behavior, bit-for-bit).
    #[must_use]
    pub fn new(cfg: ServingConfig) -> Self {
        Self::from_parts(cfg, Box::new(Fifo), true)
    }

    /// Starts a [`ServingEngineBuilder`] around an accelerator config.
    #[must_use]
    pub fn builder(accel: AccelConfig) -> ServingEngineBuilder {
        ServingEngineBuilder::new(accel)
    }

    fn from_parts(
        cfg: ServingConfig,
        policy: Box<dyn SchedulerPolicy>,
        record_events: bool,
    ) -> Self {
        let chunks = cfg.accel.precision.num_chunks();
        let accel = ToPickAccelerator::new(cfg.accel.clone());
        let batch = BatchState::new(cfg.admission, cfg.host_pages);
        Self {
            cfg,
            accel,
            policy,
            pending: PendingQueue::default(),
            batch,
            finished: Vec::new(),
            steps: Vec::new(),
            events: Vec::new(),
            record_events,
            prune: PruneStats::new(0, chunks),
            total_cycles: 0,
            tokens_generated: 0,
            preemptions: 0,
            admitted_prompt_tokens: 0,
            admitted_hit_tokens: 0,
            rejections: 0,
            step_index: 0,
            arrival_seq: 0,
            key_buf: QuantBuffer::new(),
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// The active scheduling policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently decoding.
    #[must_use]
    pub fn running(&self) -> usize {
        self.batch.len()
    }

    /// Whether all enqueued work has completed.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.batch.is_empty()
    }

    /// Final-context tokens of everything queued — the engine's backlog in
    /// KV terms, the load signal cluster routing and work stealing compare
    /// shards by.
    #[must_use]
    pub fn queued_tokens(&self) -> usize {
        self.pending
            .entries()
            .iter()
            .map(ActiveRequest::final_context)
            .sum()
    }

    /// Tokens' worth of KV pages mapped by *running* requests. Retained
    /// pages of queued preemption victims are deliberately excluded:
    /// their owners already count toward [`queued_tokens`](Self::queued_tokens)
    /// at full final context, so including their pages here would
    /// double-bill exactly the shards where retention paid off.
    #[must_use]
    pub fn running_kv_tokens(&self) -> usize {
        let pager = self.batch.pager();
        self.batch
            .slots()
            .iter()
            .map(|r| pager.pages_of(r.arrival_seq))
            .sum::<usize>()
            * pager.page_size()
    }

    /// Records a zero-work step so an externally driven engine's clock can
    /// stay in lockstep with peers: a [`ClusterEngine`](cluster::ClusterEngine)
    /// ticks idle shards so every shard's step index equals the cluster
    /// step, keeping `arrival_step` semantics and event timestamps
    /// cluster-global. Shaped exactly like the engine's own
    /// waiting-on-future-arrivals idle tick.
    pub(crate) fn idle_tick(&mut self) {
        debug_assert!(self.is_idle(), "idle ticks are only for drained engines");
        self.steps.push(StepReport::idle(self.step_index));
        self.step_index += 1;
    }

    /// Whether the queue holds a request work stealing may migrate: one
    /// that has arrived and has never been admitted (no generated tokens,
    /// no retained KV pages — nothing that ties it to this engine).
    #[must_use]
    pub(crate) fn has_stealable_queued(&self) -> bool {
        self.pending.entries().iter().any(|e| {
            e.stats.admitted_at.is_none() && e.req.arrival_step as usize <= self.step_index
        })
    }

    /// Removes and returns the youngest queued request that has arrived
    /// and never been admitted — the request this engine would have served
    /// last, and the only kind that can move engines without a cross-shard
    /// KV transfer. Its lifecycle restarts on the thief (fresh enqueue,
    /// fresh queue age).
    pub(crate) fn steal_youngest_unstarted(&mut self) -> Option<ServingRequest> {
        let seq = self
            .pending
            .entries()
            .iter()
            .rev()
            .find(|e| {
                e.stats.admitted_at.is_none() && e.req.arrival_step as usize <= self.step_index
            })
            .map(|e| e.arrival_seq)?;
        Some(self.pending.remove_by_seq(seq).req)
    }

    /// The KV page allocator: page-granular accounting of the batch's KV
    /// budget, including pages retained by preempted requests waiting in
    /// the queue.
    #[must_use]
    pub fn kv_pager(&self) -> &KvPager {
        self.batch.pager()
    }

    /// Mutable pager access for the cluster's cross-shard page shipping
    /// (export on the donor, import on the receiver).
    pub(crate) fn kv_pager_mut(&mut self) -> &mut KvPager {
        self.batch.pager_mut()
    }

    /// Whether the engine records [`ServeEvent`]s (on by default;
    /// disabled via the builder's `record_events(false)` for hot loops).
    /// The token-backed mirror refuses to run without it.
    #[must_use]
    pub fn records_events(&self) -> bool {
        self.record_events
    }

    /// Events recorded so far, in order.
    #[must_use]
    pub fn events(&self) -> &[ServeEvent] {
        &self.events
    }

    /// Removes and returns all recorded events (subsequent calls see only
    /// newer ones) — the poll side of the event stream.
    pub fn drain_events(&mut self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.events)
    }

    fn emit(&mut self, event: ServeEvent) {
        if self.record_events {
            self.events.push(event);
        }
    }

    /// Checks whether `req` could ever be accepted by this engine — the
    /// validation [`enqueue`](Self::enqueue) applies before queueing,
    /// callable without side effects (the cluster front door uses it so a
    /// doomed request cannot advance routing state).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] if the prompt or token target
    /// is zero, or if the request alone could never satisfy the admission
    /// budget.
    pub fn validate_request(&self, req: &ServingRequest) -> Result<(), ServeError> {
        if req.prompt_len == 0 {
            return Err(ServeError::InvalidRequest("prompt_len must be positive"));
        }
        if req.max_new_tokens == 0 {
            return Err(ServeError::InvalidRequest(
                "max_new_tokens must be positive",
            ));
        }
        let pager = self.batch.pager();
        if pager.pages_needed(req.prompt_len + req.max_new_tokens) > pager.total_pages() {
            return Err(ServeError::InvalidRequest(
                "request exceeds the batch KV page budget even alone",
            ));
        }
        Ok(())
    }

    /// Adds a request to the arrival queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] as
    /// [`validate_request`](Self::validate_request) would.
    pub fn enqueue(&mut self, req: ServingRequest) -> Result<(), ServeError> {
        self.enqueue_with_shipped(req, 0)
    }

    /// [`enqueue`](Self::enqueue) with `shipped_tokens` of the request's
    /// prompt KV already in flight from a sibling shard — the cluster's
    /// prefix-pull path marks how many tokens' pages it shipped so the
    /// first decode step charges the modeled transfer
    /// ([`ship_cost_factor`](ServingConfig::ship_cost_factor)).
    pub(crate) fn enqueue_with_shipped(
        &mut self,
        req: ServingRequest,
        shipped_tokens: usize,
    ) -> Result<(), ServeError> {
        self.validate_request(&req)?;
        // A request becomes schedulable when it both has been enqueued and
        // has arrived.
        let schedulable_at = self.step_index.max(req.arrival_step as usize);
        // The prompt-page hash chain is what admission matches against the
        // prefix index; only worth computing when the cache can use it.
        let page_keys = if self.cfg.admission.prefix_cache {
            req.page_keys(self.cfg.admission.page_size)
        } else {
            Vec::new()
        };
        let active = ActiveRequest {
            req,
            context: req.prompt_len,
            arrival_seq: self.arrival_seq,
            wait_since: schedulable_at,
            last_admitted_at: None,
            last_evicted_at: None,
            needs_reprefill: false,
            dropped_tokens: 0,
            needs_prefill: self.cfg.prefill_factor > 0.0,
            prefill_tokens: req.prompt_len,
            swapped_tokens: 0,
            shipped_tokens,
            last_token_at: None,
            page_keys,
            stats: RequestStats {
                id: req.id,
                prompt_len: req.prompt_len,
                generated: 0,
                priority: req.priority,
                client_id: req.client_id,
                enqueued_at: schedulable_at,
                admitted_at: None,
                first_token_at: None,
                finished_at: None,
                preemptions: 0,
                attention_cycles: 0,
                prefill_cycles: 0,
                reprefill_cycles: 0,
                retained_tokens: 0,
                reprefilled_tokens: 0,
                swapped_tokens: 0,
                swap_cycles: 0,
                shipped_tokens: 0,
                ship_cycles: 0,
                prefix_hit_tokens: 0,
                ttft_deadline: req.ttft_deadline,
                itl_deadline: req.itl_deadline,
                good_tokens: 0,
                slo_violated: false,
            },
        };
        self.arrival_seq += 1;
        self.pending.push(active);
        self.emit(ServeEvent::Enqueued {
            id: req.id,
            step: self.step_index,
        });
        Ok(())
    }

    /// Removes and returns the youngest *running* request that is fully
    /// built (no outstanding prefill or re-prefill debt) for migration to
    /// a sibling shard, releasing its device pages and discarding any
    /// host-tier holding here. The returned state carries its whole built
    /// context as shipped KV; the receiver re-prices it at
    /// [`ship_cost_factor`](ServingConfig::ship_cost_factor) via
    /// [`receive_shipped`](Self::receive_shipped).
    pub(crate) fn ship_out_youngest_running(&mut self) -> Option<ActiveRequest> {
        let slot = (0..self.batch.len()).rev().find(|&i| {
            let r = &self.batch.slots()[i];
            !r.needs_prefill && !r.needs_reprefill
        })?;
        let mut shipped = self.batch.evict(slot);
        let seq = shipped.arrival_seq;
        self.batch.pager_mut().release(seq);
        self.batch.pager_mut().host_discard(seq);
        // The whole built context travels with the request; on the
        // receiver it is rebuild debt covered entirely by the transfer.
        shipped.needs_reprefill = true;
        shipped.dropped_tokens = shipped.context;
        shipped.shipped_tokens = shipped.context;
        shipped.swapped_tokens = 0;
        Some(shipped)
    }

    /// Lands a migrated running request from a sibling shard: it re-enters
    /// this engine's queue with a fresh arrival sequence, keeping its
    /// lifecycle stats (enqueue step, generated tokens, deadlines) so
    /// cluster-level accounting stays per-request truthful.
    pub(crate) fn receive_shipped(&mut self, mut active: ActiveRequest) {
        active.arrival_seq = self.arrival_seq;
        self.arrival_seq += 1;
        active.wait_since = self.step_index;
        // The eviction cooldown is per-engine; a migrant is admissible
        // immediately.
        active.last_evicted_at = None;
        let id = active.req.id;
        self.pending.push(active);
        self.emit(ServeEvent::Enqueued {
            id,
            step: self.step_index,
        });
    }

    /// Queued, never-admitted requests visible at the current step whose
    /// prompt hash chain a cluster prefix pull could still shorten, as
    /// `(id, arrival_seq, chain)` in arrival order — the deterministic
    /// order the cluster probes siblings in between step barriers.
    pub(crate) fn pull_candidates(&self) -> Vec<(u64, u64, Vec<u64>)> {
        let mut out: Vec<_> = self
            .pending
            .entries()
            .iter()
            .filter(|e| {
                e.stats.admitted_at.is_none()
                    && e.req.arrival_step as usize <= self.step_index
                    && !e.page_keys.is_empty()
            })
            .map(|e| (e.req.id, e.arrival_seq, e.page_keys.clone()))
            .collect();
        out.sort_by_key(|&(_, seq, _)| seq);
        out
    }

    /// Credits `tokens` of shipped prompt KV to a queued request after a
    /// between-barriers prefix pull landed pages for it, so the decode
    /// step that admits it prices the transfer
    /// ([`ship_cost_factor`](ServingConfig::ship_cost_factor)) instead of
    /// prefill work for the covered prefix.
    pub(crate) fn credit_shipped(&mut self, seq: u64, tokens: usize) {
        if let Some(e) = self.pending.get_mut_by_seq(seq) {
            e.shipped_tokens += tokens;
        }
    }

    /// Drops queued requests whose TTFT deadline has already elapsed while
    /// they waited — even an immediate admission could not produce an
    /// on-time first token, so prefilling them would only buy zero-goodput
    /// work that crowds out requests still able to meet their deadlines.
    /// Opt-in via [`reject_expired_ttft`](ServingConfig::reject_expired_ttft);
    /// a reject still counts against
    /// [`deadline_attainment`](ServingReport::deadline_attainment).
    fn reject_expired(&mut self) {
        let step = self.step_index;
        let expired: Vec<u64> = self
            .pending
            .entries()
            .iter()
            .filter(|e| {
                e.stats.first_token_at.is_none()
                    && step >= e.stats.enqueued_at
                    && e.req
                        .ttft_deadline
                        .is_some_and(|d| (step - e.stats.enqueued_at + 1) as u64 > d)
            })
            .map(|e| e.arrival_seq)
            .collect();
        for seq in expired {
            let mut r = self.pending.remove_by_seq(seq);
            // A preempted-then-expired request may still hold retained
            // device pages or a host-tier holding; both go back to their
            // pools.
            let pager = self.batch.pager_mut();
            pager.release(seq);
            pager.host_discard(seq);
            let overdue =
                (step - r.stats.enqueued_at + 1) - r.req.ttft_deadline.unwrap_or(0) as usize;
            r.stats.slo_violated = true;
            r.stats.finished_at = Some(step);
            self.rejections += 1;
            let id = r.req.id;
            self.finished.push(r.stats);
            self.emit(ServeEvent::Rejected {
                id,
                step,
                overdue_steps: overdue,
            });
        }
    }

    /// Admits queued requests under the policy's ordering while the batch
    /// has room, evicting victims for non-fitting candidates when
    /// preemption allows it.
    fn admit(&mut self) {
        let step = self.step_index;
        let mut evictions_left = if self.cfg.preemption.enabled {
            self.cfg.preemption.max_evictions_per_step
        } else {
            0
        };
        loop {
            let pending_views = self.pending.views(step);
            if pending_views.is_empty() {
                break;
            }
            let running_views = self.batch.views();
            let Some(pi) = self
                .policy
                .pick_next(&pending_views, &running_views, step as u64)
            else {
                break;
            };
            let Some(cand) = pending_views.get(pi).copied() else {
                break; // out-of-range pick: treat as "stop admitting"
            };
            // The candidate's prompt-page hash chain: pages the prefix
            // cache can serve reduce what admission must allocate.
            let chain: Vec<u64> = self
                .pending
                .get_by_seq(cand.arrival_seq)
                .map(|e| e.page_keys.clone())
                .unwrap_or_default();
            if !self
                .batch
                .fits(cand.arrival_seq, cand.final_context, &chain)
            {
                // Cheapest rescue first: when the candidate has a slot
                // and only lacks pages, reclaim queued requests' retained
                // pages — that costs no new preemption, so it must be
                // tried before evicting anyone who is actually running.
                self.reclaim_for(&cand, &chain);
                // Preemption rescue, planned transactionally in page
                // space: victims are chosen against a scratch view and
                // committed (pages freed/retained) only if the candidate
                // then fits, so a failed admission never charges anyone
                // re-prefill for nothing.
                if !self
                    .batch
                    .fits(cand.arrival_seq, cand.final_context, &chain)
                    && evictions_left > 0
                {
                    let limits = self.cfg.admission;
                    let retention = self.cfg.preemption.retention;
                    let pager = self.batch.pager();
                    // Pages the candidate still needs, crediting any it
                    // retained across an earlier preemption and any the
                    // prefix cache can supply without allocation.
                    let hit_pages = pager.adoptable_pages(cand.arrival_seq, &chain);
                    let hits = hit_pages.len();
                    let cached_hits = hit_pages
                        .iter()
                        .filter(|&&p| pager.refcount(p) == 0)
                        .count();
                    let cand_need = pager
                        .pages_needed(cand.final_context)
                        .saturating_sub(pager.pages_of(cand.arrival_seq) + hits);
                    let mut sim = self.batch.views();
                    // Refcount-0 cached pages are reclaimable on demand,
                    // so they count as available — except the ones the
                    // candidate is itself about to adopt.
                    let mut avail = pager.free_pages() + pager.cached_pages() - cached_hits;
                    let fits_sim = |sim: &[policy::RunningView], avail: usize| {
                        sim.len() < limits.max_batch && cand_need <= avail
                    };
                    let mut victims: Vec<u64> = Vec::new();
                    while victims.len() < evictions_left
                        && !sim.is_empty()
                        && !fits_sim(&sim, avail)
                    {
                        let Some(vi) = self.policy.pick_victim(&cand, &sim, step as u64) else {
                            break;
                        };
                        if vi >= sim.len() {
                            break; // out-of-range victim: decline
                        }
                        let victim = sim.remove(vi);
                        // Evicting returns the victim's dropped pages
                        // minus what retention keeps — and minus pages
                        // another resident request still maps (shared
                        // pages are never reclaimed out from under a
                        // second owner) or that the candidate will adopt.
                        let occupied = pager.pages_needed(victim.context);
                        let kept = retention.retained_pages(occupied);
                        avail += pager.releasable_pages(victim.arrival_seq, kept, &hit_pages);
                        victims.push(victim.arrival_seq);
                    }
                    if fits_sim(&sim, avail) {
                        evictions_left -= victims.len();
                        for seq in victims {
                            let slot = self
                                .batch
                                .position_of_seq(seq)
                                .expect("planned victim is running");
                            self.evict(slot);
                        }
                    }
                }
                // Combined pressure: a rescue eviction may have freed the
                // slot while pages are still short (retention keeps most
                // of the victims' pages allocated) — one more reclaim
                // pass covers that before declaring head-of-line
                // blocking.
                self.reclaim_for(&cand, &chain);
                if !self
                    .batch
                    .fits(cand.arrival_seq, cand.final_context, &chain)
                {
                    // Head-of-line blocking: the policy's chosen candidate
                    // cannot run, so admission ends for this step.
                    break;
                }
            }
            let mut active = self.pending.remove_by_seq(cand.arrival_seq);
            if active.stats.admitted_at.is_none() {
                active.stats.admitted_at = Some(step);
            }
            active.last_admitted_at = Some(step);
            let (id, context, prompt_len) = (active.req.id, active.context, active.req.prompt_len);
            let cached_tokens = self.batch.admit(active);
            // Admission-normalized hit accounting: every admission demands
            // the full prompt once, and `cached_tokens` of it came from
            // the cache — counting here (not at completion) keeps hit
            // rates in [0, 1] even on truncated runs with in-flight work.
            self.admitted_prompt_tokens += prompt_len;
            self.admitted_hit_tokens += cached_tokens;
            self.emit(ServeEvent::Admitted {
                id,
                step,
                context,
                cached_tokens,
            });
        }
    }

    /// Evicts the running request at `slot` back to the queue, retaining
    /// a prefix of its KV pages per the configured [`RetentionPolicy`].
    fn evict(&mut self, slot: usize) {
        let mut victim = self.batch.evict(slot);
        let ctx = victim.context;
        let page_size = self.batch.pager().page_size();
        let occupied = self.batch.pager().pages_needed(ctx);
        // Retention cannot keep KV that was never built: a victim evicted
        // before the decode step that would have charged its pending
        // prefill (first admission) or re-prefill (outstanding rebuild
        // debt) only ever materialized `valid` KV tokens, so the retained
        // prefix caps there and everything beyond it is re-prefill debt —
        // otherwise the skipped charge would never be billed to anyone.
        let valid = if victim.needs_prefill {
            victim.needs_prefill = false;
            let v = ctx - victim.prefill_tokens;
            victim.prefill_tokens = 0;
            v
        } else if victim.needs_reprefill {
            ctx - victim.dropped_tokens
        } else {
            ctx
        };
        // Free the dropped suffix and the unused reservation beyond the
        // current context; the retained prefix stays allocated while the
        // victim queues. Pages past the valid prefix hold no real KV, so
        // retention never keeps them.
        let kept_pages = self
            .cfg
            .preemption
            .retention
            .retained_pages(occupied)
            .min(self.batch.pager().pages_needed(valid));
        self.batch
            .pager_mut()
            .truncate(victim.arrival_seq, kept_pages);
        let retained_tokens = valid.min(kept_pages * page_size);
        let dropped_tokens = ctx - retained_tokens;
        // Host tier: the dropped pages that held *valid* KV can survive
        // off-device. A full grant extends the victim's holding
        // contiguously above its retained prefix; a partial grant is only
        // usable when no earlier holding sits above it (a hole below
        // already-swapped pages would break the copy-back prefix, so the
        // stale holding is discarded instead).
        let swapped_now = if self.batch.pager().host_capacity() > 0 {
            let seq = victim.arrival_seq;
            let pager = self.batch.pager_mut();
            let swappable = pager.pages_needed(valid).saturating_sub(kept_pages);
            let granted = pager.swap_out(seq, swappable);
            if granted == swappable {
                let moved = valid - retained_tokens;
                victim.swapped_tokens += moved;
                moved
            } else if victim.swapped_tokens == 0 {
                let moved = valid.min((kept_pages + granted) * page_size) - retained_tokens;
                victim.swapped_tokens = moved;
                moved
            } else {
                pager.host_discard(seq);
                victim.swapped_tokens = 0;
                0
            }
        } else {
            0
        };
        victim.stats.preemptions += 1;
        victim.stats.retained_tokens += retained_tokens;
        victim.last_evicted_at = Some(self.step_index);
        // Waiting restarts now: time spent running must not count as
        // queue age when policies apply starvation aging.
        victim.wait_since = self.step_index;
        victim.needs_reprefill = true;
        victim.dropped_tokens = dropped_tokens;
        self.preemptions += 1;
        let (id, generated) = (victim.req.id, victim.stats.generated);
        self.pending.push(victim);
        self.emit(ServeEvent::Preempted {
            id,
            step: self.step_index,
            generated,
            retained_tokens,
            dropped_tokens,
        });
        if swapped_now > 0 {
            self.emit(ServeEvent::SwappedOut {
                id,
                step: self.step_index,
                tokens: swapped_now,
            });
        }
    }

    /// Pressure release for an admission candidate: retained pages are a
    /// cache, not a reservation, so while `cand` has a batch slot but not
    /// the pages, reclaim other queued requests' retained pages. A slot
    /// shortage is never a reason to reclaim — freeing pages cannot
    /// conjure a slot.
    fn reclaim_for(&mut self, cand: &PendingView, chain: &[u64]) {
        while self.batch.len() < self.cfg.admission.max_batch
            && !self
                .batch
                .pager()
                .can_admit(cand.arrival_seq, cand.final_context, chain)
            && self.reclaim_retained(cand.arrival_seq, chain)
        {}
    }

    /// Reclaims one retained KV page from a queued request other than
    /// `exclude_seq` — a tail page of the holder with the deepest retained
    /// prefix (oldest first among equals), so retention degrades evenly
    /// and page-by-page instead of wiping whole victims. The holder's
    /// re-prefill debt grows by the tokens the lost page covered.
    /// Returns whether a page was reclaimed.
    ///
    /// Holders whose tail page would not actually free capacity for the
    /// candidate are skipped: a page shared with another owner stays
    /// resident for its other holders, and a page the candidate is itself
    /// about to adopt (it is in `cand_chain`'s hit set) merely moves into
    /// the LRU cache where the candidate's admission arithmetic already
    /// counts it — either way reclaiming would charge the queued victim
    /// re-prefill debt for zero gain. Reclamation is strictly tail-first
    /// (a retained prefix must stay a prefix), so an ineligible tail
    /// shields any deeper pages too; in the rare layout where a private
    /// page sits below a shared tail, that capacity is deliberately
    /// forgone rather than charging the holder debt for shared drops.
    fn reclaim_retained(&mut self, exclude_seq: u64, cand_chain: &[u64]) -> bool {
        let holder = {
            let pager = self.batch.pager();
            let cand_hits = pager.adoptable_pages(exclude_seq, cand_chain);
            self.pending
                .entries()
                .iter()
                .filter(|e| e.arrival_seq != exclude_seq)
                .map(|e| (pager.pages_of(e.arrival_seq), e.arrival_seq))
                .filter(|&(pages, seq)| {
                    pages > 0 && pager.releasable_pages(seq, pages - 1, &cand_hits) == 1
                })
                .max_by_key(|&(pages, seq)| (pages, std::cmp::Reverse(seq)))
                .map(|(_, seq)| seq)
        };
        let Some(seq) = holder else {
            return false;
        };
        let pager = self.batch.pager_mut();
        let kept_pages = pager.pages_of(seq) - 1;
        pager.truncate(seq, kept_pages);
        let page_size = pager.page_size();
        // Host tier: the reclaimed tail page sits directly below any pages
        // this holder already swapped, so a granted swap keeps its
        // off-device holding a contiguous extension of the (now shorter)
        // retained prefix. A refused swap below an existing holding leaves
        // a hole, which invalidates the whole holding for copy-back.
        let tier_on = pager.host_capacity() > 0;
        let swap_granted = tier_on && pager.swap_out(seq, 1) == 1;
        let mut discard_holding = false;
        let (id, swapped_now) = {
            let e = self
                .pending
                .get_mut_by_seq(seq)
                .expect("retained-page holder is queued");
            // A shorter prefix is still a valid prefix: only the tokens the
            // reclaimed tail page covered move back into the re-prefill
            // debt. Capped at the previously valid prefix — reclaiming a
            // page a never-decoded victim hadn't materialized anyway
            // changes nothing.
            let old_retained = e.context - e.dropped_tokens;
            let new_retained = old_retained.min(kept_pages * page_size);
            e.stats.retained_tokens -= old_retained - new_retained;
            e.dropped_tokens = e.context - new_retained;
            let moved = old_retained - new_retained;
            let swapped_now = if swap_granted && moved > 0 {
                e.swapped_tokens += moved;
                moved
            } else {
                if !swap_granted && e.swapped_tokens > 0 {
                    discard_holding = true;
                    e.swapped_tokens = 0;
                }
                0
            };
            (e.req.id, swapped_now)
        };
        if discard_holding {
            self.batch.pager_mut().host_discard(seq);
        } else if swap_granted && swapped_now == 0 {
            // The reclaimed page held no materialized KV; nothing moved.
            let pager = self.batch.pager_mut();
            let held = pager.host_pages_of(seq);
            pager.host_discard(seq);
            pager.swap_out(seq, held - 1);
        }
        if swapped_now > 0 {
            self.emit(ServeEvent::SwappedOut {
                id,
                step: self.step_index,
                tokens: swapped_now,
            });
        }
        true
    }

    /// Runs one batched decode step.
    ///
    /// Returns `Ok(None)` when the engine is idle (nothing pending or
    /// running). When requests are queued but none has arrived yet, the
    /// step is an idle tick: time advances with an all-zero [`StepReport`].
    ///
    /// # Errors
    ///
    /// Propagates simulation failures as [`ServeError::Core`], and
    /// reports a permanently unadmittable queue as
    /// [`ServeError::AdmissionStalled`].
    pub fn step(&mut self) -> Result<Option<StepReport>, ServeError> {
        if self.cfg.reject_expired_ttft {
            self.reject_expired();
        }
        self.admit();
        if self.batch.is_empty() {
            if self.pending.is_empty() {
                return Ok(None);
            }
            if self.pending.has_visible(self.step_index) {
                // An empty batch that still cannot admit a schedulable
                // request means the limits (or the policy) exclude it
                // permanently. Erroring beats silently dropping the work.
                return Err(ServeError::AdmissionStalled {
                    pending: self.pending.len(),
                });
            }
            // Everything queued arrives later: tick time forward.
            let report = StepReport::idle(self.step_index);
            self.steps.push(report);
            self.step_index += 1;
            return Ok(Some(report));
        }

        let weight_cycles = weight_stream_cycles(&self.cfg.accel, self.cfg.weight_bytes);
        let mut attention_cycles = 0u64;
        let mut prefill_cycles = 0u64;
        let mut reprefill_cycles = 0u64;
        let mut context_tokens = 0usize;
        let mut decoded = 0usize;
        let step = self.step_index;
        // Chunked prefill: the step's prompt-building allowance in tokens,
        // shared by every slot still owing prefill and consumed in slot
        // order (admissions append, so head slots — the oldest work —
        // always drain the budget first and no frontier can starve).
        // 0 configured pages = unlimited, the one-lump path.
        let mut chunk_budget = if self.cfg.prefill_chunk_pages == 0 {
            usize::MAX
        } else {
            self.cfg.prefill_chunk_pages * self.batch.pager().page_size()
        };

        let mut swap_cycles = 0u64;
        let mut ship_cycles = 0u64;
        for slot in 0..self.batch.len() {
            let (ctx, req_id, req_seq, prefill_debt) = {
                let r = &self.batch.slots()[slot];
                let debt = if r.needs_prefill { r.prefill_tokens } else { 0 };
                (r.context, r.req.id, r.arrival_seq, debt)
            };
            if prefill_debt > chunk_budget {
                // The prompt cannot finish building this step: advance the
                // frontier by the remaining allowance instead of decoding.
                // No token, no attention charge — the chunk's prefill
                // charge *is* this slot's compute for the step.
                let allowance = chunk_budget;
                if allowance == 0 {
                    // Earlier slots drained the budget; the frontier holds.
                    context_tokens += ctx - prefill_debt;
                    continue;
                }
                chunk_budget = 0;
                let result = self.simulate_attention(req_id, ctx)?;
                let request_cycles = result.0 * self.cfg.heads as u64;
                let (built, remaining, charge) = {
                    let r = &mut self.batch.slots_mut()[slot];
                    // Telescoping ceil pricing on the *remaining* debt:
                    // each chunk charges ceil(cost × rem_before/prompt) −
                    // ceil(cost × rem_after/prompt), so the chunk charges
                    // sum to exactly the one-lump charge of the initial
                    // debt — chunking moves prefill work across steps
                    // without ever repricing it.
                    let factor = self.cfg.prefill_factor.max(0.0);
                    let denom = r.context as f64;
                    let cum = |remaining: usize| -> u64 {
                        let frac = remaining as f64 / denom;
                        (request_cycles as f64 * factor * frac).ceil() as u64
                    };
                    let after = r.prefill_tokens - allowance;
                    let charge = cum(r.prefill_tokens) - cum(after);
                    r.prefill_tokens = after;
                    r.stats.prefill_cycles += charge;
                    (r.context - after, after, charge)
                };
                // The chunk's pages now hold real KV: publish the covered
                // full prompt pages for prefix sharing right away.
                self.batch.publish_prefix(slot);
                prefill_cycles += charge;
                context_tokens += built;
                self.emit(ServeEvent::PrefillChunk {
                    id: req_id,
                    step,
                    built_tokens: built,
                    remaining_tokens: remaining,
                });
                continue;
            }
            chunk_budget -= prefill_debt;
            context_tokens += ctx;
            decoded += 1;
            let result = self.simulate_attention(req_id, ctx)?;
            let request_cycles = result.0 * self.cfg.heads as u64;
            self.prune.merge(&result.1);
            let (id, generated, rebuild_cycles, fresh_prefill_cycles, built_kv, swapped_in) = {
                let r = &mut self.batch.slots_mut()[slot];
                // Once this step's pending prefill / re-prefill charge
                // lands, the request's prompt KV genuinely exists and its
                // full pages may be published for sharing.
                let built_kv = r.needs_prefill || r.needs_reprefill;
                let was_reprefill = r.needs_reprefill;
                let denom = if r.context == 0 {
                    1.0
                } else {
                    r.context as f64
                };
                let mut swapped_used = 0usize;
                let mut shipped_used = 0usize;
                let rebuild = if r.needs_reprefill {
                    // KV rebuild priced off the measured attention cost at
                    // the request's current context, scaled by the share
                    // of that context the eviction actually dropped (all
                    // of it under full re-prefill; only the suffix beyond
                    // the retained pages under paged retention). Tokens
                    // whose contents survive off-device — in the host tier
                    // or shipped over from a sibling shard — are copied
                    // back at their own (cheaper) price below instead of
                    // being recomputed, so they leave the rebuild charge.
                    r.needs_reprefill = false;
                    let dropped = r.dropped_tokens;
                    swapped_used = r.swapped_tokens.min(dropped);
                    shipped_used = r.shipped_tokens.min(dropped - swapped_used);
                    let rebuilt = dropped - swapped_used - shipped_used;
                    r.stats.reprefilled_tokens += rebuilt;
                    r.dropped_tokens = 0;
                    r.swapped_tokens = 0;
                    (request_cycles as f64
                        * self.cfg.preemption.reprefill_factor.max(0.0)
                        * (rebuilt as f64 / denom))
                        .ceil() as u64
                } else {
                    0
                };
                let prefill = if r.needs_prefill {
                    // Prompt prefill priced the same way, scaled by the
                    // share of the prompt the prefix cache did not serve.
                    // A full cache hit genuinely prefills nothing and
                    // costs nothing — sharing is strictly beneficial.
                    // Under chunking this is the *final* chunk (whatever
                    // debt fits the step's budget), and the one-cycle
                    // floor applies to the whole prompt's total so the
                    // chunk charges still sum to exactly the lump.
                    r.needs_prefill = false;
                    let frac = if r.context == 0 {
                        1.0
                    } else {
                        r.prefill_tokens as f64 / r.context as f64
                    };
                    let charge = if r.prefill_tokens == 0 {
                        0
                    } else {
                        let marginal = (request_cycles as f64
                            * self.cfg.prefill_factor.max(0.0)
                            * frac)
                            .ceil() as u64;
                        if r.stats.prefill_cycles + marginal == 0 {
                            1
                        } else {
                            marginal
                        }
                    };
                    r.prefill_tokens = 0;
                    charge
                } else {
                    0
                };
                // A prefix-pull ship (pages pulled from a sibling shard at
                // enqueue, no re-prefill debt) still pays its transfer
                // price once, on the step the pulled pages first serve.
                if r.shipped_tokens > 0 {
                    if shipped_used == 0 {
                        shipped_used = r.shipped_tokens;
                    }
                    r.shipped_tokens = 0;
                }
                let swap = (request_cycles as f64
                    * self.cfg.swap_cost_factor.max(0.0)
                    * (swapped_used as f64 / denom))
                    .ceil() as u64;
                let ship = (request_cycles as f64
                    * self.cfg.ship_cost_factor.max(0.0)
                    * (shipped_used as f64 / denom))
                    .ceil() as u64;
                // With no off-device tokens in play this reduces to the
                // original one-cycle floor: eviction is never free. With
                // the tier off every term except rebuild is zero, so the
                // charge is bit-identical to the untiered engine.
                let rebuild = if was_reprefill && rebuild + swap + ship == 0 {
                    1
                } else {
                    rebuild
                };
                r.stats.attention_cycles += request_cycles;
                r.stats.prefill_cycles += prefill;
                r.stats.reprefill_cycles += rebuild;
                r.stats.swap_cycles += swap;
                r.stats.ship_cycles += ship;
                r.stats.swapped_tokens += swapped_used;
                r.stats.shipped_tokens += shipped_used;
                swap_cycles += swap;
                ship_cycles += ship;
                if r.stats.first_token_at.is_none() {
                    r.stats.first_token_at = Some(step);
                }
                // SLO accounting: this token races TTFT (if it is the
                // first) or the inter-token deadline since the previous
                // one — queue time after a preemption counts against ITL,
                // which is exactly what SLO-aware eviction must weigh. A
                // blown deadline ends the good-token count for good.
                let on_time = match r.last_token_at {
                    None => r
                        .req
                        .ttft_deadline
                        .is_none_or(|d| (step - r.stats.enqueued_at + 1) as u64 <= d),
                    Some(t) => r.req.itl_deadline.is_none_or(|d| (step - t) as u64 <= d),
                };
                if !on_time {
                    r.stats.slo_violated = true;
                }
                if !r.stats.slo_violated {
                    r.stats.good_tokens += 1;
                }
                r.last_token_at = Some(step);
                r.stats.generated += 1;
                r.context += 1;
                (
                    r.req.id,
                    r.stats.generated,
                    rebuild,
                    prefill,
                    built_kv,
                    (was_reprefill, swapped_used),
                )
            };
            if built_kv {
                self.batch.publish_prefix(slot);
            }
            let (was_reprefill, swapped_in_tokens) = swapped_in;
            if was_reprefill {
                // The rebuild consumed (or invalidated) whatever this
                // request held in the host tier; the holding is gone
                // either way and its pages return to host capacity.
                self.batch.pager_mut().swap_in(req_seq);
            }
            if swapped_in_tokens > 0 {
                self.emit(ServeEvent::SwappedIn {
                    id: req_id,
                    step,
                    tokens: swapped_in_tokens,
                });
            }
            attention_cycles += request_cycles;
            prefill_cycles += fresh_prefill_cycles;
            reprefill_cycles += rebuild_cycles;
            self.emit(ServeEvent::TokenGenerated {
                id,
                step,
                context: ctx,
                generated,
            });
        }

        let report = StepReport {
            index: step,
            batch: self.batch.len(),
            decoded,
            context_tokens,
            weight_cycles,
            attention_cycles,
            prefill_cycles,
            reprefill_cycles,
            swap_cycles,
            ship_cycles,
        };
        self.total_cycles += report.total_cycles();
        self.tokens_generated += report.decoded;
        self.steps.push(report);
        self.step_index += 1;

        // Retire completed requests; freed budget admits queue at the next
        // step (continuous batching).
        for mut r in self.batch.retire_finished() {
            r.stats.finished_at = Some(report.index);
            let (id, generated) = (r.req.id, r.stats.generated);
            self.finished.push(r.stats);
            self.emit(ServeEvent::Finished {
                id,
                step: report.index,
                generated,
            });
        }

        Ok(Some(report))
    }

    /// One cycle-level attention simulation of a request at context `ctx`,
    /// returning `(per-head cycles, pruning stats)`. The synthetic
    /// workload is deterministic in `(engine seed, request id, context)`.
    fn simulate_attention(
        &mut self,
        req_id: u64,
        ctx: usize,
    ) -> Result<(u64, PruneStats), ServeError> {
        let dim = self.cfg.accel.dim;
        let pc = self.cfg.accel.precision;
        let seed = self
            .cfg
            .seed
            .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((ctx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let inst = SynthInstance::generate(&SynthProfile::realistic(ctx, dim), seed);
        let q = QVector::quantize(&inst.query, pc);
        let keys = self
            .key_buf
            .quantize(inst.keys().data(), dim, pc)
            .map_err(ServeError::Core)?;
        let result = self.accel.run_attention(&q, &keys, inst.values());
        self.key_buf.reclaim(keys);
        let r = result?;
        Ok((r.cycles, r.prune))
    }

    /// Drives the engine until every request finishes, bounded by
    /// `max_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StepLimitExceeded`] if work remains after
    /// `max_steps`, or propagates simulation failures.
    pub fn run_to_completion(&mut self, max_steps: usize) -> Result<ServingReport, ServeError> {
        for _ in 0..max_steps {
            if self.step()?.is_none() {
                return Ok(self.report());
            }
        }
        if self.is_idle() {
            return Ok(self.report());
        }
        Err(ServeError::StepLimitExceeded {
            max_steps,
            unfinished: self.pending.len() + self.batch.len(),
        })
    }

    /// The report accumulated so far (complete once the engine is idle).
    #[must_use]
    pub fn report(&self) -> ServingReport {
        ServingReport {
            policy: self.policy.name().to_string(),
            steps: self.steps.clone(),
            requests: self.finished.clone(),
            total_cycles: self.total_cycles,
            tokens_generated: self.tokens_generated,
            preemptions: self.preemptions,
            admitted_prompt_tokens: self.admitted_prompt_tokens,
            admitted_hit_tokens: self.admitted_hit_tokens,
            rejections: self.rejections,
            prune: self.prune.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;

    fn small_cfg(mode: AccelMode) -> ServingConfig {
        let mut cfg = ServingConfig::new(AccelConfig::paper(mode, 1e-3).expect("thr"));
        cfg.heads = 2;
        cfg.weight_bytes = 1_000_000;
        cfg
    }

    fn mixed_requests(n: u64) -> Vec<ServingRequest> {
        (0..n)
            .map(|id| ServingRequest::new(id, 16 + (id as usize % 5) * 12, 2 + (id as usize % 3)))
            .collect()
    }

    #[test]
    fn admission_respects_batch_slot_limit() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 2,
            max_batch_tokens: 100_000,
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::new(cfg);
        for r in mixed_requests(5) {
            engine.enqueue(r).unwrap();
        }
        engine.step().unwrap().unwrap();
        assert!(engine.running() <= 2);
        assert_eq!(engine.running() + engine.pending(), 5);
    }

    #[test]
    fn admission_respects_token_budget() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 16,
            max_batch_tokens: 100, // fits ~2 small requests' final contexts
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::new(cfg);
        for id in 0..4 {
            engine.enqueue(ServingRequest::new(id, 30, 4)).unwrap();
        }
        let s = engine.step().unwrap().unwrap();
        // final_context = 34 each; budget 100 admits at most 2.
        assert_eq!(s.batch, 2);
    }

    #[test]
    fn oversized_request_rejected_up_front() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission.max_batch_tokens = 64;
        let mut engine = ServingEngine::new(cfg);
        let err = engine.enqueue(ServingRequest::new(0, 100, 10)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
    }

    #[test]
    fn zero_shapes_rejected() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        assert!(engine.enqueue(ServingRequest::new(0, 0, 1)).is_err());
        assert!(engine.enqueue(ServingRequest::new(0, 1, 0)).is_err());
    }

    #[test]
    fn continuous_batching_refills_from_queue() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 2,
            max_batch_tokens: 100_000,
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::new(cfg);
        // Two short requests and one queued behind them.
        for (id, steps) in [(0u64, 1usize), (1, 1), (2, 2)] {
            engine.enqueue(ServingRequest::new(id, 16, steps)).unwrap();
        }
        engine.step().unwrap().unwrap(); // 0 and 1 run and finish
        assert_eq!(engine.pending(), 1);
        let s2 = engine.step().unwrap().unwrap(); // 2 admitted immediately
        assert_eq!(s2.batch, 1);
        let report = engine.run_to_completion(8).unwrap();
        assert_eq!(report.requests.len(), 3);
    }

    #[test]
    fn conservation_every_request_finishes_with_its_token_target() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        let reqs = mixed_requests(6);
        let expected_tokens: usize = reqs.iter().map(|r| r.max_new_tokens).sum();
        for r in &reqs {
            engine.enqueue(*r).unwrap();
        }
        let report = engine.run_to_completion(64).unwrap();
        assert_eq!(report.requests.len(), reqs.len());
        assert_eq!(report.tokens_generated, expected_tokens);
        let by_id: std::collections::HashMap<u64, &RequestStats> =
            report.requests.iter().map(|s| (s.id, s)).collect();
        for r in &reqs {
            let stats = by_id[&r.id];
            assert_eq!(stats.generated, r.max_new_tokens);
            assert!(stats.finished_at.is_some());
            assert!(stats.admitted_at.is_some());
            assert!(stats.attention_cycles > 0);
        }
        let step_total: u64 = report.steps.iter().map(StepReport::total_cycles).sum();
        assert_eq!(step_total, report.total_cycles);
    }

    #[test]
    fn stalled_admission_is_an_error_not_silent_completion() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission.max_batch = 0;
        let mut engine = ServingEngine::new(cfg);
        engine.enqueue(ServingRequest::new(0, 16, 1)).unwrap();
        let err = engine.run_to_completion(4).unwrap_err();
        assert!(matches!(err, ServeError::AdmissionStalled { pending: 1 }));
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        engine.enqueue(ServingRequest::new(0, 16, 50)).unwrap();
        let err = engine.run_to_completion(3).unwrap_err();
        assert!(matches!(err, ServeError::StepLimitExceeded { .. }));
    }

    #[test]
    fn future_arrivals_tick_idle_steps_then_run() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        engine
            .enqueue(ServingRequest::new(0, 16, 1).arriving_at(2))
            .unwrap();
        let s0 = engine.step().unwrap().unwrap();
        assert_eq!((s0.batch, s0.total_cycles()), (0, 0));
        let s1 = engine.step().unwrap().unwrap();
        assert_eq!(s1.batch, 0);
        let s2 = engine.step().unwrap().unwrap();
        assert_eq!(s2.batch, 1);
        let report = engine.run_to_completion(4).unwrap();
        let stats = report.requests[0];
        assert_eq!(stats.enqueued_at, 2);
        assert_eq!(stats.session().unwrap().queue_wait_steps, 0);
        assert_eq!(stats.session().unwrap().time_to_first_token_steps, 1);
    }

    #[test]
    fn event_stream_tracks_the_request_lifecycle() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        engine.enqueue(ServingRequest::new(7, 16, 2)).unwrap();
        let report = engine.run_to_completion(8).unwrap();
        let events = engine.drain_events();
        assert_eq!(
            events,
            vec![
                ServeEvent::Enqueued { id: 7, step: 0 },
                ServeEvent::Admitted {
                    id: 7,
                    step: 0,
                    context: 16,
                    cached_tokens: 0
                },
                ServeEvent::TokenGenerated {
                    id: 7,
                    step: 0,
                    context: 16,
                    generated: 1
                },
                ServeEvent::TokenGenerated {
                    id: 7,
                    step: 1,
                    context: 17,
                    generated: 2
                },
                ServeEvent::Finished {
                    id: 7,
                    step: 1,
                    generated: 2
                },
            ]
        );
        assert!(engine.drain_events().is_empty());
        assert_eq!(report.tokens_generated, 2);
    }

    #[test]
    fn priority_aging_admits_high_priority_first_and_ages_the_rest() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 1,
            max_batch_tokens: 100_000,
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(PolicyKind::PriorityAging)
            .build();
        engine
            .enqueue(ServingRequest::new(0, 16, 2).with_priority(0))
            .unwrap();
        engine
            .enqueue(ServingRequest::new(1, 16, 2).with_priority(5))
            .unwrap();
        let report = engine.run_to_completion(16).unwrap();
        // Request 1 (higher priority) ran first despite arriving second.
        assert_eq!(report.requests[0].id, 1);
        assert_eq!(report.requests[1].id, 0);
    }

    #[test]
    fn shortest_job_first_prefers_fewer_remaining_tokens() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission.max_batch = 1;
        let mut engine = ServingEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(PolicyKind::ShortestJobFirst)
            .build();
        engine.enqueue(ServingRequest::new(0, 16, 6)).unwrap();
        engine.enqueue(ServingRequest::new(1, 16, 1)).unwrap();
        let report = engine.run_to_completion(16).unwrap();
        assert_eq!(report.requests[0].id, 1);
    }

    #[test]
    fn fair_round_robin_balances_clients() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 2,
            max_batch_tokens: 100_000,
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(PolicyKind::FairRoundRobin)
            .build();
        // Client 0 floods the queue; client 1 sends one request later.
        for id in 0..4 {
            engine
                .enqueue(ServingRequest::new(id, 16, 2).with_client(0))
                .unwrap();
        }
        engine
            .enqueue(ServingRequest::new(9, 16, 2).with_client(1))
            .unwrap();
        engine.step().unwrap().unwrap();
        // The first batch holds one request per client, not two of client 0.
        let admitted: Vec<u64> = engine
            .events()
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Admitted { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(admitted, vec![0, 9]);
    }

    #[test]
    fn preemption_evicts_and_charges_reprefill() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 1,
            max_batch_tokens: 100_000,
            page_size: 16,
            prefix_cache: false,
        };
        let mut engine = ServingEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(PolicyKind::PriorityAging)
            .enable_preemption()
            .build();
        engine
            .enqueue(ServingRequest::new(0, 16, 6).with_priority(0))
            .unwrap();
        engine.step().unwrap().unwrap(); // request 0 occupies the only slot
        engine
            .enqueue(ServingRequest::new(1, 16, 1).with_priority(9))
            .unwrap();
        let report = engine.run_to_completion(32).unwrap();
        assert_eq!(report.preemptions, 1);
        // Request 1 finished before the preempted request 0.
        assert_eq!(report.requests[0].id, 1);
        let evicted = report.requests.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(evicted.preemptions, 1);
        assert_eq!(evicted.generated, 6, "kept its progress");
        assert!(evicted.reprefill_cycles > 0, "eviction is never free");
        let reprefill: u64 = report.steps.iter().map(|s| s.reprefill_cycles).sum();
        assert_eq!(reprefill, evicted.reprefill_cycles);
    }

    #[test]
    fn preemption_off_means_no_evictions_for_every_policy() {
        for kind in PolicyKind::all() {
            let cfg = small_cfg(AccelMode::OutOfOrder);
            let mut engine = ServingEngine::builder(cfg.accel.clone())
                .config(cfg)
                .policy(kind)
                .build();
            for r in mixed_requests(5) {
                engine.enqueue(r).unwrap();
            }
            let report = engine.run_to_completion(64).unwrap();
            assert_eq!(report.preemptions, 0, "{kind}");
            assert!(report.requests.iter().all(|r| r.preemptions == 0));
        }
    }

    #[test]
    fn all_policies_complete_the_mixed_workload() {
        for kind in PolicyKind::all() {
            let cfg = small_cfg(AccelMode::OutOfOrder);
            let mut engine = ServingEngine::builder(cfg.accel.clone())
                .config(cfg)
                .policy(kind)
                .enable_preemption()
                .build();
            for (i, mut r) in mixed_requests(8).into_iter().enumerate() {
                r.priority = (i % 4) as u8;
                r.client_id = (i % 3) as u64;
                engine.enqueue(r).unwrap();
            }
            let report = engine.run_to_completion(128).unwrap();
            assert_eq!(report.requests.len(), 8, "{kind}");
            assert_eq!(report.policy, kind.name());
        }
    }

    #[test]
    fn policy_kind_round_trips_through_names() {
        for kind in PolicyKind::all() {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("nope".parse::<PolicyKind>().is_err());
    }
}
