//! Paged KV-cache accounting for the serving engine, with copy-on-write
//! page sharing between requests that have a common prompt prefix.
//!
//! The engine's KV token budget
//! ([`max_batch_tokens`](super::AdmissionConfig::max_batch_tokens)) is
//! carved into fixed-size **pages** of [`page_size`](KvPager::page_size)
//! tokens each. Admission provisions
//! whole pages — a request's KV footprint is its *final* context rounded
//! up to page granularity, so partially-filled tail pages are real
//! fragmentation the budget pays for, exactly as in a paged KV allocator
//! (vLLM-style) on hardware.
//!
//! Paging is what makes **partial retention across preemptions** possible:
//! where the flat token budget forced an eviction to drop the victim's
//! whole KV state, the pager can free only a *suffix* of the victim's
//! pages ([`truncate`](KvPager::truncate)) and keep the prefix allocated
//! while the victim waits in the queue, so re-admission only re-prefills
//! the dropped tokens. The storage-level half of the same operation is
//! [`HeadCache::truncate`](topick_model::HeadCache::truncate), which drops
//! the concrete key/value rows the freed pages held.
//!
//! # Prefix caching
//!
//! With the prefix cache enabled
//! ([`with_prefix_cache`](KvPager::with_prefix_cache)), every page is
//! **reference counted** and
//! full prompt pages are labelled with a position-chained content hash
//! ([`register_prefix`](KvPager::register_prefix)). When a new request's
//! prompt shares a full-page-aligned prefix with pages already resident —
//! held by a running request, retained by a preempted request, or parked
//! in the cache after their last owner retired — admission **adopts**
//! those pages ([`adopt_prefix`](KvPager::adopt_prefix)) instead of
//! allocating and re-prefilling copies. Sharing is copy-on-write by
//! construction: only *full* prompt pages are ever shared, every token a
//! request writes (its prompt tail and generated suffix) lands in private
//! pages, so a shared page is immutable for as long as it is shared.
//!
//! Page lifecycle under the prefix cache:
//!
//! ```text
//! free ──reserve──▶ owned ──register──▶ shared (refs ≥ 1, indexed)
//!  ▲                  │                    │ release/truncate by the
//!  │              release │                ▼ last holder (refs → 0)
//!  │ (unkeyed page)  ◀────┘             cached (refs = 0, indexed, LRU)
//!  │                                       │
//!  └────────────── reclaimed ◀─────────────┘  (LRU eviction under
//!                 (unregistered)              allocation pressure, or
//!                                             re-adopted back to shared)
//! ```
//!
//! Refcount-0 cached pages are a best-effort cache, never a reservation:
//! [`reserve`](KvPager::reserve) reclaims them oldest-first when the free
//! list runs dry, so caching can only ever *add* admission capacity.
//!
//! # Host tier
//!
//! With a host tier provisioned ([`with_host_tier`](KvPager::with_host_tier)),
//! pages reclaimed from a preemption victim can be **swapped out** to a
//! bounded host-memory tier ([`swap_out`](KvPager::swap_out)) instead of
//! having their contents dropped. The device page itself returns to
//! circulation either way — the host tier models the *contents* surviving
//! off-device, so re-admission pays a priced copy-back
//! ([`swap_in`](KvPager::swap_in) plus the engine's
//! `swap_cost_factor` charge) instead of a full re-prefill of those
//! tokens. Host occupancy is bookkept per owner and bounded by the
//! configured capacity; a page's contents are never resident in both
//! tiers at once (swap-out happens only for pages leaving the device).

use std::collections::BTreeMap;

/// One owner's page table: the pages mapped to it, in token-position
/// order, plus the token count its allocation was provisioned for (the
/// basis of tail-page fragmentation accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
struct OwnerTable {
    owner: u64,
    /// Page indices in position order: `pages[j]` holds tokens
    /// `[j * page_size, (j + 1) * page_size)` of the owner's context.
    pages: Vec<usize>,
    /// Tokens the current allocation was provisioned for — always at most
    /// `pages.len() * page_size`; the difference is this owner's tail
    /// fragmentation.
    covered: usize,
}

/// A fixed-size-page allocator over the serving engine's KV token budget,
/// with optional reference-counted prefix sharing.
///
/// Pages are identified by dense indices `0..total_pages` and handed out
/// from a LIFO free list, so allocation order is deterministic. Owners are
/// engine-assigned arrival sequences (unique per request lifetime, unlike
/// caller-chosen request ids). With the prefix cache enabled, one page may
/// be mapped by several owners at once (`refcount > 1`) and pages whose
/// last owner released them stay resident in an LRU cache until
/// allocation pressure reclaims them.
///
/// # Examples
///
/// ```
/// use topick_accel::serve::kv_pager::KvPager;
///
/// let mut pager = KvPager::new(16, 160); // 10 pages of 16 tokens
/// assert_eq!(pager.total_pages(), 10);
/// assert_eq!(pager.pages_needed(40), 3); // tail page half-filled
///
/// pager.reserve(1, 40);
/// assert_eq!((pager.pages_of(1), pager.free_pages()), (3, 7));
///
/// // Preemption with partial retention: keep 1 page, free the rest.
/// assert_eq!(pager.truncate(1, 1), 2);
/// assert_eq!(pager.pages_of(1), 1);
///
/// // Re-admission tops the allocation back up to the full need.
/// pager.reserve(1, 40);
/// assert_eq!(pager.pages_of(1), 3);
///
/// assert_eq!(pager.release(1), 3);
/// assert_eq!(pager.free_pages(), 10);
/// ```
///
/// Prefix sharing:
///
/// ```
/// use topick_accel::serve::kv_pager::KvPager;
///
/// let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
/// let chain = [0xAAu64, 0xBB]; // content hashes of 2 full prompt pages
///
/// pager.reserve(1, 40);
/// pager.register_prefix(1, &chain);
///
/// // A second request with the same prompt prefix adopts both pages.
/// assert_eq!(pager.adopt_prefix(2, &chain), 2);
/// pager.reserve(2, 48);
/// assert_eq!(pager.pages_of(2), 3);      // 2 shared + 1 private
/// assert_eq!(pager.allocated_pages(), 4); // distinct pages, not 6
///
/// // The last holder retiring parks the shared pages in the cache.
/// pager.release(1);
/// pager.release(2);
/// assert_eq!((pager.cached_pages(), pager.free_pages()), (2, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPager {
    page_size: usize,
    total_pages: usize,
    /// LIFO free list of page indices (pop from the back).
    free: Vec<usize>,
    /// Per-owner page tables, in insertion order (deterministic iteration).
    tables: Vec<OwnerTable>,
    /// Owners currently mapping each page (0 = free or cached).
    refs: Vec<u32>,
    /// The chained content hash each page is registered under, if any.
    keys: Vec<Option<u64>>,
    /// Prefix index: chained content hash → resident page holding it.
    index: BTreeMap<u64, usize>,
    /// Refcount-0 pages kept resident for future prefix hits, oldest
    /// first — the LRU order reclamation follows.
    lru: Vec<usize>,
    cache_enabled: bool,
    /// Host-tier capacity in pages (0 = tier disabled).
    host_capacity: usize,
    /// Host-tier occupancy per owner, in pages. The host tier is modeled:
    /// it tracks how many reclaimed device pages' contents survive
    /// off-device per owner, not concrete page indices.
    host: BTreeMap<u64, usize>,
    /// Total host pages in use (always the sum of `host` values).
    host_used: usize,
}

impl KvPager {
    /// A pager carving `capacity_tokens` into pages of `page_size` tokens,
    /// with the prefix cache disabled.
    ///
    /// The page count is `capacity_tokens / page_size` rounded *down*: the
    /// pager never provisions more tokens than the budget allows, so a
    /// budget that is not page-aligned loses its remainder to
    /// fragmentation. A zero `page_size` is clamped to 1.
    #[must_use]
    pub fn new(page_size: usize, capacity_tokens: usize) -> Self {
        let page_size = page_size.max(1);
        let total_pages = capacity_tokens / page_size;
        Self {
            page_size,
            total_pages,
            // Pages pop back-to-front, so page 0 is allocated first.
            free: (0..total_pages).rev().collect(),
            tables: Vec::new(),
            refs: vec![0; total_pages],
            keys: vec![None; total_pages],
            index: BTreeMap::new(),
            lru: Vec::new(),
            cache_enabled: false,
            host_capacity: 0,
            host: BTreeMap::new(),
            host_used: 0,
        }
    }

    /// Enables or disables the shared-prefix cache. Disabled (the
    /// default), the pager behaves exactly like the pre-sharing allocator:
    /// no page is ever shared or kept resident past its owner's release.
    #[must_use]
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Whether the shared-prefix cache is enabled.
    #[must_use]
    pub fn prefix_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Provisions a bounded host-memory swap tier of `pages` pages
    /// (0 disables the tier — the default, preserving the drop-and-
    /// re-prefill behavior bit for bit).
    #[must_use]
    pub fn with_host_tier(mut self, pages: usize) -> Self {
        self.host_capacity = pages;
        self
    }

    /// Host-tier capacity in pages (0 = disabled).
    #[must_use]
    pub fn host_capacity(&self) -> usize {
        self.host_capacity
    }

    /// Host-tier pages currently occupied across all owners.
    #[must_use]
    pub fn host_pages_used(&self) -> usize {
        self.host_used
    }

    /// Host-tier pages held for `owner` (0 if none).
    #[must_use]
    pub fn host_pages_of(&self, owner: u64) -> usize {
        self.host.get(&owner).copied().unwrap_or(0)
    }

    /// Moves up to `pages` reclaimed device pages' contents to the host
    /// tier on behalf of `owner`, bounded by the tier's remaining
    /// capacity. Returns the pages actually swapped out (0 while the tier
    /// is disabled or full). Call *after* the device pages were dropped
    /// (`truncate`/`release`): the swap models their contents surviving
    /// off-device, so nothing is ever resident in both tiers.
    pub fn swap_out(&mut self, owner: u64, pages: usize) -> usize {
        let granted = pages.min(self.host_capacity.saturating_sub(self.host_used));
        if granted > 0 {
            *self.host.entry(owner).or_insert(0) += granted;
            self.host_used += granted;
        }
        granted
    }

    /// Takes `owner`'s entire host-tier holding back for copy-back on
    /// re-admission, freeing its host occupancy. Returns the pages copied
    /// back (0 if the owner held none).
    pub fn swap_in(&mut self, owner: u64) -> usize {
        let pages = self.host.remove(&owner).unwrap_or(0);
        self.host_used -= pages;
        pages
    }

    /// Drops `owner`'s host-tier holding without a copy-back (the owner
    /// retired, was rejected, or migrated to another shard). Returns the
    /// pages discarded.
    pub fn host_discard(&mut self, owner: u64) -> usize {
        self.swap_in(owner)
    }

    /// Tokens per page.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages the budget was carved into.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently on the free list.
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Refcount-0 pages kept resident for future prefix hits. Reclaimable
    /// on demand, so they count as available capacity for admission.
    #[must_use]
    pub fn cached_pages(&self) -> usize {
        self.lru.len()
    }

    /// Distinct pages currently mapped by at least one owner. Always
    /// satisfies `allocated_pages() + cached_pages() + free_pages() ==
    /// total_pages()` — the conservation invariant the property tests pin
    /// down. (With sharing, this counts distinct pages, not mappings; see
    /// [`mapped_pages`](Self::mapped_pages).)
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.total_pages - self.free.len() - self.lru.len()
    }

    /// Total page *mappings* across all owner tables — with sharing, one
    /// page mapped by `n` owners counts `n` times.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.tables.iter().map(|t| t.pages.len()).sum()
    }

    /// Owners currently mapping `page` (0 means the page is free or
    /// cached).
    ///
    /// # Panics
    ///
    /// Panics if `page >= total_pages()`.
    #[must_use]
    pub fn refcount(&self, page: usize) -> u32 {
        self.refs[page]
    }

    /// Pages held by `owner` (0 if the owner holds none).
    #[must_use]
    pub fn pages_of(&self, owner: u64) -> usize {
        self.table(owner).map_or(0, |i| self.tables[i].pages.len())
    }

    /// The number of `owner`'s pages shared with at least one other
    /// owner (pages whose refcount exceeds one) — not a count of peer
    /// owners.
    #[must_use]
    pub fn shared_pages_of(&self, owner: u64) -> usize {
        self.table(owner).map_or(0, |i| {
            self.tables[i]
                .pages
                .iter()
                .filter(|&&p| self.refs[p] > 1)
                .count()
        })
    }

    /// Pages needed to cover `tokens` (rounded up — the tail page counts
    /// even when partially filled).
    #[must_use]
    pub fn pages_needed(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_size)
    }

    /// Whether `owner` could grow its allocation to cover `tokens`. Pages
    /// the owner already holds (e.g. retained across a preemption) count
    /// toward the need, and refcount-0 cached pages count as reclaimable
    /// capacity.
    #[must_use]
    pub fn can_reserve(&self, owner: u64, tokens: usize) -> bool {
        let need = self
            .pages_needed(tokens)
            .saturating_sub(self.pages_of(owner));
        need <= self.free.len() + self.lru.len()
    }

    /// [`can_reserve`](Self::can_reserve) with prefix-cache awareness:
    /// pages adoptable from `chain` (see
    /// [`adopt_prefix`](Self::adopt_prefix)) reduce the allocation the
    /// owner still needs, while adoptable pages that currently sit in the
    /// cache stop counting as reclaimable capacity (adopting them keeps
    /// them resident).
    #[must_use]
    pub fn can_admit(&self, owner: u64, tokens: usize, chain: &[u64]) -> bool {
        let (hits, cached_hits) = self.adoptable(owner, chain);
        let need = self
            .pages_needed(tokens)
            .saturating_sub(self.pages_of(owner) + hits);
        need <= self.free.len() + self.lru.len() - cached_hits
    }

    /// The single definition of the adoptable-page walk: the resident
    /// pages of `chain` beyond the owner's held prefix, in position
    /// order, stopping at the first unresolved hash.
    fn adoptable_iter<'a>(
        &'a self,
        owner: u64,
        chain: &'a [u64],
    ) -> impl Iterator<Item = usize> + 'a {
        chain
            .iter()
            .skip(self.pages_of(owner))
            .map_while(|key| self.index.get(key).copied())
    }

    /// How many pages of `chain` the owner could adopt beyond the prefix
    /// it already holds, as `(hits, cached_hits)` — `cached_hits` of the
    /// hits currently sit at refcount 0 in the cache. The allocation-free
    /// counting view of [`adoptable_pages`](Self::adoptable_pages), for
    /// the admission feasibility hot path.
    #[must_use]
    pub fn adoptable(&self, owner: u64, chain: &[u64]) -> (usize, usize) {
        let mut hits = 0;
        let mut cached_hits = 0;
        for p in self.adoptable_iter(owner, chain) {
            hits += 1;
            if self.refs[p] == 0 {
                cached_hits += 1;
            }
        }
        (hits, cached_hits)
    }

    /// The resident pages the owner could adopt beyond the prefix it
    /// already holds, in position order (the page list behind
    /// [`adoptable`](Self::adoptable)).
    #[must_use]
    pub fn adoptable_pages(&self, owner: u64, chain: &[u64]) -> Vec<usize> {
        self.adoptable_iter(owner, chain).collect()
    }

    /// Maps every resident page of `chain` beyond the owner's held prefix
    /// into the owner's table, bumping refcounts (and pulling refcount-0
    /// pages back out of the cache). Stops at the first position whose
    /// hash has no resident page — chained hashes make any hit set a
    /// contiguous prefix. Returns the pages adopted.
    ///
    /// Adopted pages are shared copy-on-write: they hold full, immutable
    /// prompt pages, and every token the adopter writes lands in private
    /// pages allocated after them.
    pub fn adopt_prefix(&mut self, owner: u64, chain: &[u64]) -> usize {
        if chain.is_empty() {
            return 0;
        }
        let at = match self.table(owner) {
            Some(i) => i,
            None => {
                // Avoid creating an empty table on a guaranteed miss.
                if !self.index.contains_key(&chain[0]) {
                    return 0;
                }
                self.tables.push(OwnerTable {
                    owner,
                    pages: Vec::new(),
                    covered: 0,
                });
                self.tables.len() - 1
            }
        };
        let mut adopted = 0;
        loop {
            let pos = self.tables[at].pages.len();
            if pos >= chain.len() {
                break;
            }
            let Some(&p) = self.index.get(&chain[pos]) else {
                break;
            };
            if self.refs[p] == 0 {
                let i = self
                    .lru
                    .iter()
                    .position(|&c| c == p)
                    .expect("refcount-0 indexed page is cached");
                self.lru.remove(i);
            }
            self.refs[p] += 1;
            self.tables[at].pages.push(p);
            adopted += 1;
        }
        if adopted > 0 {
            // Adopted pages are full pages of valid tokens.
            let provisioned = self.tables[at].pages.len() * self.page_size;
            self.tables[at].covered = self.tables[at].covered.max(provisioned);
        } else if self.tables[at].pages.is_empty() {
            self.tables.remove(at);
        }
        adopted
    }

    /// Labels the owner's leading pages with the chained content hashes in
    /// `chain` and publishes them in the prefix index, making them
    /// adoptable by later admissions. Position `j` of the owner's table is
    /// labelled `chain[j]`; pages already labelled (their content was
    /// published before, possibly by another owner's identical prefix)
    /// are left as they are — first writer wins. A no-op while the prefix
    /// cache is disabled.
    pub fn register_prefix(&mut self, owner: u64, chain: &[u64]) {
        if !self.cache_enabled {
            return;
        }
        let Some(at) = self.table(owner) else {
            return;
        };
        for (pos, &key) in chain.iter().enumerate() {
            let Some(&p) = self.tables[at].pages.get(pos) else {
                break;
            };
            if self.keys[p].is_some() || self.index.contains_key(&key) {
                continue;
            }
            self.keys[p] = Some(key);
            self.index.insert(key, p);
        }
    }

    /// Ships the leading resident run of `chain` out of this pager (the
    /// donor side of cross-shard page shipping). Walks the chain in
    /// position order, stopping at the first key with no resident page,
    /// and returns the keys shipped. A hit that sits at refcount 0 in the
    /// cache **moves**: it leaves this pager's LRU and index and its page
    /// returns to the free list the same step it lands in the receiver. A
    /// hit still mapped by a running owner is **copied** — the holder
    /// keeps its page untouched.
    pub fn export_prefix(&mut self, chain: &[u64]) -> Vec<u64> {
        let mut shipped = Vec::new();
        for &key in chain {
            let Some(&p) = self.index.get(&key) else {
                break;
            };
            if self.refs[p] == 0 {
                let i = self
                    .lru
                    .iter()
                    .position(|&c| c == p)
                    .expect("refcount-0 indexed page is cached");
                self.lru.remove(i);
                self.unregister(p);
                self.free.push(p);
            }
            shipped.push(key);
        }
        shipped
    }

    /// Lands shipped prefix pages in this pager (the receiver side of
    /// cross-shard page shipping): each key gets a free page, is published
    /// in the prefix index and parked in the LRU cache, ready for the
    /// shipped request's admission to adopt. Keys already resident are
    /// skipped; landing stops when the free list runs dry (shipping never
    /// displaces resident state). Returns the pages landed. A no-op while
    /// the prefix cache is disabled.
    pub fn import_prefix(&mut self, keys: &[u64]) -> usize {
        if !self.cache_enabled {
            return 0;
        }
        let mut landed = 0;
        for &key in keys {
            if self.index.contains_key(&key) {
                continue;
            }
            let Some(p) = self.free.pop() else {
                break;
            };
            self.keys[p] = Some(key);
            self.index.insert(key, p);
            self.lru.push(p);
            landed += 1;
        }
        landed
    }

    /// Grows `owner`'s allocation until it covers `tokens`, reusing any
    /// pages it already holds (retained across a preemption, or adopted
    /// from the prefix index). Returns the pages newly allocated. When the
    /// free list runs dry, refcount-0 cached pages are reclaimed oldest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if free plus cached pages cannot cover the growth — callers
    /// gate on [`can_reserve`](Self::can_reserve) /
    /// [`can_admit`](Self::can_admit) (the engine's admission check), so
    /// running dry is an accounting bug, not a recoverable state.
    pub fn reserve(&mut self, owner: u64, tokens: usize) -> usize {
        let target = self.pages_needed(tokens);
        let at = match self.table(owner) {
            Some(i) => i,
            None => {
                self.tables.push(OwnerTable {
                    owner,
                    pages: Vec::new(),
                    covered: 0,
                });
                self.tables.len() - 1
            }
        };
        let mut grown = 0;
        while self.tables[at].pages.len() < target {
            let page = match self.free.pop() {
                Some(p) => p,
                None => self.reclaim_lru().expect(
                    "KV page reservation exceeds capacity; admission must gate on can_reserve",
                ),
            };
            self.refs[page] = 1;
            self.tables[at].pages.push(page);
            grown += 1;
        }
        self.tables[at].covered = self.tables[at].covered.max(tokens);
        grown
    }

    /// Unmaps every page of `owner` beyond the first `keep_pages` (the
    /// partial-retention half of a preemption: the retained prefix stays
    /// allocated while the owner waits in the queue). Returns the pages
    /// unmapped. Keeping zero pages removes the owner entirely.
    ///
    /// A dropped page only returns to circulation when its last mapping
    /// goes — shared pages are never reclaimed out from under another
    /// holder. A last-mapping drop frees the page, unless it is published
    /// in the prefix index and the cache is enabled, in which case it is
    /// parked in the LRU cache instead (still adoptable, reclaimed under
    /// pressure).
    pub fn truncate(&mut self, owner: u64, keep_pages: usize) -> usize {
        let Some(at) = self.table(owner) else {
            return 0;
        };
        let table = &mut self.tables[at];
        let keep = keep_pages.min(table.pages.len());
        let dropped: Vec<usize> = table.pages.drain(keep..).collect();
        table.covered = table.covered.min(keep * self.page_size);
        let n = dropped.len();
        for p in dropped {
            debug_assert!(self.refs[p] > 0, "dropping an unmapped page");
            self.refs[p] -= 1;
            if self.refs[p] > 0 {
                continue; // still mapped by another owner
            }
            if self.cache_enabled && self.keys[p].is_some() {
                self.lru.push(p);
            } else {
                self.unregister(p);
                self.free.push(p);
            }
        }
        if self.tables[at].pages.is_empty() {
            self.tables.remove(at);
        }
        n
    }

    /// Unmaps every page of `owner` (retirement, or reclaiming a queued
    /// request's retained pages under admission pressure). Returns the
    /// pages unmapped. Pages published in the prefix index outlive the
    /// release as cached pages — the shared-prefix cache that survives
    /// request retirement.
    pub fn release(&mut self, owner: u64) -> usize {
        self.truncate(owner, 0)
    }

    /// How many of the pages `truncate(owner, keep_pages)` would drop
    /// actually return to circulation (become free or cached): dropped
    /// pages at refcount 1 that are not in `exclude`. Pages shared with
    /// another holder stay allocated, and `exclude` lets a preemption plan
    /// discount pages an admission candidate is itself about to adopt.
    #[must_use]
    pub fn releasable_pages(&self, owner: u64, keep_pages: usize, exclude: &[usize]) -> usize {
        self.table(owner).map_or(0, |at| {
            let pages = &self.tables[at].pages;
            pages[keep_pages.min(pages.len())..]
                .iter()
                .filter(|&&p| self.refs[p] == 1 && !exclude.contains(&p))
                .count()
        })
    }

    /// Total tail-page fragmentation across all owners, in tokens: pages
    /// are provisioned whole, so each owner pays `pages × page_size −
    /// provisioned-for tokens`. Recomputed as allocations change — it
    /// shrinks when retention trims an owner to a page boundary and grows
    /// back when re-admission re-provisions the full context. (Shared
    /// pages count once per mapping: this is provisioning overhead, not
    /// distinct memory.)
    #[must_use]
    pub fn fragmented_tokens(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.pages.len() * self.page_size - t.covered)
            .sum()
    }

    /// Tokens `owner`'s current allocation was provisioned for (0 if the
    /// owner holds no pages).
    #[must_use]
    pub fn covered_tokens(&self, owner: u64) -> usize {
        self.table(owner).map_or(0, |i| self.tables[i].covered)
    }

    /// Checks every internal invariant, panicking with a description of
    /// the first violation — the conservation oracle the property tests
    /// drive:
    ///
    /// * free, cached and mapped pages partition `0..total_pages`;
    /// * every page's refcount equals its number of table mappings
    ///   (no page is owned by zero holders while marked allocated, and
    ///   none is double-freed);
    /// * the prefix index and per-page keys agree both ways, and cached
    ///   pages are exactly the refcount-0 indexed pages;
    /// * no owner is provisioned for more tokens than its pages hold;
    /// * host-tier occupancy sums to its per-owner bookkeeping and never
    ///   exceeds the tier's capacity.
    pub fn validate(&self) {
        let mut mappings = vec![0u32; self.total_pages];
        for t in &self.tables {
            assert!(
                t.covered <= t.pages.len() * self.page_size,
                "owner {} provisioned for {} tokens with only {} pages",
                t.owner,
                t.covered,
                t.pages.len()
            );
            for &p in &t.pages {
                mappings[p] += 1;
            }
        }
        for (p, (&refs, &mapped)) in self.refs.iter().zip(&mappings).enumerate() {
            assert_eq!(
                refs, mapped,
                "page {p}: refcount {refs} but {mapped} table mappings"
            );
        }
        let mut seen = vec![false; self.total_pages];
        for &p in &self.free {
            assert!(!seen[p], "page {p} on the free list twice");
            seen[p] = true;
            assert_eq!(self.refs[p], 0, "free page {p} has owners");
            assert!(self.keys[p].is_none(), "free page {p} still registered");
        }
        for &p in &self.lru {
            assert!(!seen[p], "cached page {p} also free or cached twice");
            seen[p] = true;
            assert_eq!(self.refs[p], 0, "cached page {p} has owners");
            assert!(self.keys[p].is_some(), "cached page {p} not registered");
        }
        for (p, &was_seen) in seen.iter().enumerate() {
            assert!(
                was_seen || self.refs[p] > 0,
                "page {p} is neither free, cached nor mapped"
            );
            assert!(
                !(was_seen && self.refs[p] > 0),
                "page {p} is mapped while free or cached"
            );
            if let Some(key) = self.keys[p] {
                assert_eq!(
                    self.index.get(&key),
                    Some(&p),
                    "page {p} key not in the index"
                );
            }
        }
        for (&key, &p) in &self.index {
            assert_eq!(
                self.keys[p],
                Some(key),
                "index entry {key:#x} → page {p} not labelled back"
            );
        }
        assert_eq!(
            self.allocated_pages() + self.cached_pages() + self.free_pages(),
            self.total_pages(),
            "page conservation violated"
        );
        let host_sum: usize = self.host.values().sum();
        assert_eq!(
            self.host_used, host_sum,
            "host tier occupancy {} disagrees with per-owner sum {}",
            self.host_used, host_sum
        );
        assert!(
            self.host_used <= self.host_capacity,
            "host tier over capacity: {} of {} pages",
            self.host_used,
            self.host_capacity
        );
    }

    /// Reclaims the least-recently-cached page for reallocation,
    /// unregistering it from the prefix index.
    fn reclaim_lru(&mut self) -> Option<usize> {
        if self.lru.is_empty() {
            return None;
        }
        let p = self.lru.remove(0);
        self.unregister(p);
        Some(p)
    }

    fn unregister(&mut self, page: usize) {
        if let Some(key) = self.keys[page].take() {
            self.index.remove(&key);
        }
    }

    fn table(&self, owner: u64) -> Option<usize> {
        self.tables.iter().position(|t| t.owner == owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_budget_into_pages_rounding_down() {
        let pager = KvPager::new(16, 100);
        assert_eq!(pager.total_pages(), 6); // 96 tokens; 4 lost to alignment
        assert_eq!(pager.free_pages(), 6);
        assert_eq!(pager.allocated_pages(), 0);
    }

    #[test]
    fn zero_page_size_is_clamped() {
        let pager = KvPager::new(0, 10);
        assert_eq!(pager.page_size(), 1);
        assert_eq!(pager.total_pages(), 10);
    }

    #[test]
    fn reserve_counts_fragmentation() {
        let mut pager = KvPager::new(16, 160);
        assert_eq!(pager.reserve(7, 17), 2); // 1 full + 1 tail page
        assert_eq!(pager.pages_of(7), 2);
        assert_eq!(pager.free_pages(), 8);
        // Growing within already-held pages allocates nothing.
        assert_eq!(pager.reserve(7, 30), 0);
        assert_eq!(pager.reserve(7, 33), 1);
        assert_eq!(pager.pages_of(7), 3);
    }

    #[test]
    fn truncate_retains_a_prefix_and_release_empties() {
        let mut pager = KvPager::new(8, 64);
        pager.reserve(1, 40); // 5 pages
        assert_eq!(pager.truncate(1, 2), 3);
        assert_eq!(pager.pages_of(1), 2);
        assert_eq!(pager.free_pages(), 6);
        // Truncating to more pages than held frees nothing.
        assert_eq!(pager.truncate(1, 9), 0);
        assert_eq!(pager.release(1), 2);
        assert_eq!(pager.pages_of(1), 0);
        assert_eq!(pager.free_pages(), 8);
        // Releasing an unknown owner is a no-op.
        assert_eq!(pager.release(42), 0);
    }

    #[test]
    fn accounting_is_leak_free_across_churn() {
        let mut pager = KvPager::new(4, 64); // 16 pages
        pager.reserve(1, 20);
        pager.reserve(2, 9);
        pager.truncate(1, 1);
        pager.reserve(3, 16);
        pager.release(2);
        pager.reserve(1, 20);
        assert_eq!(
            pager.allocated_pages() + pager.free_pages(),
            pager.total_pages()
        );
        pager.validate();
    }

    #[test]
    fn can_reserve_credits_held_pages() {
        let mut pager = KvPager::new(8, 32); // 4 pages
        pager.reserve(1, 24); // 3 pages
        assert!(!pager.can_reserve(2, 16)); // needs 2, only 1 free
        pager.truncate(1, 1);
        // Owner 1 re-reserving its original need only asks for the delta.
        assert!(pager.can_reserve(1, 24));
        assert!(pager.can_reserve(2, 16));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn reserve_past_capacity_panics() {
        let mut pager = KvPager::new(8, 16);
        pager.reserve(1, 100);
    }

    #[test]
    fn adoption_shares_pages_and_refcounts_them() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [11u64, 22, 33];
        pager.reserve(1, 56); // 4 pages: 3 full prompt pages + tail
        pager.register_prefix(1, &chain);
        assert_eq!(pager.adoptable(2, &chain), (3, 0));

        assert_eq!(pager.adopt_prefix(2, &chain), 3);
        pager.reserve(2, 60); // 4 pages total: 3 shared + 1 private
        assert_eq!(pager.pages_of(2), 4);
        assert_eq!(pager.shared_pages_of(1), 3);
        assert_eq!(pager.shared_pages_of(2), 3);
        assert_eq!(pager.allocated_pages(), 5); // 3 shared + 2 private
        assert_eq!(pager.mapped_pages(), 8);
        pager.validate();

        // Dropping one holder keeps the shared pages allocated.
        pager.release(1);
        assert_eq!(pager.allocated_pages(), 4);
        assert_eq!(pager.cached_pages(), 0);
        pager.validate();
    }

    #[test]
    fn released_prefix_pages_are_cached_then_readopted() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [7u64, 8];
        pager.reserve(1, 40);
        pager.register_prefix(1, &chain);
        pager.release(1);
        // Registered pages outlive retirement; the private tail is freed.
        assert_eq!(pager.cached_pages(), 2);
        assert_eq!(pager.free_pages(), 8);
        pager.validate();

        // A later request adopts straight out of the cache.
        assert_eq!(pager.adoptable(2, &chain), (2, 2));
        assert_eq!(pager.adopt_prefix(2, &chain), 2);
        assert_eq!(pager.cached_pages(), 0);
        assert_eq!(pager.pages_of(2), 2);
        pager.validate();
    }

    #[test]
    fn cached_pages_are_reclaimed_lru_first_under_pressure() {
        let mut pager = KvPager::new(16, 64).with_prefix_cache(true); // 4 pages
        pager.reserve(1, 16);
        pager.register_prefix(1, &[100]);
        pager.release(1);
        pager.reserve(2, 16);
        pager.register_prefix(2, &[200]);
        pager.release(2);
        assert_eq!((pager.cached_pages(), pager.free_pages()), (2, 2));

        // Needing 4 pages reclaims both cached pages, oldest first; the
        // index forgets them.
        assert!(pager.can_reserve(3, 64));
        pager.reserve(3, 64);
        assert_eq!(pager.cached_pages(), 0);
        assert_eq!(pager.adoptable(4, &[100]), (0, 0));
        assert_eq!(pager.adoptable(4, &[200]), (0, 0));
        pager.validate();
    }

    #[test]
    fn adoption_extends_a_retained_prefix() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [1u64, 2, 3];
        pager.reserve(1, 48);
        pager.register_prefix(1, &chain);

        // Owner 2 shares the prompt; preemption trimmed it to 1 page.
        pager.adopt_prefix(2, &chain);
        pager.truncate(2, 1);
        assert_eq!(pager.pages_of(2), 1);
        // Re-admission adopts positions 1..3 again (still resident).
        assert_eq!(pager.adoptable(2, &chain), (2, 0));
        assert_eq!(pager.adopt_prefix(2, &chain), 2);
        assert_eq!(pager.pages_of(2), 3);
        pager.validate();
    }

    #[test]
    fn shared_pages_are_not_releasable_and_exclusions_hold() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [5u64, 6];
        pager.reserve(1, 56); // 4 pages: 2 registered + 2 private
        pager.register_prefix(1, &chain);
        pager.adopt_prefix(2, &chain);

        // Owner 1's first two pages are shared with owner 2: truncating
        // owner 1 to nothing would only return its two private pages.
        assert_eq!(pager.releasable_pages(1, 0, &[]), 2);
        // A plan that also intends to adopt page 0 must discount it.
        let hit = pager.adoptable_pages(3, &chain);
        assert_eq!(pager.releasable_pages(2, 0, &hit), 0);
        pager.validate();
    }

    #[test]
    fn register_prefix_first_writer_wins() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [9u64];
        pager.reserve(1, 16);
        pager.register_prefix(1, &chain);
        // Owner 2 holds a private copy of identical content; registering
        // it again must not displace the canonical page.
        pager.reserve(2, 16);
        pager.register_prefix(2, &chain);
        let canonical = pager.adoptable_pages(3, &chain);
        pager.release(1);
        pager.release(2);
        // Only the canonical copy is cached; the duplicate was freed.
        assert_eq!(pager.cached_pages(), 1);
        assert_eq!(pager.adoptable_pages(3, &chain), canonical);
        pager.validate();
    }

    #[test]
    fn cache_disabled_never_retains_or_shares() {
        let mut pager = KvPager::new(16, 64);
        pager.reserve(1, 32);
        pager.register_prefix(1, &[1, 2]); // no-op while disabled
        assert_eq!(pager.adoptable(2, &[1, 2]), (0, 0));
        pager.release(1);
        assert_eq!(pager.cached_pages(), 0);
        assert_eq!(pager.free_pages(), 4);
        pager.validate();
    }

    #[test]
    fn host_tier_bounds_swaps_and_conserves() {
        let mut pager = KvPager::new(16, 160).with_host_tier(3);
        assert_eq!(pager.host_capacity(), 3);
        pager.reserve(1, 80); // 5 pages
        let dropped = pager.truncate(1, 1);
        assert_eq!(dropped, 4);
        // Only 3 of the 4 dropped pages fit the host tier.
        assert_eq!(pager.swap_out(1, dropped), 3);
        assert_eq!(pager.host_pages_of(1), 3);
        assert_eq!(pager.host_pages_used(), 3);
        pager.validate();
        // A second victim finds the tier full.
        pager.reserve(2, 32);
        pager.release(2);
        assert_eq!(pager.swap_out(2, 2), 0);
        // Copy-back takes the whole holding and frees the tier.
        assert_eq!(pager.swap_in(1), 3);
        assert_eq!(pager.host_pages_used(), 0);
        assert_eq!(pager.swap_in(1), 0);
        pager.validate();
    }

    #[test]
    fn disabled_host_tier_never_accepts_a_swap() {
        let mut pager = KvPager::new(16, 64);
        pager.reserve(1, 64);
        pager.release(1);
        assert_eq!(pager.swap_out(1, 4), 0);
        assert_eq!(pager.host_pages_used(), 0);
        pager.validate();
    }

    #[test]
    fn host_discard_drops_without_copy_back() {
        let mut pager = KvPager::new(16, 64).with_host_tier(8);
        pager.reserve(1, 32);
        pager.release(1);
        assert_eq!(pager.swap_out(1, 2), 2);
        assert_eq!(pager.host_discard(1), 2);
        assert_eq!(pager.host_pages_used(), 0);
        pager.validate();
    }

    #[test]
    fn export_moves_cached_pages_and_copies_shared_ones() {
        let mut donor = KvPager::new(16, 160).with_prefix_cache(true);
        let chain = [41u64, 42, 43];
        donor.reserve(1, 48);
        donor.register_prefix(1, &chain);

        // Shared (refcount > 0) pages are copied: the donor keeps them.
        assert_eq!(donor.export_prefix(&chain), vec![41, 42, 43]);
        assert_eq!(donor.pages_of(1), 3);
        donor.validate();

        // Cached (refcount 0) pages move: they leave the donor's cache
        // and free up the same step.
        donor.release(1);
        assert_eq!(donor.cached_pages(), 3);
        assert_eq!(donor.export_prefix(&chain[..2]), vec![41, 42]);
        assert_eq!(donor.cached_pages(), 1);
        assert_eq!(donor.free_pages(), 9);
        assert_eq!(donor.adoptable(2, &chain), (0, 0)); // chain broken at 41
        donor.validate();
    }

    #[test]
    fn import_lands_shipped_keys_as_adoptable_cache() {
        let mut receiver = KvPager::new(16, 64).with_prefix_cache(true);
        assert_eq!(receiver.import_prefix(&[41, 42]), 2);
        assert_eq!(receiver.cached_pages(), 2);
        assert_eq!(receiver.adoptable(1, &[41, 42]), (2, 2));
        // Re-importing resident keys is a no-op.
        assert_eq!(receiver.import_prefix(&[41, 42]), 0);
        // Landing stops when the free list runs dry.
        receiver.reserve(9, 32);
        assert_eq!(receiver.free_pages(), 0);
        assert_eq!(receiver.import_prefix(&[50]), 0);
        receiver.validate();

        // Cache disabled: shipping cannot land anything.
        let mut plain = KvPager::new(16, 64);
        assert_eq!(plain.import_prefix(&[1]), 0);
        plain.validate();
    }

    #[test]
    fn fragmentation_is_recomputed_after_trims_and_adoption() {
        let mut pager = KvPager::new(16, 160).with_prefix_cache(true);
        // 44 tokens over 3 pages: 4 tokens of tail fragmentation.
        pager.reserve(1, 44);
        assert_eq!(pager.fragmented_tokens(), 4);
        assert_eq!(pager.covered_tokens(1), 44);

        // Retention trims to a page boundary: fragmentation vanishes.
        pager.truncate(1, 2);
        assert_eq!(pager.fragmented_tokens(), 0);
        assert_eq!(pager.covered_tokens(1), 32);

        // Re-provisioning the full context brings the tail back.
        pager.reserve(1, 44);
        assert_eq!(pager.fragmented_tokens(), 4);

        // Shared-page adoption: adopted pages are full, so the adopter's
        // fragmentation comes only from its own tail.
        pager.register_prefix(1, &[70, 71]);
        pager.adopt_prefix(2, &[70, 71]);
        assert_eq!(pager.fragmented_tokens(), 4); // owner 2 adds none yet
        pager.reserve(2, 50); // 4 pages (64 tokens) for 50
        assert_eq!(pager.fragmented_tokens(), 4 + 14);
        pager.validate();
    }
}
