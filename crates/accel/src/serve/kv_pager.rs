//! Paged KV-cache accounting for the serving engine.
//!
//! The engine's KV token budget
//! ([`max_batch_tokens`](super::AdmissionConfig::max_batch_tokens)) is
//! carved into fixed-size **pages** of [`page_size`](KvPager::page_size)
//! tokens each. Admission provisions
//! whole pages — a request's KV footprint is its *final* context rounded
//! up to page granularity, so partially-filled tail pages are real
//! fragmentation the budget pays for, exactly as in a paged KV allocator
//! (vLLM-style) on hardware.
//!
//! Paging is what makes **partial retention across preemptions** possible:
//! where the flat token budget forced an eviction to drop the victim's
//! whole KV state, the pager can free only a *suffix* of the victim's
//! pages ([`truncate`](KvPager::truncate)) and keep the prefix allocated
//! while the victim waits in the queue, so re-admission only re-prefills
//! the dropped tokens. The storage-level half of the same operation is
//! [`HeadCache::truncate`](topick_model::HeadCache::truncate), which drops
//! the concrete key/value rows the freed pages held.

/// A fixed-size-page allocator over the serving engine's KV token budget.
///
/// Pages are identified by dense indices `0..total_pages` and handed out
/// from a LIFO free list, so allocation order is deterministic. Owners are
/// engine-assigned arrival sequences (unique per request lifetime, unlike
/// caller-chosen request ids).
///
/// # Examples
///
/// ```
/// use topick_accel::serve::kv_pager::KvPager;
///
/// let mut pager = KvPager::new(16, 160); // 10 pages of 16 tokens
/// assert_eq!(pager.total_pages(), 10);
/// assert_eq!(pager.pages_needed(40), 3); // tail page half-filled
///
/// pager.reserve(1, 40);
/// assert_eq!((pager.pages_of(1), pager.free_pages()), (3, 7));
///
/// // Preemption with partial retention: keep 1 page, free the rest.
/// assert_eq!(pager.truncate(1, 1), 2);
/// assert_eq!(pager.pages_of(1), 1);
///
/// // Re-admission tops the allocation back up to the full need.
/// pager.reserve(1, 40);
/// assert_eq!(pager.pages_of(1), 3);
///
/// assert_eq!(pager.release(1), 3);
/// assert_eq!(pager.free_pages(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPager {
    page_size: usize,
    total_pages: usize,
    /// LIFO free list of page indices (pop from the back).
    free: Vec<usize>,
    /// Per-owner page lists, in insertion order (deterministic iteration).
    tables: Vec<(u64, Vec<usize>)>,
}

impl KvPager {
    /// A pager carving `capacity_tokens` into pages of `page_size` tokens.
    ///
    /// The page count is `capacity_tokens / page_size` rounded *down*: the
    /// pager never provisions more tokens than the budget allows, so a
    /// budget that is not page-aligned loses its remainder to
    /// fragmentation. A zero `page_size` is clamped to 1.
    #[must_use]
    pub fn new(page_size: usize, capacity_tokens: usize) -> Self {
        let page_size = page_size.max(1);
        let total_pages = capacity_tokens / page_size;
        Self {
            page_size,
            total_pages,
            // Pages pop back-to-front, so page 0 is allocated first.
            free: (0..total_pages).rev().collect(),
            tables: Vec::new(),
        }
    }

    /// Tokens per page.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages the budget was carved into.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently on the free list.
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages currently allocated across all owners. Always satisfies
    /// `allocated_pages() + free_pages() == total_pages()` — the leak-free
    /// invariant the property tests pin down.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.tables.iter().map(|(_, pages)| pages.len()).sum()
    }

    /// Pages held by `owner` (0 if the owner holds none).
    #[must_use]
    pub fn pages_of(&self, owner: u64) -> usize {
        self.table(owner).map_or(0, |i| self.tables[i].1.len())
    }

    /// Pages needed to cover `tokens` (rounded up — the tail page counts
    /// even when partially filled).
    #[must_use]
    pub fn pages_needed(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_size)
    }

    /// Whether `owner` could grow its allocation to cover `tokens`. Pages
    /// the owner already holds (e.g. retained across a preemption) count
    /// toward the need.
    #[must_use]
    pub fn can_reserve(&self, owner: u64, tokens: usize) -> bool {
        let need = self
            .pages_needed(tokens)
            .saturating_sub(self.pages_of(owner));
        need <= self.free.len()
    }

    /// Grows `owner`'s allocation until it covers `tokens`, reusing any
    /// pages it already holds. Returns the pages newly allocated.
    ///
    /// # Panics
    ///
    /// Panics if the free list cannot cover the growth — callers gate on
    /// [`can_reserve`](Self::can_reserve) (the engine's admission check),
    /// so running dry is an accounting bug, not a recoverable state.
    pub fn reserve(&mut self, owner: u64, tokens: usize) -> usize {
        let target = self.pages_needed(tokens);
        let at = match self.table(owner) {
            Some(i) => i,
            None => {
                self.tables.push((owner, Vec::new()));
                self.tables.len() - 1
            }
        };
        let pages = &mut self.tables[at].1;
        let mut grown = 0;
        while pages.len() < target {
            let page = self
                .free
                .pop()
                .expect("KV page reservation exceeds capacity; admission must gate on can_reserve");
            pages.push(page);
            grown += 1;
        }
        grown
    }

    /// Frees every page of `owner` beyond the first `keep_pages` (the
    /// partial-retention half of a preemption: the retained prefix stays
    /// allocated while the owner waits in the queue). Returns the pages
    /// freed. Keeping zero pages removes the owner entirely.
    pub fn truncate(&mut self, owner: u64, keep_pages: usize) -> usize {
        let Some(at) = self.table(owner) else {
            return 0;
        };
        let pages = &mut self.tables[at].1;
        let freed: Vec<usize> = pages.drain(keep_pages.min(pages.len())..).collect();
        let n = freed.len();
        self.free.extend(freed);
        if self.tables[at].1.is_empty() {
            self.tables.remove(at);
        }
        n
    }

    /// Frees every page of `owner` (retirement, or reclaiming a queued
    /// request's retained pages under admission pressure). Returns the
    /// pages freed.
    pub fn release(&mut self, owner: u64) -> usize {
        self.truncate(owner, 0)
    }

    fn table(&self, owner: u64) -> Option<usize> {
        self.tables.iter().position(|(o, _)| *o == owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_budget_into_pages_rounding_down() {
        let pager = KvPager::new(16, 100);
        assert_eq!(pager.total_pages(), 6); // 96 tokens; 4 lost to alignment
        assert_eq!(pager.free_pages(), 6);
        assert_eq!(pager.allocated_pages(), 0);
    }

    #[test]
    fn zero_page_size_is_clamped() {
        let pager = KvPager::new(0, 10);
        assert_eq!(pager.page_size(), 1);
        assert_eq!(pager.total_pages(), 10);
    }

    #[test]
    fn reserve_counts_fragmentation() {
        let mut pager = KvPager::new(16, 160);
        assert_eq!(pager.reserve(7, 17), 2); // 1 full + 1 tail page
        assert_eq!(pager.pages_of(7), 2);
        assert_eq!(pager.free_pages(), 8);
        // Growing within already-held pages allocates nothing.
        assert_eq!(pager.reserve(7, 30), 0);
        assert_eq!(pager.reserve(7, 33), 1);
        assert_eq!(pager.pages_of(7), 3);
    }

    #[test]
    fn truncate_retains_a_prefix_and_release_empties() {
        let mut pager = KvPager::new(8, 64);
        pager.reserve(1, 40); // 5 pages
        assert_eq!(pager.truncate(1, 2), 3);
        assert_eq!(pager.pages_of(1), 2);
        assert_eq!(pager.free_pages(), 6);
        // Truncating to more pages than held frees nothing.
        assert_eq!(pager.truncate(1, 9), 0);
        assert_eq!(pager.release(1), 2);
        assert_eq!(pager.pages_of(1), 0);
        assert_eq!(pager.free_pages(), 8);
        // Releasing an unknown owner is a no-op.
        assert_eq!(pager.release(42), 0);
    }

    #[test]
    fn accounting_is_leak_free_across_churn() {
        let mut pager = KvPager::new(4, 64); // 16 pages
        pager.reserve(1, 20);
        pager.reserve(2, 9);
        pager.truncate(1, 1);
        pager.reserve(3, 16);
        pager.release(2);
        pager.reserve(1, 20);
        assert_eq!(
            pager.allocated_pages() + pager.free_pages(),
            pager.total_pages()
        );
    }

    #[test]
    fn can_reserve_credits_held_pages() {
        let mut pager = KvPager::new(8, 32); // 4 pages
        pager.reserve(1, 24); // 3 pages
        assert!(!pager.can_reserve(2, 16)); // needs 2, only 1 free
        pager.truncate(1, 1);
        // Owner 1 re-reserving its original need only asks for the delta.
        assert!(pager.can_reserve(1, 24));
        assert!(pager.can_reserve(2, 16));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn reserve_past_capacity_panics() {
        let mut pager = KvPager::new(8, 16);
        pager.reserve(1, 100);
    }
}
