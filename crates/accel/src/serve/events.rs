//! The typed event stream: every scheduling decision and generated token,
//! observable per step instead of only through the final report.

/// One observable scheduling or generation event.
///
/// Events are recorded in the order they happen; within one step the order
/// is admissions/preemptions first, then token generations, then
/// completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request entered the arrival queue.
    Enqueued {
        /// The request's id.
        id: u64,
        /// Engine step at enqueue time.
        step: usize,
    },
    /// A request joined the running batch.
    Admitted {
        /// The request's id.
        id: u64,
        /// Engine step of the admission.
        step: usize,
        /// The request's context length at admission.
        context: usize,
        /// Prompt tokens served out of the shared-prefix cache at this
        /// admission: their KV pages were adopted copy-on-write from a
        /// resident request (or the retained cache) instead of being
        /// allocated and prefilled (0 with prefix caching disabled).
        cached_tokens: usize,
    },
    /// A step advanced a request's chunked-prefill frontier without
    /// producing a token. Only emitted while a finite
    /// [`prefill_chunk_pages`](super::ServingConfig::prefill_chunk_pages)
    /// budget splits a prompt across steps — the step that *completes* the
    /// prompt emits its [`TokenGenerated`](Self::TokenGenerated) instead,
    /// so unlimited chunking (the default) never emits this.
    PrefillChunk {
        /// The request's id.
        id: u64,
        /// Engine step that built the chunk.
        step: usize,
        /// Prompt tokens whose KV exists after this chunk (the frontier).
        built_tokens: usize,
        /// Prompt tokens still to prefill after this chunk.
        remaining_tokens: usize,
    },
    /// A decode step produced one token for a request.
    TokenGenerated {
        /// The request's id.
        id: u64,
        /// Engine step that produced the token.
        step: usize,
        /// Context length the token was generated at.
        context: usize,
        /// Tokens generated so far, including this one.
        generated: usize,
    },
    /// The scheduler evicted a running request back to the queue.
    Preempted {
        /// The request's id.
        id: u64,
        /// Engine step of the eviction.
        step: usize,
        /// Tokens it had generated when evicted (kept; only the dropped
        /// part of the KV cache must be rebuilt on re-admission).
        generated: usize,
        /// KV tokens whose pages survived the eviction (a prefix of the
        /// context, per the configured
        /// [`RetentionPolicy`](super::RetentionPolicy); 0 under full
        /// re-prefill).
        retained_tokens: usize,
        /// KV tokens whose pages were freed — what re-admission will
        /// re-prefill.
        dropped_tokens: usize,
    },
    /// A request reached its token target and left the batch.
    Finished {
        /// The request's id.
        id: u64,
        /// Engine step after which it completed.
        step: usize,
        /// Total tokens it generated.
        generated: usize,
    },
    /// Admission refused a queued request whose TTFT deadline had already
    /// elapsed — prefilling it could only produce zero-goodput tokens.
    /// Only emitted under the opt-in
    /// [`reject_expired_ttft`](super::ServingConfig::reject_expired_ttft)
    /// flag; the request still counts against
    /// [`deadline_attainment`](super::ServingReport::deadline_attainment).
    Rejected {
        /// The request's id.
        id: u64,
        /// Engine step of the rejection.
        step: usize,
        /// Steps the request had waited past its TTFT deadline.
        overdue_steps: usize,
    },
    /// Reclaimed KV pages moved to the modeled host tier instead of being
    /// dropped: re-admission will pay a priced copy-back
    /// ([`SwappedIn`](Self::SwappedIn)) for these tokens instead of
    /// re-prefilling them. Only emitted with a host tier provisioned
    /// ([`host_pages`](super::ServingConfig::host_pages) > 0).
    SwappedOut {
        /// The request's id.
        id: u64,
        /// Engine step of the swap-out.
        step: usize,
        /// KV tokens whose contents moved to the host tier.
        tokens: usize,
    },
    /// A re-admitted request copied its swapped KV back from the host
    /// tier, charged at
    /// [`swap_cost_factor`](super::ServingConfig::swap_cost_factor) of the
    /// equivalent prefill instead of the full re-prefill price.
    SwappedIn {
        /// The request's id.
        id: u64,
        /// Engine step of the copy-back.
        step: usize,
        /// KV tokens copied back from the host tier.
        tokens: usize,
    },
}

impl ServeEvent {
    /// The id of the request the event concerns.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Self::Enqueued { id, .. }
            | Self::Admitted { id, .. }
            | Self::PrefillChunk { id, .. }
            | Self::TokenGenerated { id, .. }
            | Self::Preempted { id, .. }
            | Self::Finished { id, .. }
            | Self::Rejected { id, .. }
            | Self::SwappedOut { id, .. }
            | Self::SwappedIn { id, .. } => id,
        }
    }

    /// The engine step the event happened in.
    #[must_use]
    pub fn step(&self) -> usize {
        match *self {
            Self::Enqueued { step, .. }
            | Self::Admitted { step, .. }
            | Self::PrefillChunk { step, .. }
            | Self::TokenGenerated { step, .. }
            | Self::Preempted { step, .. }
            | Self::Finished { step, .. }
            | Self::Rejected { step, .. }
            | Self::SwappedOut { step, .. }
            | Self::SwappedIn { step, .. } => step,
        }
    }
}
