//! Live per-request state and the running batch with its admission limits.

use super::kv_pager::KvPager;
use super::policy::RunningView;
use super::queue::ServingRequest;
use super::stats::RequestStats;

/// Admission-control limits of the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests decoding concurrently.
    pub max_batch: usize,
    /// Maximum total context tokens across the batch (bounds KV-cache
    /// footprint). The budget is carved into fixed-size pages (see
    /// [`page_size`](Self::page_size)); a request is admitted only if
    /// free pages still cover its *final* context, so without preemption
    /// it can never be forced out mid-flight.
    pub max_batch_tokens: usize,
    /// Tokens per KV page. Admission provisions whole pages, so a
    /// request's footprint rounds up to page granularity — partially
    /// filled tail pages are fragmentation the budget pays for, and a
    /// non-page-aligned `max_batch_tokens` loses its remainder.
    pub page_size: usize,
    /// Enables copy-on-write prefix caching over the pager: full prompt
    /// pages are content-hashed and shared between requests with a common
    /// prompt prefix, and refcount-0 pages of retired requests stay
    /// resident as an LRU cache until allocation pressure reclaims them.
    /// Off by default — the schedule is then bit-identical to the
    /// sharing-free pager.
    pub prefix_cache: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_batch_tokens: 16 * 2048,
            page_size: 16,
            prefix_cache: false,
        }
    }
}

/// One request's live state inside the engine (queued or running).
#[derive(Debug, Clone)]
pub(crate) struct ActiveRequest {
    pub(crate) req: ServingRequest,
    /// Current context length (prompt + generated tokens).
    pub(crate) context: usize,
    /// Engine-assigned enqueue order, the stable tie-break every policy
    /// falls back to (and the request's owner key in the [`KvPager`] —
    /// unlike caller-chosen ids, sequences are unique).
    pub(crate) arrival_seq: u64,
    /// Step since which the request has been waiting in the queue (its
    /// arrival, or its most recent eviction) — the baseline policies age
    /// against, so time spent *running* never counts as waiting.
    pub(crate) wait_since: usize,
    /// Step of the most recent admission (first or after a preemption).
    pub(crate) last_admitted_at: Option<usize>,
    /// Step of the most recent eviction, for the re-admission cooldown.
    pub(crate) last_evicted_at: Option<usize>,
    /// Whether the next decode step must rebuild this request's KV cache
    /// (set on eviction; charged to the step model after re-admission).
    pub(crate) needs_reprefill: bool,
    /// KV tokens the next rebuild must re-prefill: the suffix of the
    /// context that eviction dropped (the whole context under full
    /// re-prefill; less when pages were retained; grows back to the whole
    /// context if retained pages are reclaimed while queued).
    pub(crate) dropped_tokens: usize,
    /// Whether decode steps still owe prompt prefill (set at enqueue when
    /// the engine prices prefill; cleared once the whole prompt is built —
    /// in one lump, or chunk by chunk under
    /// [`prefill_chunk_pages`](super::ServingConfig::prefill_chunk_pages)
    /// — or folded into the re-prefill debt if the request is evicted
    /// mid-prefill).
    pub(crate) needs_prefill: bool,
    /// Prompt tokens still to prefill — the whole prompt minus whatever
    /// admission adopted from the prefix cache, shrinking chunk by chunk
    /// as the prefill frontier advances. While `needs_prefill` holds, the
    /// frontier (tokens of prompt KV that exist) is
    /// `context - prefill_tokens`.
    pub(crate) prefill_tokens: usize,
    /// KV tokens whose contents survive in the modeled host tier: a
    /// contiguous region directly above the retained prefix, swapped out
    /// at eviction (or retained-page reclaim) when
    /// [`host_pages`](super::ServingConfig::host_pages) provisions room.
    /// The next rebuild copies them back at
    /// [`swap_cost_factor`](super::ServingConfig::swap_cost_factor) of the
    /// prefill price instead of recomputing them.
    pub(crate) swapped_tokens: usize,
    /// KV tokens whose pages arrived (or are arriving) from a sibling
    /// shard: a migrated running request's whole built context, or a
    /// prefix pulled at enqueue. The first decode step charges the
    /// modeled transfer at
    /// [`ship_cost_factor`](super::ServingConfig::ship_cost_factor) and
    /// the tokens leave the rebuild debt.
    pub(crate) shipped_tokens: usize,
    /// Step of the most recent generated token, if any — the baseline the
    /// inter-token SLO races against.
    pub(crate) last_token_at: Option<usize>,
    /// Position-chained content hashes of the request's full prompt pages
    /// (empty while prefix caching is disabled).
    pub(crate) page_keys: Vec<u64>,
    pub(crate) stats: RequestStats,
}

impl ActiveRequest {
    /// Context length when the request will retire (bounds its KV budget).
    pub(crate) fn final_context(&self) -> usize {
        self.req.prompt_len + self.req.max_new_tokens
    }

    /// Context tokens whose KV genuinely exists right now: the full
    /// context minus any outstanding prefill or re-prefill debt. This is
    /// the prefill frontier while chunked prefill is in flight, the cap on
    /// what retention may keep across an eviction, and the bound on what
    /// the prefix cache may publish.
    pub(crate) fn built_tokens(&self) -> usize {
        if self.needs_prefill {
            self.context - self.prefill_tokens
        } else if self.needs_reprefill {
            self.context - self.dropped_tokens
        } else {
            self.context
        }
    }
}

/// The running batch plus the limits admission enforces. The engine owns
/// the *invariants* (never exceed `max_batch` slots or the KV page
/// budget); policies only choose the order.
///
/// KV accounting lives here too: the [`KvPager`] carves
/// `max_batch_tokens` into `page_size`-token pages, and every admission,
/// preemption and retirement allocates or frees pages through it.
#[derive(Debug, Clone)]
pub(crate) struct BatchState {
    running: Vec<ActiveRequest>,
    limits: AdmissionConfig,
    pager: KvPager,
}

impl BatchState {
    pub(crate) fn new(limits: AdmissionConfig, host_pages: usize) -> Self {
        Self {
            running: Vec::new(),
            pager: KvPager::new(limits.page_size, limits.max_batch_tokens)
                .with_prefix_cache(limits.prefix_cache)
                .with_host_tier(host_pages),
            limits,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.running.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.running.is_empty()
    }

    /// The KV page allocator (shared accounting for running requests and
    /// queued requests' retained pages).
    pub(crate) fn pager(&self) -> &KvPager {
        &self.pager
    }

    pub(crate) fn pager_mut(&mut self) -> &mut KvPager {
        &mut self.pager
    }

    /// Whether the request keyed `seq` with the given final context can
    /// join right now: a free slot, and enough free (or adoptable, or
    /// reclaimable-cached) pages to grow its allocation. Pages it already
    /// retains across a preemption count toward the need, and `chain` —
    /// its prompt-page hash chain — credits pages the prefix cache can
    /// supply without allocation.
    pub(crate) fn fits(&self, seq: u64, final_context: usize, chain: &[u64]) -> bool {
        self.running.len() < self.limits.max_batch
            && self.pager.can_admit(seq, final_context, chain)
    }

    /// Admits a request: adopts whatever full-page prompt prefix the
    /// prefix cache has resident, reserves private pages for the rest of
    /// its final context, and publishes its own full prompt pages for
    /// later admissions to share. Returns the prompt tokens served out of
    /// the cache (`cached_tokens` on the admission event), and folds them
    /// into the request's prefill / re-prefill debt.
    pub(crate) fn admit(&mut self, mut r: ActiveRequest) -> usize {
        debug_assert!(self.fits(r.arrival_seq, r.final_context(), &r.page_keys));
        let adopted = if self.limits.prefix_cache {
            self.pager.adopt_prefix(r.arrival_seq, &r.page_keys)
        } else {
            0
        };
        self.pager.reserve(r.arrival_seq, r.final_context());
        if self.limits.prefix_cache && !r.needs_prefill && !r.needs_reprefill {
            // With prefill unpriced (and no rebuild pending) the prompt's
            // KV is valid the moment the request is admitted, so its full
            // pages publish immediately. Otherwise publication waits for
            // the decode step that actually (re)builds them
            // ([`publish_prefix`](Self::publish_prefix)) — the index must
            // never advertise KV that does not exist yet.
            self.pager.register_prefix(r.arrival_seq, &r.page_keys);
        }
        let cached_tokens = adopted * self.pager.page_size();
        if cached_tokens > 0 {
            // Every adopted page holds full, already-built KV the request
            // would otherwise have had to (re-)prefill, so the cache
            // shrinks the outstanding debt token for token.
            if r.needs_reprefill {
                r.dropped_tokens = r.dropped_tokens.saturating_sub(cached_tokens);
                if r.swapped_tokens > 0 {
                    // The adopted pages sit at the bottom of the dropped
                    // region — exactly where the host-tier holding starts —
                    // so adoption supersedes that much of the holding. The
                    // surviving holding still starts right above the (now
                    // longer) valid prefix, keeping it contiguous; the
                    // freed host pages return to capacity immediately.
                    let overlap = r.swapped_tokens.min(cached_tokens);
                    r.swapped_tokens -= overlap;
                    let need = self.pager.pages_needed(r.swapped_tokens);
                    if self.pager.host_pages_of(r.arrival_seq) > need {
                        self.pager.swap_in(r.arrival_seq);
                        // Guaranteed grant: the discard just freed more
                        // capacity than this asks back.
                        self.pager.swap_out(r.arrival_seq, need);
                    }
                }
            } else if r.needs_prefill {
                r.prefill_tokens = r.prefill_tokens.saturating_sub(cached_tokens);
            }
            r.stats.prefix_hit_tokens += cached_tokens;
        }
        self.running.push(r);
        cached_tokens
    }

    /// Publishes the prompt pages of the request at `slot` whose KV
    /// genuinely exists in the prefix index — called right after a decode
    /// step that charged prefill or re-prefill work. Publication follows
    /// the prefill frontier: mid-chunked-prefill only the frontier-covered
    /// full pages are registered (the chained hashes make any truncated
    /// chain a valid prefix), and once the debt clears the whole chain
    /// publishes. Idempotent: already-labelled pages are left untouched.
    pub(crate) fn publish_prefix(&mut self, slot: usize) {
        if !self.limits.prefix_cache {
            return;
        }
        let r = &self.running[slot];
        let covered = (r.built_tokens() / self.pager.page_size()).min(r.page_keys.len());
        self.pager
            .register_prefix(r.arrival_seq, &r.page_keys[..covered]);
    }

    /// Removes the request at `slot` (policy-selected victim). The caller
    /// decides the fate of its KV pages (retention vs full release).
    pub(crate) fn evict(&mut self, slot: usize) -> ActiveRequest {
        self.running.remove(slot)
    }

    /// Slot index of the request with arrival sequence `seq`, if running.
    pub(crate) fn position_of_seq(&self, seq: u64) -> Option<usize> {
        self.running.iter().position(|r| r.arrival_seq == seq)
    }

    /// Removes and returns every request that reached its token target,
    /// freeing their KV pages.
    pub(crate) fn retire_finished(&mut self) -> Vec<ActiveRequest> {
        let mut kept = Vec::with_capacity(self.running.len());
        let mut done = Vec::new();
        for r in self.running.drain(..) {
            if r.stats.generated >= r.req.max_new_tokens {
                self.pager.release(r.arrival_seq);
                // A finished request can no longer copy anything back.
                self.pager.host_discard(r.arrival_seq);
                done.push(r);
            } else {
                kept.push(r);
            }
        }
        self.running = kept;
        done
    }

    /// Snapshots the batch for the policy, in slot order.
    pub(crate) fn views(&self) -> Vec<RunningView> {
        self.running
            .iter()
            .map(|r| RunningView {
                id: r.req.id,
                priority: r.req.priority,
                client_id: r.req.client_id,
                arrival_seq: r.arrival_seq,
                admitted_at: r.last_admitted_at.unwrap_or(r.stats.enqueued_at),
                remaining_tokens: r.req.max_new_tokens - r.stats.generated,
                context: r.context,
                final_context: r.final_context(),
                enqueued_at: r.stats.enqueued_at,
                last_token_at: r.last_token_at,
                ttft_deadline: r.req.ttft_deadline,
                itl_deadline: r.req.itl_deadline,
            })
            .collect()
    }

    pub(crate) fn slots(&self) -> &[ActiveRequest] {
        &self.running
    }

    pub(crate) fn slots_mut(&mut self) -> &mut [ActiveRequest] {
        &mut self.running
    }
}
