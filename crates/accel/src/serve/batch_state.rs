//! Live per-request state and the running batch with its admission limits.

use super::policy::RunningView;
use super::queue::ServingRequest;
use super::stats::RequestStats;

/// Admission-control limits of the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests decoding concurrently.
    pub max_batch: usize,
    /// Maximum total context tokens across the batch (bounds KV-cache
    /// footprint; a request is admitted only if the budget still covers
    /// its *final* context, so without preemption it can never be forced
    /// out mid-flight).
    pub max_batch_tokens: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_batch_tokens: 16 * 2048,
        }
    }
}

/// One request's live state inside the engine (queued or running).
#[derive(Debug, Clone)]
pub(crate) struct ActiveRequest {
    pub(crate) req: ServingRequest,
    /// Current context length (prompt + generated tokens).
    pub(crate) context: usize,
    /// Engine-assigned enqueue order, the stable tie-break every policy
    /// falls back to.
    pub(crate) arrival_seq: u64,
    /// Step since which the request has been waiting in the queue (its
    /// arrival, or its most recent eviction) — the baseline policies age
    /// against, so time spent *running* never counts as waiting.
    pub(crate) wait_since: usize,
    /// Step of the most recent admission (first or after a preemption).
    pub(crate) last_admitted_at: Option<usize>,
    /// Step of the most recent eviction, for the re-admission cooldown.
    pub(crate) last_evicted_at: Option<usize>,
    /// Whether the next decode step must rebuild this request's KV cache
    /// (set on admission after a preemption; charged to the step model).
    pub(crate) needs_reprefill: bool,
    pub(crate) stats: RequestStats,
}

impl ActiveRequest {
    /// Context length when the request will retire (bounds its KV budget).
    pub(crate) fn final_context(&self) -> usize {
        self.req.prompt_len + self.req.max_new_tokens
    }
}

/// The running batch plus the limits admission enforces. The engine owns
/// the *invariants* (never exceed `max_batch` slots or `max_batch_tokens`
/// provisioned tokens); policies only choose the order.
#[derive(Debug, Clone)]
pub(crate) struct BatchState {
    running: Vec<ActiveRequest>,
    limits: AdmissionConfig,
}

impl BatchState {
    pub(crate) fn new(limits: AdmissionConfig) -> Self {
        Self {
            running: Vec::new(),
            limits,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.running.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.running.is_empty()
    }

    /// Context tokens the batch is provisioned for (final contexts, the
    /// quantity admission guards).
    pub(crate) fn provisioned_tokens(&self) -> usize {
        self.running.iter().map(ActiveRequest::final_context).sum()
    }

    /// Whether a request with the given final context can join right now.
    pub(crate) fn fits(&self, final_context: usize) -> bool {
        self.running.len() < self.limits.max_batch
            && self.provisioned_tokens() + final_context <= self.limits.max_batch_tokens
    }

    pub(crate) fn admit(&mut self, r: ActiveRequest) {
        debug_assert!(self.fits(r.final_context()));
        self.running.push(r);
    }

    /// Removes the request at `slot` (policy-selected victim).
    pub(crate) fn evict(&mut self, slot: usize) -> ActiveRequest {
        self.running.remove(slot)
    }

    /// Slot index of the request with the given id, if it is running.
    pub(crate) fn position_of(&self, id: u64) -> Option<usize> {
        self.running.iter().position(|r| r.req.id == id)
    }

    pub(crate) fn slots(&self) -> &[ActiveRequest] {
        &self.running
    }

    pub(crate) fn slots_mut(&mut self) -> &mut [ActiveRequest] {
        &mut self.running
    }

    /// Removes and returns every request that reached its token target.
    pub(crate) fn retire_finished(&mut self) -> Vec<ActiveRequest> {
        let mut kept = Vec::with_capacity(self.running.len());
        let mut done = Vec::new();
        for r in self.running.drain(..) {
            if r.stats.generated >= r.req.max_new_tokens {
                done.push(r);
            } else {
                kept.push(r);
            }
        }
        self.running = kept;
        done
    }

    /// Snapshots the batch for the policy, in slot order.
    pub(crate) fn views(&self) -> Vec<RunningView> {
        self.running
            .iter()
            .map(|r| RunningView {
                id: r.req.id,
                priority: r.req.priority,
                client_id: r.req.client_id,
                arrival_seq: r.arrival_seq,
                admitted_at: r.last_admitted_at.unwrap_or(r.stats.enqueued_at),
                remaining_tokens: r.req.max_new_tokens - r.stats.generated,
                context: r.context,
                final_context: r.final_context(),
            })
            .collect()
    }
}
