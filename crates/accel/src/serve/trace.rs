//! Serve-trace record/replay: freeze any serving run — single engine or
//! sharded cluster — into a line-oriented JSON artifact, and replay it to
//! a bit-identical schedule.
//!
//! A [`Trace`] holds three things: a [`TraceMeta`] snapshot of everything
//! that shaped the schedule (engine sizing, scheduling policy, preemption
//! and retention, sharding, routing, stealing, thread count, step bound),
//! the originating [`ServingRequest`]s in enqueue order, and the typed
//! [`ClusterEvent`] stream the run emitted (single-engine events are
//! wrapped as shard 0). Because every layer of the engine is
//! deterministic, that snapshot is sufficient: rebuilding the engine from
//! the meta and re-enqueueing the recorded requests in recorded order
//! reproduces routing, admission, preemption and stealing decision for
//! decision.
//!
//! The correctness anchor is the **fixed point**: record a run, replay
//! it, record the replay — the two traces' digests (an FNV-1a over the
//! typed event stream) are identical. `tests/serving.rs` pins this across
//! scenarios, policies, routers, stealing, retention and `threads > 1`,
//! and a checked-in golden trace under `tests/data/` keeps it honest
//! against format drift.
//!
//! The on-disk format is line-oriented JSON (one flat object per line:
//! one meta line, one line per request, one per event, one digest
//! footer), hand-rolled in the spirit of `topick_bench::json` — no serde,
//! no crates.io. Line orientation keeps traces diffable, greppable and
//! appendable, the same shape production serving stacks use for request
//! logs.

use std::fmt;
use std::path::Path;

use super::cluster::{ClusterEngine, ClusterEvent, ClusterReport};
use super::events::ServeEvent;
use super::policy::PolicyKind;
use super::queue::ServingRequest;
use super::router::RoutingKind;
use super::stats::ServingReport;
use super::{AdmissionConfig, PreemptionConfig, ServingConfig, ServingEngine};
use crate::config::{AccelConfig, AccelMode};

/// Errors from recording, serializing, parsing or replaying a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The trace text could not be parsed (message includes the line).
    Parse(String),
    /// Reading or writing the trace file failed.
    Io(String),
    /// Rebuilding or driving the engine during record/replay failed.
    Serve(super::ServeError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(msg) => write!(f, "trace parse error: {msg}"),
            Self::Io(msg) => write!(f, "trace io error: {msg}"),
            Self::Serve(e) => write!(f, "trace replay error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<super::ServeError> for TraceError {
    fn from(e: super::ServeError) -> Self {
        Self::Serve(e)
    }
}

/// Everything that shaped a recorded run's schedule, snapshotted so the
/// run can be rebuilt from the trace alone.
///
/// The accelerator is captured as `(mode, threshold)` and rebuilt through
/// [`AccelConfig::paper`] — traces snapshot the paper hardware
/// configuration, which is what every engine in this workspace runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Originating scenario name, when the workload came from the
    /// scenario registry (informational; replay uses the recorded
    /// requests, never regenerates).
    pub scenario: Option<String>,
    /// The seed the scenario was generated with.
    pub scenario_seed: u64,
    /// Accelerator pipeline variant.
    pub mode: AccelMode,
    /// Pruning threshold.
    pub threshold: f64,
    /// Scheduler policy name ([`PolicyKind::name`]).
    pub policy: String,
    /// Batch slot limit.
    pub max_batch: usize,
    /// Batch KV token budget.
    pub max_batch_tokens: usize,
    /// KV page size in tokens.
    pub page_size: usize,
    /// Whether copy-on-write prefix caching was on.
    pub prefix_cache: bool,
    /// Whether preemption was enabled.
    pub preemption: bool,
    /// Re-prefill charge factor.
    pub reprefill_factor: f64,
    /// Eviction budget per admission step.
    pub max_evictions_per_step: usize,
    /// Retention policy, as its display string (`none` | pages | fraction).
    pub retention: String,
    /// Prompt-prefill charge factor.
    pub prefill_factor: f64,
    /// Per-step chunked-prefill budget in pages (`0` = unlimited, the
    /// pre-chunking lump behavior).
    pub prefill_chunk_pages: usize,
    /// Host-tier capacity in pages (`0` = no host tier, the drop-and-
    /// re-prefill behavior).
    pub host_pages: usize,
    /// Host-tier copy-back charge factor (meaningful when `host_pages >
    /// 0`).
    pub swap_cost_factor: f64,
    /// Cross-shard page transfer charge factor (`0` = shipping off).
    pub ship_cost_factor: f64,
    /// Whether admission rejected queued requests with already-blown TTFT
    /// deadlines.
    pub reject_expired_ttft: bool,
    /// Attention heads per request per step.
    pub heads: usize,
    /// FC/FFN weight bytes streamed per step.
    pub weight_bytes: u64,
    /// Base seed of the synthetic per-request workloads.
    pub seed: u64,
    /// Accelerator clock in Hz.
    pub clock_hz: f64,
    /// Shard count (`1` records a bare [`ServingEngine`]).
    pub shards: usize,
    /// Routing policy name (meaningful when `shards > 1`).
    pub routing: String,
    /// Whether work stealing was on.
    pub stealing: bool,
    /// Worker threads the cluster stepped shards on.
    pub threads: usize,
    /// The `run_to_completion` step bound.
    pub max_steps: usize,
}

impl TraceMeta {
    /// Snapshots a serving configuration plus the policy driving it, for
    /// a single-engine run (`shards = 1`). Layer cluster shape on with
    /// [`for_cluster`](Self::for_cluster) and scenario provenance with
    /// [`for_scenario`](Self::for_scenario).
    #[must_use]
    pub fn new(cfg: &ServingConfig, policy: &str) -> Self {
        debug_assert_eq!(
            Some(&cfg.accel),
            AccelConfig::paper(cfg.accel.mode, cfg.accel.threshold)
                .ok()
                .as_ref(),
            "traces snapshot the paper accelerator configuration"
        );
        Self {
            scenario: None,
            scenario_seed: 0,
            mode: cfg.accel.mode,
            threshold: cfg.accel.threshold,
            policy: policy.to_string(),
            max_batch: cfg.admission.max_batch,
            max_batch_tokens: cfg.admission.max_batch_tokens,
            page_size: cfg.admission.page_size,
            prefix_cache: cfg.admission.prefix_cache,
            preemption: cfg.preemption.enabled,
            reprefill_factor: cfg.preemption.reprefill_factor,
            max_evictions_per_step: cfg.preemption.max_evictions_per_step,
            retention: cfg.preemption.retention.to_string(),
            prefill_factor: cfg.prefill_factor,
            prefill_chunk_pages: cfg.prefill_chunk_pages,
            host_pages: cfg.host_pages,
            swap_cost_factor: cfg.swap_cost_factor,
            ship_cost_factor: cfg.ship_cost_factor,
            reject_expired_ttft: cfg.reject_expired_ttft,
            heads: cfg.heads,
            weight_bytes: cfg.weight_bytes,
            seed: cfg.seed,
            clock_hz: cfg.clock_hz,
            shards: 1,
            routing: RoutingKind::RoundRobin.name().to_string(),
            stealing: false,
            threads: 1,
            max_steps: 10_000,
        }
    }

    /// Records the cluster shape of the run (shard count, routing,
    /// stealing, worker threads).
    #[must_use]
    pub fn for_cluster(
        mut self,
        shards: usize,
        routing: &str,
        stealing: bool,
        threads: usize,
    ) -> Self {
        self.shards = shards.max(1);
        self.routing = routing.to_string();
        self.stealing = stealing;
        self.threads = threads.max(1);
        self
    }

    /// Records which scenario (and seed) generated the workload.
    #[must_use]
    pub fn for_scenario(mut self, name: &str, seed: u64) -> Self {
        self.scenario = Some(name.to_string());
        self.scenario_seed = seed;
        self
    }

    /// Overrides the `run_to_completion` step bound.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Rebuilds the serving configuration this meta snapshotted.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] if the threshold or retention string
    /// cannot be reconstructed.
    pub fn serving_config(&self) -> Result<ServingConfig, TraceError> {
        let accel = AccelConfig::paper(self.mode, self.threshold)
            .map_err(|e| TraceError::Parse(format!("invalid accel snapshot: {e}")))?;
        let retention = self.retention.parse().map_err(|e| {
            TraceError::Parse(format!("invalid retention '{}': {e}", self.retention))
        })?;
        let mut cfg = ServingConfig::new(accel);
        cfg.admission = AdmissionConfig {
            max_batch: self.max_batch,
            max_batch_tokens: self.max_batch_tokens,
            page_size: self.page_size,
            prefix_cache: self.prefix_cache,
        };
        cfg.preemption = PreemptionConfig {
            enabled: self.preemption,
            reprefill_factor: self.reprefill_factor,
            max_evictions_per_step: self.max_evictions_per_step,
            retention,
        };
        cfg.prefill_factor = self.prefill_factor;
        cfg.prefill_chunk_pages = self.prefill_chunk_pages;
        cfg.host_pages = self.host_pages;
        cfg.swap_cost_factor = self.swap_cost_factor;
        cfg.ship_cost_factor = self.ship_cost_factor;
        cfg.reject_expired_ttft = self.reject_expired_ttft;
        cfg.heads = self.heads;
        cfg.weight_bytes = self.weight_bytes;
        cfg.seed = self.seed;
        cfg.clock_hz = self.clock_hz;
        Ok(cfg)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// FNV-1a digest over the *typed* event stream — every variant tag and
/// field, not the rendered text — so two traces agree on the digest
/// exactly when they describe the same schedule.
#[must_use]
pub fn digest_events(events: &[ClusterEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    for event in events {
        match *event {
            ClusterEvent::Shard { shard_id, event } => {
                h = fnv(h, 1);
                h = fnv(h, shard_id as u64);
                match event {
                    ServeEvent::Enqueued { id, step } => {
                        h = fnv(h, 1);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                    }
                    ServeEvent::Admitted {
                        id,
                        step,
                        context,
                        cached_tokens,
                    } => {
                        h = fnv(h, 2);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, context as u64);
                        h = fnv(h, cached_tokens as u64);
                    }
                    ServeEvent::TokenGenerated {
                        id,
                        step,
                        context,
                        generated,
                    } => {
                        h = fnv(h, 3);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, context as u64);
                        h = fnv(h, generated as u64);
                    }
                    ServeEvent::Preempted {
                        id,
                        step,
                        generated,
                        retained_tokens,
                        dropped_tokens,
                    } => {
                        h = fnv(h, 4);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, generated as u64);
                        h = fnv(h, retained_tokens as u64);
                        h = fnv(h, dropped_tokens as u64);
                    }
                    ServeEvent::Finished {
                        id,
                        step,
                        generated,
                    } => {
                        h = fnv(h, 5);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, generated as u64);
                    }
                    ServeEvent::PrefillChunk {
                        id,
                        step,
                        built_tokens,
                        remaining_tokens,
                    } => {
                        h = fnv(h, 6);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, built_tokens as u64);
                        h = fnv(h, remaining_tokens as u64);
                    }
                    ServeEvent::Rejected {
                        id,
                        step,
                        overdue_steps,
                    } => {
                        h = fnv(h, 7);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, overdue_steps as u64);
                    }
                    ServeEvent::SwappedOut { id, step, tokens } => {
                        h = fnv(h, 8);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, tokens as u64);
                    }
                    ServeEvent::SwappedIn { id, step, tokens } => {
                        h = fnv(h, 9);
                        h = fnv(h, id);
                        h = fnv(h, step as u64);
                        h = fnv(h, tokens as u64);
                    }
                }
            }
            ClusterEvent::Stolen { id, from, to, step } => {
                h = fnv(h, 2);
                h = fnv(h, id);
                h = fnv(h, from as u64);
                h = fnv(h, to as u64);
                h = fnv(h, step as u64);
            }
            ClusterEvent::Shipped {
                id,
                from,
                to,
                step,
                tokens,
            } => {
                h = fnv(h, 3);
                h = fnv(h, id);
                h = fnv(h, from as u64);
                h = fnv(h, to as u64);
                h = fnv(h, step as u64);
                h = fnv(h, tokens as u64);
            }
        }
    }
    h
}

/// Accumulates a run into a [`Trace`]: the meta up front, then the
/// originating requests in enqueue order, then the event stream.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    requests: Vec<ServingRequest>,
    events: Vec<ClusterEvent>,
}

impl TraceRecorder {
    /// Starts a recorder for a run described by `meta`.
    #[must_use]
    pub fn new(meta: TraceMeta) -> Self {
        Self {
            meta,
            requests: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Records one originating request (call in enqueue order — replay
    /// re-enqueues in recorded order, which is what reproduces routing).
    pub fn request(&mut self, req: &ServingRequest) {
        self.requests.push(*req);
    }

    /// Records a batch of cluster events.
    pub fn events(&mut self, events: impl IntoIterator<Item = ClusterEvent>) {
        self.events.extend(events);
    }

    /// Records a single engine's events, wrapped as shard 0 — one trace
    /// format serves both engines and clusters.
    pub fn serve_events(&mut self, events: impl IntoIterator<Item = ServeEvent>) {
        self.events.extend(
            events
                .into_iter()
                .map(|event| ClusterEvent::Shard { shard_id: 0, event }),
        );
    }

    /// Seals the recording into a digested [`Trace`].
    #[must_use]
    pub fn finish(self) -> Trace {
        let digest = digest_events(&self.events);
        Trace {
            meta: self.meta,
            requests: self.requests,
            events: self.events,
            digest,
        }
    }
}

/// A frozen serving run: meta, requests, events and the event digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The configuration snapshot the run can be rebuilt from.
    pub meta: TraceMeta,
    /// Originating requests, in enqueue order.
    pub requests: Vec<ServingRequest>,
    /// The typed event stream (single-engine events appear as shard 0).
    pub events: Vec<ClusterEvent>,
    /// [`digest_events`] over [`events`](Self::events) — the schedule
    /// fingerprint record/replay is compared by.
    pub digest: u64,
}

/// The final report of a recorded run — whichever engine flavor ran.
#[derive(Debug, Clone)]
pub enum RunReport {
    /// A single-engine run's report.
    Engine(ServingReport),
    /// A sharded cluster run's report.
    Cluster(ClusterReport),
}

impl RunReport {
    /// Total decode tokens generated, across flavors.
    #[must_use]
    pub fn tokens_generated(&self) -> usize {
        match self {
            Self::Engine(r) => r.tokens_generated,
            Self::Cluster(r) => r.tokens_generated(),
        }
    }
}

/// Builds the engine or cluster `meta` describes, enqueues `requests` in
/// order, runs to completion and seals the whole run into a [`Trace`].
///
/// This is the one code path both *record* and *replay* go through —
/// replay is literally re-recording from the same inputs, which is what
/// makes the fixed point (`record → replay → record`, identical digests)
/// an invariant rather than a coincidence.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] if the meta's policy/routing/retention
/// strings don't name built-ins, or [`TraceError::Serve`] if the run
/// itself fails (invalid request, stalled admission, step limit).
pub fn run_recorded(
    meta: &TraceMeta,
    requests: &[ServingRequest],
) -> Result<(Trace, RunReport), TraceError> {
    let cfg = meta.serving_config()?;
    let policy: PolicyKind = meta
        .policy
        .parse()
        .map_err(|e: String| TraceError::Parse(format!("invalid policy '{}': {e}", meta.policy)))?;
    let mut recorder = TraceRecorder::new(meta.clone());
    for req in requests {
        recorder.request(req);
    }
    if meta.shards <= 1 {
        let mut engine = ServingEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(policy)
            .build();
        for req in requests {
            engine.enqueue(*req)?;
        }
        let report = engine.run_to_completion(meta.max_steps)?;
        recorder.serve_events(engine.drain_events());
        Ok((recorder.finish(), RunReport::Engine(report)))
    } else {
        let routing: RoutingKind = meta.routing.parse().map_err(|e: String| {
            TraceError::Parse(format!("invalid routing '{}': {e}", meta.routing))
        })?;
        let mut cluster = ClusterEngine::builder(cfg.accel.clone())
            .config(cfg)
            .policy(policy)
            .shards(meta.shards)
            .routing(routing)
            .stealing(meta.stealing)
            .threads(meta.threads)
            .build();
        for req in requests {
            cluster.enqueue(*req)?;
        }
        let report = cluster.run_to_completion(meta.max_steps)?;
        recorder.events(cluster.drain_events());
        Ok((recorder.finish(), RunReport::Cluster(report)))
    }
}

/// Minimal flat-JSON line builder (writer side of the trace format).
struct JsonLine(String);

impl JsonLine {
    fn new(ty: &str) -> Self {
        Self(format!("{{\"type\":\"{ty}\""))
    }

    fn str_field(mut self, key: &str, value: &str) -> Self {
        debug_assert!(
            !value.contains(['"', '\\']),
            "trace strings are registry names and never need escaping"
        );
        self.0.push_str(&format!(",\"{key}\":\"{value}\""));
        self
    }

    fn u64_field(mut self, key: &str, value: u64) -> Self {
        self.0.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    fn f64_field(mut self, key: &str, value: f64) -> Self {
        // Rust's shortest-round-trip Display: parses back to the same f64.
        self.0.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    fn bool_field(mut self, key: &str, value: bool) -> Self {
        self.0.push_str(&format!(",\"{key}\":{value}"));
        self
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// One parsed line's fields, with typed accessors that blame the line.
struct Fields {
    line_no: usize,
    fields: Vec<(String, String)>,
}

impl Fields {
    fn parse(line_no: usize, line: &str) -> Result<Self, TraceError> {
        let err = |msg: String| TraceError::Parse(format!("line {line_no}: {msg}"));
        let inner = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| err("expected a {{...}} object".to_string()))?;
        let bytes = inner.as_bytes();
        let mut fields = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b',' {
                i += 1;
                continue;
            }
            if bytes[i] != b'"' {
                return Err(err(format!("expected '\"' at byte {i}")));
            }
            i += 1;
            let key_start = i;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    return Err(err("escape sequences are not supported".to_string()));
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(err("unterminated key".to_string()));
            }
            let key = inner[key_start..i].to_string();
            i += 1;
            if i >= bytes.len() || bytes[i] != b':' {
                return Err(err(format!("expected ':' after key '{key}'")));
            }
            i += 1;
            let value = if i < bytes.len() && bytes[i] == b'"' {
                i += 1;
                let val_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        return Err(err("escape sequences are not supported".to_string()));
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err("unterminated string value".to_string()));
                }
                let v = inner[val_start..i].to_string();
                i += 1;
                v
            } else {
                let val_start = i;
                while i < bytes.len() && bytes[i] != b',' {
                    i += 1;
                }
                inner[val_start..i].trim().to_string()
            };
            fields.push((key, value));
        }
        Ok(Self { line_no, fields })
    }

    fn err(&self, msg: String) -> TraceError {
        TraceError::Parse(format!("line {}: {msg}", self.line_no))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn str_field(&self, key: &str) -> Result<&str, TraceError> {
        self.get(key)
            .ok_or_else(|| self.err(format!("missing field '{key}'")))
    }

    fn parse_field<T: std::str::FromStr>(&self, key: &str) -> Result<T, TraceError> {
        self.str_field(key)?
            .parse()
            .map_err(|_| self.err(format!("field '{key}' is not a valid value")))
    }
}

impl Trace {
    /// Renders the trace as line-oriented JSON: one meta line, one line
    /// per request, one per event, one digest footer.
    #[must_use]
    pub fn render(&self) -> String {
        let m = &self.meta;
        let mut meta_line = JsonLine::new("meta").u64_field("version", 1);
        if let Some(scenario) = &m.scenario {
            meta_line = meta_line
                .str_field("scenario", scenario)
                .u64_field("scenario_seed", m.scenario_seed);
        }
        meta_line = meta_line
            .str_field("mode", m.mode.name())
            .f64_field("threshold", m.threshold)
            .str_field("policy", &m.policy)
            .u64_field("max_batch", m.max_batch as u64)
            .u64_field("max_batch_tokens", m.max_batch_tokens as u64)
            .u64_field("page_size", m.page_size as u64)
            .bool_field("prefix_cache", m.prefix_cache)
            .bool_field("preemption", m.preemption)
            .f64_field("reprefill_factor", m.reprefill_factor)
            .u64_field("max_evictions_per_step", m.max_evictions_per_step as u64)
            .str_field("retention", &m.retention)
            .f64_field("prefill_factor", m.prefill_factor);
        // Rendered only when finite, so pre-chunking traces (and the
        // checked-in goldens) keep their exact bytes.
        if m.prefill_chunk_pages != 0 {
            meta_line = meta_line.u64_field("prefill_chunk_pages", m.prefill_chunk_pages as u64);
        }
        // Tiered-KV and rejection knobs render only when they left their
        // defaults, keeping pre-tiering traces (and the checked-in
        // goldens) byte-exact.
        if m.host_pages != 0 {
            meta_line = meta_line
                .u64_field("host_pages", m.host_pages as u64)
                .f64_field("swap_cost_factor", m.swap_cost_factor);
        }
        if m.ship_cost_factor != 0.0 {
            meta_line = meta_line.f64_field("ship_cost_factor", m.ship_cost_factor);
        }
        if m.reject_expired_ttft {
            meta_line = meta_line.bool_field("reject_expired_ttft", true);
        }
        let mut out = meta_line
            .u64_field("heads", m.heads as u64)
            .u64_field("weight_bytes", m.weight_bytes)
            .u64_field("seed", m.seed)
            .f64_field("clock_hz", m.clock_hz)
            .u64_field("shards", m.shards as u64)
            .str_field("routing", &m.routing)
            .bool_field("stealing", m.stealing)
            .u64_field("threads", m.threads as u64)
            .u64_field("max_steps", m.max_steps as u64)
            .finish();
        out.push('\n');
        for r in &self.requests {
            let mut line = JsonLine::new("request")
                .u64_field("id", r.id)
                .u64_field("prompt_len", r.prompt_len as u64)
                .u64_field("max_new_tokens", r.max_new_tokens as u64)
                .u64_field("priority", u64::from(r.priority))
                .u64_field("client_id", r.client_id)
                .u64_field("arrival_step", r.arrival_step)
                .u64_field("prefix_tag", r.prefix_tag)
                .u64_field("prefix_len", r.prefix_len as u64);
            // Deadlines render only when declared, keeping deadline-free
            // traces byte-identical to the pre-SLO format.
            if let Some(d) = r.ttft_deadline {
                line = line.u64_field("ttft_deadline", d);
            }
            if let Some(d) = r.itl_deadline {
                line = line.u64_field("itl_deadline", d);
            }
            out.push_str(&line.finish());
            out.push('\n');
        }
        for event in &self.events {
            out.push_str(&render_event(*event));
            out.push('\n');
        }
        out.push_str(
            &JsonLine::new("digest")
                .u64_field("requests", self.requests.len() as u64)
                .u64_field("events", self.events.len() as u64)
                .u64_field("value", self.digest)
                .finish(),
        );
        out.push('\n');
        out
    }

    /// Parses a trace rendered by [`render`](Self::render), verifying the
    /// digest footer against the recomputed event digest.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] on malformed lines, unknown kinds,
    /// missing meta/footer, or a digest/count mismatch (a truncated or
    /// edited trace).
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut meta: Option<TraceMeta> = None;
        let mut requests = Vec::new();
        let mut events = Vec::new();
        let mut footer: Option<(u64, u64, u64)> = None;
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let line_no = idx + 1;
            if footer.is_some() {
                return Err(TraceError::Parse(format!(
                    "line {line_no}: content after the digest footer"
                )));
            }
            let fields = Fields::parse(line_no, line)?;
            match fields.str_field("type")? {
                "meta" => {
                    if meta.is_some() {
                        return Err(fields.err("duplicate meta line".to_string()));
                    }
                    meta = Some(parse_meta(&fields)?);
                }
                "request" => {
                    if meta.is_none() {
                        return Err(fields.err("request before the meta line".to_string()));
                    }
                    requests.push(parse_request(&fields)?);
                }
                "event" => {
                    if meta.is_none() {
                        return Err(fields.err("event before the meta line".to_string()));
                    }
                    events.push(parse_event(&fields)?);
                }
                "digest" => {
                    footer = Some((
                        fields.parse_field("requests")?,
                        fields.parse_field("events")?,
                        fields.parse_field("value")?,
                    ));
                }
                other => {
                    return Err(fields.err(format!("unknown line type '{other}'")));
                }
            }
        }
        let meta = meta.ok_or_else(|| TraceError::Parse("missing meta line".to_string()))?;
        let (req_count, event_count, digest) =
            footer.ok_or_else(|| TraceError::Parse("missing digest footer".to_string()))?;
        if req_count != requests.len() as u64 || event_count != events.len() as u64 {
            return Err(TraceError::Parse(format!(
                "footer counts ({req_count} requests, {event_count} events) do not match the \
                 trace body ({} requests, {} events) — truncated trace?",
                requests.len(),
                events.len()
            )));
        }
        let recomputed = digest_events(&events);
        if recomputed != digest {
            return Err(TraceError::Parse(format!(
                "digest mismatch: footer says {digest}, events hash to {recomputed}"
            )));
        }
        Ok(Self {
            meta,
            requests,
            events,
            digest,
        })
    }

    /// Writes the rendered trace to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        std::fs::write(path.as_ref(), self.render())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.as_ref().display())))
    }

    /// Loads and parses a trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be read, or
    /// [`TraceError::Parse`] as [`parse`](Self::parse) would.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::parse(&text)
    }

    /// Replays the trace: rebuilds the run from the meta, re-enqueues the
    /// recorded requests in recorded order, runs to completion and
    /// re-records. The returned trace's digest equals this trace's digest
    /// — the fixed point the subsystem is anchored on.
    ///
    /// # Errors
    ///
    /// As [`run_recorded`].
    pub fn replay(&self) -> Result<(Trace, RunReport), TraceError> {
        run_recorded(&self.meta, &self.requests)
    }

    /// Localizes the first schedule divergence between two traces:
    /// `None` when the event streams are identical, otherwise a
    /// human-readable report quoting the first differing event with a few
    /// events of leading context. This is what `topick trace diff` prints
    /// and what digest-mismatch failure messages embed, so a bare "digests
    /// differ" names the exact scheduling decision that moved.
    #[must_use]
    pub fn diff(&self, other: &Trace) -> Option<String> {
        if self.events == other.events {
            return None;
        }
        let mut out = String::new();
        if self.meta != other.meta {
            out.push_str("note: trace metas differ — the runs were configured differently\n");
        }
        if self.requests.len() != other.requests.len() {
            out.push_str(&format!(
                "note: request counts differ ({} vs {})\n",
                self.requests.len(),
                other.requests.len()
            ));
        }
        let idx = self
            .events
            .iter()
            .zip(&other.events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| self.events.len().min(other.events.len()));
        out.push_str(&format!(
            "event streams diverge at event {idx} ({} vs {} events total)\n",
            self.events.len(),
            other.events.len()
        ));
        const CONTEXT: usize = 3;
        for (i, event) in self
            .events
            .iter()
            .enumerate()
            .take(idx)
            .skip(idx.saturating_sub(CONTEXT))
        {
            out.push_str(&format!("  = [{i}] {}\n", render_event(*event)));
        }
        match self.events.get(idx) {
            Some(event) => out.push_str(&format!("  < [{idx}] {}\n", render_event(*event))),
            None => out.push_str(&format!("  < [{idx}] (stream ends)\n")),
        }
        match other.events.get(idx) {
            Some(event) => out.push_str(&format!("  > [{idx}] {}\n", render_event(*event))),
            None => out.push_str(&format!("  > [{idx}] (stream ends)\n")),
        }
        Some(out)
    }
}

fn render_event(event: ClusterEvent) -> String {
    match event {
        ClusterEvent::Shard { shard_id, event } => {
            let base = |kind: &str, id: u64, step: usize| {
                JsonLine::new("event")
                    .str_field("kind", kind)
                    .u64_field("shard", shard_id as u64)
                    .u64_field("id", id)
                    .u64_field("step", step as u64)
            };
            match event {
                ServeEvent::Enqueued { id, step } => base("enqueued", id, step).finish(),
                ServeEvent::Admitted {
                    id,
                    step,
                    context,
                    cached_tokens,
                } => base("admitted", id, step)
                    .u64_field("context", context as u64)
                    .u64_field("cached_tokens", cached_tokens as u64)
                    .finish(),
                ServeEvent::TokenGenerated {
                    id,
                    step,
                    context,
                    generated,
                } => base("token", id, step)
                    .u64_field("context", context as u64)
                    .u64_field("generated", generated as u64)
                    .finish(),
                ServeEvent::Preempted {
                    id,
                    step,
                    generated,
                    retained_tokens,
                    dropped_tokens,
                } => base("preempted", id, step)
                    .u64_field("generated", generated as u64)
                    .u64_field("retained_tokens", retained_tokens as u64)
                    .u64_field("dropped_tokens", dropped_tokens as u64)
                    .finish(),
                ServeEvent::Finished {
                    id,
                    step,
                    generated,
                } => base("finished", id, step)
                    .u64_field("generated", generated as u64)
                    .finish(),
                ServeEvent::PrefillChunk {
                    id,
                    step,
                    built_tokens,
                    remaining_tokens,
                } => base("prefill_chunk", id, step)
                    .u64_field("built_tokens", built_tokens as u64)
                    .u64_field("remaining_tokens", remaining_tokens as u64)
                    .finish(),
                ServeEvent::Rejected {
                    id,
                    step,
                    overdue_steps,
                } => base("rejected", id, step)
                    .u64_field("overdue_steps", overdue_steps as u64)
                    .finish(),
                ServeEvent::SwappedOut { id, step, tokens } => base("swapped_out", id, step)
                    .u64_field("tokens", tokens as u64)
                    .finish(),
                ServeEvent::SwappedIn { id, step, tokens } => base("swapped_in", id, step)
                    .u64_field("tokens", tokens as u64)
                    .finish(),
            }
        }
        ClusterEvent::Stolen { id, from, to, step } => JsonLine::new("event")
            .str_field("kind", "stolen")
            .u64_field("id", id)
            .u64_field("from", from as u64)
            .u64_field("to", to as u64)
            .u64_field("step", step as u64)
            .finish(),
        ClusterEvent::Shipped {
            id,
            from,
            to,
            step,
            tokens,
        } => JsonLine::new("event")
            .str_field("kind", "shipped")
            .u64_field("id", id)
            .u64_field("from", from as u64)
            .u64_field("to", to as u64)
            .u64_field("step", step as u64)
            .u64_field("tokens", tokens as u64)
            .finish(),
    }
}

fn parse_meta(f: &Fields) -> Result<TraceMeta, TraceError> {
    let version: u64 = f.parse_field("version")?;
    if version != 1 {
        return Err(f.err(format!("unsupported trace version {version}")));
    }
    let mode: AccelMode = f.str_field("mode")?.parse().map_err(|e: String| f.err(e))?;
    Ok(TraceMeta {
        scenario: f.get("scenario").map(str::to_string),
        scenario_seed: match f.get("scenario") {
            Some(_) => f.parse_field("scenario_seed")?,
            None => 0,
        },
        mode,
        threshold: f.parse_field("threshold")?,
        policy: f.str_field("policy")?.to_string(),
        max_batch: f.parse_field("max_batch")?,
        max_batch_tokens: f.parse_field("max_batch_tokens")?,
        page_size: f.parse_field("page_size")?,
        prefix_cache: f.parse_field("prefix_cache")?,
        preemption: f.parse_field("preemption")?,
        reprefill_factor: f.parse_field("reprefill_factor")?,
        max_evictions_per_step: f.parse_field("max_evictions_per_step")?,
        retention: f.str_field("retention")?.to_string(),
        prefill_factor: f.parse_field("prefill_factor")?,
        prefill_chunk_pages: match f.get("prefill_chunk_pages") {
            Some(_) => f.parse_field("prefill_chunk_pages")?,
            None => 0,
        },
        host_pages: match f.get("host_pages") {
            Some(_) => f.parse_field("host_pages")?,
            None => 0,
        },
        // Absent with no host tier; the parsed meta still carries the
        // engine default so rebuild → snapshot round-trips.
        swap_cost_factor: match f.get("swap_cost_factor") {
            Some(_) => f.parse_field("swap_cost_factor")?,
            None => ServingConfig::DEFAULT_SWAP_COST_FACTOR,
        },
        ship_cost_factor: match f.get("ship_cost_factor") {
            Some(_) => f.parse_field("ship_cost_factor")?,
            None => 0.0,
        },
        reject_expired_ttft: match f.get("reject_expired_ttft") {
            Some(_) => f.parse_field("reject_expired_ttft")?,
            None => false,
        },
        heads: f.parse_field("heads")?,
        weight_bytes: f.parse_field("weight_bytes")?,
        seed: f.parse_field("seed")?,
        clock_hz: f.parse_field("clock_hz")?,
        shards: f.parse_field("shards")?,
        routing: f.str_field("routing")?.to_string(),
        stealing: f.parse_field("stealing")?,
        threads: f.parse_field("threads")?,
        max_steps: f.parse_field("max_steps")?,
    })
}

fn parse_request(f: &Fields) -> Result<ServingRequest, TraceError> {
    Ok(ServingRequest {
        id: f.parse_field("id")?,
        prompt_len: f.parse_field("prompt_len")?,
        max_new_tokens: f.parse_field("max_new_tokens")?,
        priority: f.parse_field("priority")?,
        client_id: f.parse_field("client_id")?,
        arrival_step: f.parse_field("arrival_step")?,
        prefix_tag: f.parse_field("prefix_tag")?,
        prefix_len: f.parse_field("prefix_len")?,
        ttft_deadline: match f.get("ttft_deadline") {
            Some(_) => Some(f.parse_field("ttft_deadline")?),
            None => None,
        },
        itl_deadline: match f.get("itl_deadline") {
            Some(_) => Some(f.parse_field("itl_deadline")?),
            None => None,
        },
    })
}

fn parse_event(f: &Fields) -> Result<ClusterEvent, TraceError> {
    let kind = f.str_field("kind")?;
    if kind == "stolen" {
        return Ok(ClusterEvent::Stolen {
            id: f.parse_field("id")?,
            from: f.parse_field("from")?,
            to: f.parse_field("to")?,
            step: f.parse_field("step")?,
        });
    }
    if kind == "shipped" {
        return Ok(ClusterEvent::Shipped {
            id: f.parse_field("id")?,
            from: f.parse_field("from")?,
            to: f.parse_field("to")?,
            step: f.parse_field("step")?,
            tokens: f.parse_field("tokens")?,
        });
    }
    let shard_id: usize = f.parse_field("shard")?;
    let id: u64 = f.parse_field("id")?;
    let step: usize = f.parse_field("step")?;
    let event = match kind {
        "enqueued" => ServeEvent::Enqueued { id, step },
        "admitted" => ServeEvent::Admitted {
            id,
            step,
            context: f.parse_field("context")?,
            cached_tokens: f.parse_field("cached_tokens")?,
        },
        "token" => ServeEvent::TokenGenerated {
            id,
            step,
            context: f.parse_field("context")?,
            generated: f.parse_field("generated")?,
        },
        "preempted" => ServeEvent::Preempted {
            id,
            step,
            generated: f.parse_field("generated")?,
            retained_tokens: f.parse_field("retained_tokens")?,
            dropped_tokens: f.parse_field("dropped_tokens")?,
        },
        "finished" => ServeEvent::Finished {
            id,
            step,
            generated: f.parse_field("generated")?,
        },
        "prefill_chunk" => ServeEvent::PrefillChunk {
            id,
            step,
            built_tokens: f.parse_field("built_tokens")?,
            remaining_tokens: f.parse_field("remaining_tokens")?,
        },
        "rejected" => ServeEvent::Rejected {
            id,
            step,
            overdue_steps: f.parse_field("overdue_steps")?,
        },
        "swapped_out" => ServeEvent::SwappedOut {
            id,
            step,
            tokens: f.parse_field("tokens")?,
        },
        "swapped_in" => ServeEvent::SwappedIn {
            id,
            step,
            tokens: f.parse_field("tokens")?,
        },
        other => return Err(f.err(format!("unknown event kind '{other}'"))),
    };
    Ok(ClusterEvent::Shard { shard_id, event })
}

/// Loads a recorded trace and turns it back into a runnable open-loop
/// workload: the recorded requests (arrivals included) plus the meta to
/// rebuild the engine around them — consumable like any scenario's
/// request stream, or replayed outright via [`run`](Self::run).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplay {
    trace: Trace,
}

impl TraceReplay {
    /// Wraps an already-parsed trace.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        Self { trace }
    }

    /// Loads a trace file recorded by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// As [`Trace::load`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(Self::new(Trace::load(path)?))
    }

    /// The recorded run's configuration snapshot.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    /// The recorded open-loop workload, in enqueue order.
    #[must_use]
    pub fn requests(&self) -> &[ServingRequest] {
        self.trace.requests.as_slice()
    }

    /// The underlying trace (events, digest and all).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replays the recorded run and re-records it, verifying the fixed
    /// point: the fresh trace's digest must equal the recorded digest.
    ///
    /// # Errors
    ///
    /// As [`run_recorded`], plus [`TraceError::Parse`] if the replayed
    /// schedule diverges from the recording (an engine behavior change —
    /// exactly what the golden-trace regression exists to catch).
    pub fn run(&self) -> Result<(Trace, RunReport), TraceError> {
        let (trace, report) = self.trace.replay()?;
        if trace.digest != self.trace.digest {
            let detail = self
                .trace
                .diff(&trace)
                .unwrap_or_else(|| "(event streams compare equal; digest scheme drift?)".into());
            return Err(TraceError::Parse(format!(
                "replay diverged from the recording: recorded digest {}, replayed {}\n{detail}",
                self.trace.digest, trace.digest
            )));
        }
        Ok((trace, report))
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy::RetentionPolicy;
    use super::super::scenario::{Scenario, SharedPrefixChat};
    use super::*;

    fn sample_meta() -> TraceMeta {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap();
        let cfg = SharedPrefixChat::default().serving_config(accel);
        TraceMeta::new(&cfg, "fifo").for_scenario("shared-prefix-chat", 11)
    }

    fn one_of_each_event() -> Vec<ClusterEvent> {
        vec![
            ClusterEvent::Shard {
                shard_id: 0,
                event: ServeEvent::Enqueued { id: 7, step: 0 },
            },
            ClusterEvent::Shard {
                shard_id: 1,
                event: ServeEvent::Admitted {
                    id: 7,
                    step: 2,
                    context: 128,
                    cached_tokens: 96,
                },
            },
            ClusterEvent::Shard {
                shard_id: 1,
                event: ServeEvent::PrefillChunk {
                    id: 7,
                    step: 2,
                    built_tokens: 64,
                    remaining_tokens: 64,
                },
            },
            ClusterEvent::Shard {
                shard_id: 2,
                event: ServeEvent::TokenGenerated {
                    id: 7,
                    step: 3,
                    context: 129,
                    generated: 1,
                },
            },
            ClusterEvent::Shard {
                shard_id: 3,
                event: ServeEvent::Preempted {
                    id: 7,
                    step: 4,
                    generated: 2,
                    retained_tokens: 48,
                    dropped_tokens: 83,
                },
            },
            ClusterEvent::Shard {
                shard_id: 0,
                event: ServeEvent::Finished {
                    id: 7,
                    step: 9,
                    generated: 5,
                },
            },
            ClusterEvent::Stolen {
                id: 9,
                from: 2,
                to: 0,
                step: 5,
            },
            ClusterEvent::Shard {
                shard_id: 1,
                event: ServeEvent::SwappedOut {
                    id: 7,
                    step: 6,
                    tokens: 83,
                },
            },
            ClusterEvent::Shard {
                shard_id: 1,
                event: ServeEvent::SwappedIn {
                    id: 7,
                    step: 7,
                    tokens: 83,
                },
            },
            ClusterEvent::Shard {
                shard_id: 2,
                event: ServeEvent::Rejected {
                    id: 11,
                    step: 8,
                    overdue_steps: 3,
                },
            },
            ClusterEvent::Shipped {
                id: 9,
                from: 0,
                to: 3,
                step: 8,
                tokens: 96,
            },
        ]
    }

    #[test]
    fn every_event_variant_round_trips_through_the_line_format() {
        let mut recorder = TraceRecorder::new(sample_meta());
        recorder.request(
            &ServingRequest::new(7, 128, 5)
                .with_priority(3)
                .with_client(2)
                .with_shared_prefix(0xDEAD_BEEF, 96)
                .arriving_at(4)
                .with_ttft_deadline(20)
                .with_itl_deadline(4),
        );
        recorder.events(one_of_each_event());
        let trace = recorder.finish();
        let text = trace.render();
        let parsed = Trace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
        // Serialize → parse → serialize is byte-stable, not merely
        // structurally equal.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn meta_round_trips_including_retention_and_cluster_shape() {
        let accel = AccelConfig::paper(AccelMode::Blocking, 0.125).unwrap();
        let mut cfg = SharedPrefixChat::default().serving_config(accel);
        cfg.preemption =
            PreemptionConfig::enabled().with_retention(RetentionPolicy::Fraction(0.75));
        cfg.prefill_chunk_pages = 2;
        let meta = TraceMeta::new(&cfg, "priority-aging")
            .for_cluster(4, "prefix-affinity", true, 4)
            .with_max_steps(2048);
        let trace = TraceRecorder::new(meta.clone()).finish();
        let parsed = Trace::parse(&trace.render()).unwrap();
        assert_eq!(parsed.meta, meta);
        // The rebuilt serving config matches the one we snapshotted.
        assert_eq!(parsed.meta.serving_config().unwrap(), cfg);
    }

    #[test]
    fn diff_localizes_the_first_diverging_event() {
        let mut recorder = TraceRecorder::new(sample_meta());
        recorder.events(one_of_each_event());
        let a = recorder.finish();
        // Identical streams: no diff.
        assert_eq!(a.diff(&a), None);
        // Perturb one event mid-stream.
        let mut events = one_of_each_event();
        let ClusterEvent::Shard {
            event: ServeEvent::TokenGenerated { context, .. },
            ..
        } = &mut events[3]
        else {
            panic!("event 3 should be the token generation");
        };
        *context += 1;
        let mut recorder = TraceRecorder::new(sample_meta());
        recorder.events(events);
        let b = recorder.finish();
        assert_ne!(a.digest, b.digest);
        let report = a.diff(&b).unwrap();
        assert!(report.contains("diverge at event 3"), "{report}");
        assert!(report.contains("< [3]"), "{report}");
        assert!(report.contains("> [3]"), "{report}");
        assert!(report.contains("\"context\":129"), "{report}");
        assert!(report.contains("\"context\":130"), "{report}");
        // A strict prefix diverges where the shorter stream ends.
        let mut recorder = TraceRecorder::new(sample_meta());
        recorder.events(one_of_each_event().into_iter().take(2));
        let short = recorder.finish();
        let report = a.diff(&short).unwrap();
        assert!(report.contains("diverge at event 2"), "{report}");
        assert!(report.contains("> [2] (stream ends)"), "{report}");
    }

    #[test]
    fn tampered_traces_are_rejected() {
        let mut recorder = TraceRecorder::new(sample_meta());
        recorder.events(one_of_each_event());
        let trace = recorder.finish();
        let text = trace.render();
        // Dropping an event line breaks the footer counts.
        let truncated: Vec<&str> = text
            .lines()
            .filter(|l| !l.contains("\"kind\":\"stolen\""))
            .collect();
        assert!(Trace::parse(&truncated.join("\n")).is_err());
        // Editing an event field breaks the digest.
        let edited = text.replace("\"retained_tokens\":48", "\"retained_tokens\":64");
        assert!(matches!(
            Trace::parse(&edited),
            Err(TraceError::Parse(msg)) if msg.contains("digest mismatch")
        ));
        // Garbage and missing pieces are parse errors, not panics.
        assert!(Trace::parse("not json").is_err());
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("{\"type\":\"meta\",\"version\":9}").is_err());
    }

    #[test]
    fn record_replay_record_is_a_fixed_point_on_a_small_run() {
        let requests = SharedPrefixChat::default().generate(11);
        let meta = sample_meta();
        let (first, _) = run_recorded(&meta, &requests).unwrap();
        let (second, report) = first.replay().unwrap();
        assert_eq!(first.digest, second.digest);
        assert_eq!(first.events, second.events);
        match report {
            RunReport::Engine(r) => assert!(r.tokens_generated > 0),
            RunReport::Cluster(_) => panic!("shards=1 must replay on a bare engine"),
        }
        // And the parsed form replays identically too.
        let reparsed = Trace::parse(&first.render()).unwrap();
        let (third, _) = TraceReplay::new(reparsed).run().unwrap();
        assert_eq!(third.digest, first.digest);
    }
}
