//! Errors of the serving layer.

use std::fmt;

use topick_core::CoreError;

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A request had a zero prompt or zero token target.
    InvalidRequest(&'static str),
    /// Requests are queued but the admission limits can never admit the
    /// next one (e.g. `max_batch` is zero), so no progress is possible.
    AdmissionStalled {
        /// Requests stuck in the queue.
        pending: usize,
    },
    /// The workload did not finish within the step limit.
    StepLimitExceeded {
        /// The configured limit.
        max_steps: usize,
        /// Requests still unfinished when it was hit.
        unfinished: usize,
    },
    /// An attention simulation failed.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            Self::AdmissionStalled { pending } => write!(
                f,
                "admission stalled: {pending} queued request(s) can never be admitted \
                 under the configured batch limits"
            ),
            Self::StepLimitExceeded {
                max_steps,
                unfinished,
            } => write!(
                f,
                "workload incomplete after {max_steps} steps ({unfinished} requests left)"
            ),
            Self::Core(e) => write!(f, "attention simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}
