//! Multi-engine sharded serving: N independent [`ServingEngine`] shards
//! behind one admission front door.
//!
//! A [`ClusterEngine`] owns its shards outright — each shard is a complete
//! serving engine with its own scheduler, arrival queue, batch and
//! [`KvPager`](super::KvPager) — and adds exactly two cluster-level
//! decisions on top:
//!
//! 1. **Routing**: every [`enqueue`](ClusterEngine::enqueue) asks the
//!    configured [`RoutingPolicy`] which shard the request lands on.
//!    [`RoundRobin`](super::router::RoundRobin) spreads blindly,
//!    [`LeastLoaded`](super::router::LeastLoaded) follows the backlog, and
//!    [`PrefixAffinity`](super::router::PrefixAffinity) keys on the
//!    request's prompt-page hashes so requests sharing a prompt prefix
//!    land on the shard whose prefix cache already holds those pages —
//!    per-shard caches are independent, and affinity routing is what
//!    recovers the sharing a random split would destroy.
//! 2. **Work stealing** (optional): before each cluster step, queued
//!    requests that have *never run* migrate from the most-loaded shard to
//!    idle shards, with deterministic tie-breaking. With cross-shard page
//!    shipping priced
//!    ([`ship_cost_factor`](ServingConfig::ship_cost_factor) `> 0`),
//!    stealing may also migrate a *running* request to a fully idle shard
//!    when no queued work is movable: the donor releases the request's
//!    pages and its whole built context travels as shipped KV, re-priced
//!    on the receiver at the transfer cost instead of a re-prefill
//!    ([`ClusterEvent::Shipped`]). With shipping unpriced (the default),
//!    running requests never move and the schedule is unchanged.
//!
//! Shipping also serves routing: when [`PrefixAffinity`](super::router::PrefixAffinity)
//! (or any router) lands a request on a shard whose cache misses its
//! prompt prefix, the front door pulls the shared full-prefix pages from
//! the sibling shard holding the longest resident run, at the same modeled
//! transfer cost — see [`enqueue`](ClusterEngine::enqueue).
//!
//! Every shipping decision happens on the coordinator thread between step
//! barriers, so threaded schedules stay digest-identical to sequential
//! ones.
//!
//! Shards step in **lockstep**: one cluster step steps every shard once
//! (idle shards record a zero-cycle tick so their clocks stay aligned),
//! and the cluster's cycle total is the *makespan* — the sum over cluster
//! steps of the busiest shard's cycles — because shards model engines
//! running in parallel, not serially.
//!
//! With [`threads`](ClusterEngineBuilder::threads) `> 1` the lockstep is
//! *executed* in parallel too: routing, stealing and event sweeping stay
//! on the coordinator thread, while the per-shard `step()`/`idle_tick()`
//! calls fan out to scoped OS threads ([`std::thread::scope`]) whose join
//! is the barrier before the next synchronization point. Each worker owns
//! a disjoint `&mut` slice of the shard vector and shards never touch
//! shared state mid-step, so the threaded schedule is digest-identical to
//! the sequential one — the `threads = 1` path is retained as the
//! reference. Wall-clock time spent stepping is accumulated alongside the
//! modeled makespan and surfaces as [`ClusterReport::wall_seconds`].

use super::error::ServeError;
use super::events::ServeEvent;
use super::policy::{PolicyKind, PreemptionConfig, RetentionPolicy};
use super::queue::ServingRequest;
use super::router::{RoutingKind, RoutingPolicy, ShardView};
use super::stats::{RequestStats, ServingReport};
use super::{AdmissionConfig, ServingConfig, ServingEngine};

use crate::config::AccelConfig;

/// One observable cluster-level event: a shard's own [`ServeEvent`] tagged
/// with the shard it happened on, or a work-steal migration between
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A shard recorded a serving event.
    Shard {
        /// The shard the event happened on.
        shard_id: usize,
        /// The event itself (steps are cluster steps — shards run in
        /// lockstep).
        event: ServeEvent,
    },
    /// Work stealing migrated a queued, never-admitted request between
    /// shards (it re-enqueues on `to`, so a second
    /// [`ServeEvent::Enqueued`] follows there).
    Stolen {
        /// The migrated request's id.
        id: u64,
        /// The shard it was queued on.
        from: usize,
        /// The shard it now queues on.
        to: usize,
        /// Cluster step of the migration.
        step: usize,
    },
    /// KV pages moved between shards at the modeled transfer cost
    /// ([`ship_cost_factor`](ServingConfig::ship_cost_factor)): a running
    /// request migrated with its whole built context, or shared
    /// full-prefix pages pulled at enqueue from the sibling whose cache
    /// holds them. The request pays the transfer on its first decode step
    /// on the receiving shard.
    Shipped {
        /// The request whose KV moved (or is being pulled for).
        id: u64,
        /// The shard the pages left.
        from: usize,
        /// The shard they landed on.
        to: usize,
        /// Cluster step of the transfer.
        step: usize,
        /// KV tokens' worth of pages shipped.
        tokens: usize,
    },
}

/// What one cluster step did, across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStepReport {
    /// Cluster step index (0-based; equals every shard's step index).
    pub index: usize,
    /// Requests decoded across all shards in this step.
    pub batch: usize,
    /// The busiest shard's cycles this step — the step's contribution to
    /// the cluster makespan, since shards run in parallel.
    pub critical_cycles: u64,
}

/// Aggregate outcome of a workload served across shards: every shard's
/// own [`ServingReport`] plus the cluster-level accounting (makespan,
/// steal counts, combined prefix-cache effectiveness, load imbalance).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Name of the routing policy that placed the requests.
    pub routing: String,
    /// Name of the per-shard scheduling policy.
    pub policy: String,
    /// Whether work stealing was enabled.
    pub stealing: bool,
    /// Queued-request migrations work stealing performed.
    pub steals: usize,
    /// Running-request migrations performed over priced page shipping
    /// (0 whenever [`ship_cost_factor`](ServingConfig::ship_cost_factor)
    /// leaves shipping unpriced).
    pub ships: usize,
    /// Cluster steps executed (shards run in lockstep, so this is also
    /// every shard's step count).
    pub cluster_steps: usize,
    /// Cluster makespan in cycles: the sum over cluster steps of the
    /// busiest shard's cycles, since shards run in parallel.
    pub total_cycles: u64,
    /// Worker threads the cluster stepped shards on (1 = the sequential
    /// reference path).
    pub threads: usize,
    /// Measured wall-clock seconds spent inside
    /// [`step`](ClusterEngine::step) — the host-side cost of actually
    /// driving the shards, reported next to the *modeled* cycle makespan
    /// so benches can show measured and modeled performance side by side.
    /// Unlike every other field, this varies run to run; schedule
    /// comparisons must ignore it.
    pub wall_seconds: f64,
    /// Per-shard serving reports, indexed by shard id.
    pub shards: Vec<ServingReport>,
}

impl ClusterReport {
    /// Tokens generated across all shards.
    #[must_use]
    pub fn tokens_generated(&self) -> usize {
        self.shards.iter().map(|s| s.tokens_generated).sum()
    }

    /// Evictions across all shards.
    #[must_use]
    pub fn preemptions(&self) -> usize {
        self.shards.iter().map(|s| s.preemptions).sum()
    }

    /// Tokens generated while their request was still inside its SLO,
    /// across all shards (see [`RequestStats::good_tokens`]).
    #[must_use]
    pub fn total_good_tokens(&self) -> usize {
        self.requests().map(|(_, r)| r.good_tokens).sum()
    }

    /// Cluster goodput in SLO-attaining tokens per second at `clock_hz`,
    /// over the parallel makespan (the SLO-aware counterpart of
    /// [`tokens_per_second`](Self::tokens_per_second)).
    #[must_use]
    pub fn goodput_tokens_per_second(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.total_good_tokens() as f64 * clock_hz / self.total_cycles as f64
    }

    /// Fraction of deadline-carrying finished requests that met every
    /// deadline they declared, across all shards. `1.0` when no finished
    /// request declared a deadline.
    #[must_use]
    pub fn deadline_attainment(&self) -> f64 {
        let mut carrying = 0usize;
        let mut attained = 0usize;
        for (_, r) in self.requests() {
            if r.has_deadline() {
                carrying += 1;
                if r.slo_attained() {
                    attained += 1;
                }
            }
        }
        if carrying == 0 {
            return 1.0;
        }
        attained as f64 / carrying as f64
    }

    /// Finished requests across all shards, as `(shard_id, stats)`.
    pub fn requests(&self) -> impl Iterator<Item = (usize, &RequestStats)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(shard, s)| s.requests.iter().map(move |r| (shard, r)))
    }

    /// End-to-end cluster throughput in generated tokens per second at
    /// `clock_hz`, over the parallel makespan — this is the number that
    /// must *rise* with shard count for sharding to be worth anything.
    #[must_use]
    pub fn tokens_per_second(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.tokens_generated() as f64 / (self.total_cycles as f64 / clock_hz)
    }

    /// Total prompt-prefill cycles charged across all shards.
    #[must_use]
    pub fn total_prefill_cycles(&self) -> u64 {
        self.shards
            .iter()
            .map(ServingReport::total_prefill_cycles)
            .sum()
    }

    /// Total KV re-prefill cycles charged across all shards.
    #[must_use]
    pub fn total_reprefill_cycles(&self) -> u64 {
        self.shards
            .iter()
            .map(ServingReport::total_reprefill_cycles)
            .sum()
    }

    /// Total prompt tokens served out of the shards' prefix caches.
    #[must_use]
    pub fn total_prefix_hit_tokens(&self) -> usize {
        self.shards
            .iter()
            .map(ServingReport::total_prefix_hit_tokens)
            .sum()
    }

    /// Cluster-wide share of prompt-prefill demand the per-shard prefix
    /// caches served, in `[0, 1]`. Per-shard caches are independent, so
    /// this is the number prefix-affinity routing exists to defend.
    ///
    /// Both sides of the ratio are counted *at admission* — every
    /// admission (first or after a preemption) adds the request's prompt
    /// to the demand and whatever the cache served to the hits — so the
    /// rate is well-formed on truncated runs too. The previous
    /// normalization derived both sides from *finished* requests only
    /// (demand as `prompt × (preemptions + 1)`), which reported 0.0 on
    /// any snapshot taken before the first completion no matter how many
    /// hits had landed, ignored all in-flight demand, and counted
    /// rejected requests (which never prefill) as demand. On a drained
    /// run without rejections the two normalizations agree.
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        let demanded: usize = self.shards.iter().map(|s| s.admitted_prompt_tokens).sum();
        if demanded == 0 {
            return 0.0;
        }
        let hits: usize = self.shards.iter().map(|s| s.admitted_hit_tokens).sum();
        hits as f64 / demanded as f64
    }

    /// The p99 time-to-first-token across the whole cluster, in steps:
    /// every shard's TTFT samples pooled into one population before the
    /// nearest-rank percentile (0 when nothing produced a token).
    /// Averaging or maxing per-shard p99s skews the tail — a shard with
    /// three requests contributes a "p99" that is really its max — so the
    /// cluster number must come from the pooled samples.
    #[must_use]
    pub fn ttft_p99_steps(&self) -> usize {
        let mut ttfts: Vec<usize> = self
            .requests()
            .filter_map(|(_, r)| Some(r.first_token_at? - r.enqueued_at + 1))
            .collect();
        if ttfts.is_empty() {
            return 0;
        }
        ttfts.sort_unstable();
        let rank = (ttfts.len() as f64 * 0.99).ceil() as usize;
        ttfts[rank.clamp(1, ttfts.len()) - 1]
    }

    /// Total host-tier copy-back cycles charged across all shards.
    #[must_use]
    pub fn total_swap_cycles(&self) -> u64 {
        self.shards
            .iter()
            .map(ServingReport::total_swap_cycles)
            .sum()
    }

    /// Total cross-shard transfer cycles charged across all shards.
    #[must_use]
    pub fn total_ship_cycles(&self) -> u64 {
        self.shards
            .iter()
            .map(ServingReport::total_ship_cycles)
            .sum()
    }

    /// Queued requests rejected for an already-blown TTFT deadline,
    /// across all shards (see
    /// [`reject_expired_ttft`](ServingConfig::reject_expired_ttft)).
    #[must_use]
    pub fn rejections(&self) -> usize {
        self.shards.iter().map(|s| s.rejections).sum()
    }

    /// Load imbalance across shards: the busiest shard's total cycles over
    /// the mean shard's, `≥ 1.0` (1.0 = perfectly balanced; also 1.0 for a
    /// single shard or an idle cluster). Work stealing exists to push this
    /// toward 1.
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        let cycles: Vec<u64> = self.shards.iter().map(|s| s.total_cycles).collect();
        let max = cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = cycles.iter().sum::<u64>() as f64 / cycles.len() as f64;
        max as f64 / mean
    }
}

/// Step-by-step construction of a [`ClusterEngine`]: the per-shard serving
/// configuration and scheduler, plus the cluster-level knobs (shard count,
/// routing policy, work stealing).
///
/// Every shard is built identically — same limits, same scheduler kind,
/// same workload seed — so a request costs the same cycles wherever it
/// lands, and routing/stealing choices change *placement*, never results.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode, ClusterEngine, RoutingKind, ServingRequest};
///
/// let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// let mut cluster = ClusterEngine::builder(accel)
///     .heads(2)
///     .max_batch(2)
///     .shards(2)
///     .routing(RoutingKind::LeastLoaded)
///     .stealing(true)
///     .build();
/// for id in 0..4 {
///     cluster.enqueue(ServingRequest::new(id, 24, 2))?;
/// }
/// let report = cluster.run_to_completion(64)?;
/// assert_eq!(report.tokens_generated(), 8);
/// assert_eq!(report.shards.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClusterEngineBuilder {
    cfg: ServingConfig,
    policy: PolicyKind,
    shards: usize,
    routing: Box<dyn RoutingPolicy>,
    stealing: bool,
    threads: usize,
    record_events: bool,
}

impl ClusterEngineBuilder {
    /// Starts from paper-flavoured defaults around an accelerator config:
    /// one shard, FIFO scheduling, round-robin routing, stealing off —
    /// the configuration whose schedule is bit-identical to a bare
    /// [`ServingEngine`].
    #[must_use]
    pub fn new(accel: AccelConfig) -> Self {
        Self {
            cfg: ServingConfig::new(accel),
            policy: PolicyKind::Fifo,
            shards: 1,
            routing: RoutingKind::RoundRobin.build(),
            stealing: false,
            threads: 1,
            record_events: true,
        }
    }

    /// Replaces the whole per-shard serving configuration.
    #[must_use]
    pub fn config(mut self, cfg: ServingConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the per-shard admission limits.
    #[must_use]
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Sets each shard's batch slot limit.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.admission.max_batch = max_batch;
        self
    }

    /// Sets each shard's KV token budget.
    #[must_use]
    pub fn max_batch_tokens(mut self, max_batch_tokens: usize) -> Self {
        self.cfg.admission.max_batch_tokens = max_batch_tokens;
        self
    }

    /// Sets the KV page size in tokens.
    #[must_use]
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.cfg.admission.page_size = page_size;
        self
    }

    /// Enables per-shard copy-on-write prefix caching.
    #[must_use]
    pub fn prefix_cache(mut self, enabled: bool) -> Self {
        self.cfg.admission.prefix_cache = enabled;
        self
    }

    /// Sets the prompt-prefill charge factor.
    #[must_use]
    pub fn prefill_factor(mut self, prefill_factor: f64) -> Self {
        self.cfg.prefill_factor = prefill_factor;
        self
    }

    /// Sets the per-shard chunked-prefill budget in KV pages per step
    /// (see [`ServingConfig::prefill_chunk_pages`]; `0` keeps prefill
    /// unchunked).
    #[must_use]
    pub fn prefill_chunk_pages(mut self, pages: usize) -> Self {
        self.cfg.prefill_chunk_pages = pages;
        self
    }

    /// Sets each shard's host-tier capacity in KV pages (see
    /// [`ServingConfig::host_pages`]; `0` disables the tier).
    #[must_use]
    pub fn host_pages(mut self, pages: usize) -> Self {
        self.cfg.host_pages = pages;
        self
    }

    /// Sets the host-tier copy-back charge factor (see
    /// [`ServingConfig::swap_cost_factor`]).
    #[must_use]
    pub fn swap_cost_factor(mut self, factor: f64) -> Self {
        self.cfg.swap_cost_factor = factor;
        self
    }

    /// Sets the cross-shard page-shipping charge factor (see
    /// [`ServingConfig::ship_cost_factor`]; `0.0` disables shipping).
    #[must_use]
    pub fn ship_cost_factor(mut self, factor: f64) -> Self {
        self.cfg.ship_cost_factor = factor;
        self
    }

    /// Enables admission-time rejection of requests whose TTFT deadline
    /// already elapsed in the queue (see
    /// [`ServingConfig::reject_expired_ttft`]).
    #[must_use]
    pub fn reject_expired_ttft(mut self, reject: bool) -> Self {
        self.cfg.reject_expired_ttft = reject;
        self
    }

    /// Sets the attention head count per request per step.
    #[must_use]
    pub fn heads(mut self, heads: usize) -> Self {
        self.cfg.heads = heads;
        self
    }

    /// Sets the FC/FFN weight bytes streamed per step per shard.
    #[must_use]
    pub fn weight_bytes(mut self, weight_bytes: u64) -> Self {
        self.cfg.weight_bytes = weight_bytes;
        self
    }

    /// Sets the base seed of the synthetic per-request workloads. Every
    /// shard shares it, so a request's attention cost is placement-
    /// independent.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Selects the scheduling policy every shard runs.
    #[must_use]
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = kind;
        self
    }

    /// Sets the per-shard preemption behavior.
    #[must_use]
    pub fn preemption(mut self, preemption: PreemptionConfig) -> Self {
        self.cfg.preemption = preemption;
        self
    }

    /// Enables preemption on every shard.
    #[must_use]
    pub fn enable_preemption(mut self) -> Self {
        self.cfg.preemption.enabled = true;
        self
    }

    /// Sets how much of a preemption victim's paged KV survives eviction.
    #[must_use]
    pub fn retention(mut self, retention: RetentionPolicy) -> Self {
        self.cfg.preemption.retention = retention;
        self
    }

    /// Sets the shard count (clamped to at least 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Selects a built-in routing policy.
    #[must_use]
    pub fn routing(mut self, kind: RoutingKind) -> Self {
        self.routing = kind.build();
        self
    }

    /// Installs a custom routing policy.
    #[must_use]
    pub fn routing_boxed(mut self, routing: Box<dyn RoutingPolicy>) -> Self {
        self.routing = routing;
        self
    }

    /// Enables or disables work stealing between shards.
    #[must_use]
    pub fn stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// Sets how many OS threads step the shards each cluster step
    /// (clamped to at least 1; capped at the shard count when stepping).
    ///
    /// The default, 1, is the sequential reference path: shards step one
    /// after another on the caller's thread. With more threads the
    /// per-shard `step()` calls fan out to scoped worker threads — same
    /// schedule, same digests, less wall-clock. See the [module
    /// docs](self) for the synchronization model.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggles event recording on every shard and the cluster.
    #[must_use]
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Builds the cluster.
    #[must_use]
    pub fn build(self) -> ClusterEngine {
        let shards = (0..self.shards)
            .map(|_| {
                ServingEngine::from_parts(self.cfg.clone(), self.policy.build(), self.record_events)
            })
            .collect();
        ClusterEngine {
            shards,
            router: self.routing,
            stealing: self.stealing,
            threads: self.threads,
            record_events: self.record_events,
            step_index: 0,
            steals: 0,
            ships: 0,
            total_cycles: 0,
            wall_nanos: 0,
            steps: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// N independent serving engines behind one admission front door, with
/// pluggable request routing and optional work stealing between shards.
///
/// See the [module docs](self) for the model; see
/// [`ClusterEngineBuilder`] for construction.
#[derive(Debug)]
pub struct ClusterEngine {
    shards: Vec<ServingEngine>,
    router: Box<dyn RoutingPolicy>,
    stealing: bool,
    threads: usize,
    record_events: bool,
    step_index: usize,
    steals: usize,
    ships: usize,
    total_cycles: u64,
    wall_nanos: u64,
    steps: Vec<ClusterStepReport>,
    events: Vec<ClusterEvent>,
}

/// Steps every shard in `shards` once, idle-ticking drained shards, and
/// returns the slice's contribution to the cluster step: the busiest
/// shard's cycles and the decoded-request count. This is the unit of work
/// a worker thread owns under `threads > 1`, and the whole step under the
/// sequential path — one body, two execution modes, so the schedules
/// cannot drift apart.
fn step_shard_slice(shards: &mut [ServingEngine]) -> Result<(u64, usize), ServeError> {
    let mut critical_cycles = 0u64;
    let mut batch = 0usize;
    for shard in shards {
        match shard.step()? {
            Some(r) => {
                critical_cycles = critical_cycles.max(r.total_cycles());
                batch += r.batch;
            }
            None => shard.idle_tick(),
        }
    }
    Ok((critical_cycles, batch))
}

impl ClusterEngine {
    /// Starts a [`ClusterEngineBuilder`] around an accelerator config.
    #[must_use]
    pub fn builder(accel: AccelConfig) -> ClusterEngineBuilder {
        ClusterEngineBuilder::new(accel)
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to shard `i` (panics if out of range) — per-shard
    /// observability, e.g. `cluster.shard(0).kv_pager().validate()`.
    #[must_use]
    pub fn shard(&self, i: usize) -> &ServingEngine {
        &self.shards[i]
    }

    /// The active routing policy's name.
    #[must_use]
    pub fn routing_name(&self) -> &'static str {
        self.router.name()
    }

    /// Whether work stealing is enabled.
    #[must_use]
    pub fn stealing_enabled(&self) -> bool {
        self.stealing
    }

    /// Worker threads shards step on (1 = sequential reference path).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Measured wall-clock seconds spent stepping so far.
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Queued-request migrations work stealing has performed so far.
    #[must_use]
    pub fn steals(&self) -> usize {
        self.steals
    }

    /// Running-request migrations shipped between shards so far.
    #[must_use]
    pub fn ships(&self) -> usize {
        self.ships
    }

    /// Whether cross-shard page shipping is active: a priced transfer
    /// (`ship_cost_factor > 0`) and more than one shard. Prefix pulling
    /// additionally needs a prefix cache to land pages in; running-request
    /// migration additionally needs stealing enabled.
    fn shipping_enabled(&self) -> bool {
        self.shards.len() > 1 && self.shards[0].config().ship_cost_factor > 0.0
    }

    /// Whether every shard has drained (nothing pending or running).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(ServingEngine::is_idle)
    }

    /// Requests waiting across all shards.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.iter().map(ServingEngine::pending).sum()
    }

    /// Requests decoding across all shards.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shards.iter().map(ServingEngine::running).sum()
    }

    /// Cluster events recorded so far, in order: shard events are swept
    /// into the cluster log (tagged with their shard) after every enqueue
    /// and step, steal migrations as they happen.
    #[must_use]
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Removes and returns all recorded cluster events.
    pub fn drain_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Load snapshots of every shard, indexed by shard id — what the
    /// routing policy (and work stealing) decide from. Occupied KV counts
    /// only *running* requests' pages: a queued preemption victim's
    /// retained pages must not bill its shard twice (its backlog already
    /// counts at full final context in `queued_tokens`).
    #[must_use]
    pub fn shard_views(&self) -> Vec<ShardView> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard_id, e)| ShardView {
                shard_id,
                pending: e.pending(),
                running: e.running(),
                queued_tokens: e.queued_tokens(),
                occupied_tokens: e.running_kv_tokens(),
                free_slots: e.config().admission.max_batch.saturating_sub(e.running()),
            })
            .collect()
    }

    /// Routes `req` to a shard and enqueues it there, returning the shard
    /// id the router chose.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] exactly as
    /// [`ServingEngine::enqueue`] would: zero shapes, or a request no
    /// shard could ever admit alone (shards are identically configured, so
    /// one shard's verdict is every shard's).
    pub fn enqueue(&mut self, req: ServingRequest) -> Result<usize, ServeError> {
        // Validate before consulting the router: a rejected request must
        // not advance routing state (round-robin's rotation, an affinity
        // binding) for work that never enters the cluster.
        self.shards[0].validate_request(&req)?;
        let wants_pull = self.shipping_enabled() && self.shards[0].config().admission.prefix_cache;
        let keys = if self.router.wants_page_keys() || wants_pull {
            req.page_keys(self.shards[0].config().admission.page_size)
        } else {
            Vec::new()
        };
        let views = self.shard_views();
        let shard = self.router.route(&req, &keys, &views).min(
            self.shards.len() - 1, // a routing policy cannot route off the cluster
        );
        let pulled = if wants_pull {
            self.pull_prefix(shard, &keys)
        } else {
            None
        };
        if let Some((donor, shipped_tokens)) = pulled {
            let id = req.id;
            self.shards[shard].enqueue_with_shipped(req, shipped_tokens)?;
            if self.record_events {
                self.events.push(ClusterEvent::Shipped {
                    id,
                    from: donor,
                    to: shard,
                    step: self.step_index,
                    tokens: shipped_tokens,
                });
            }
        } else {
            self.shards[shard].enqueue(req)?;
        }
        self.sweep_shard_events();
        Ok(shard)
    }

    /// Pulls the longest resident run of `keys` a sibling shard holds
    /// beyond what the landing shard already has, moving/copying the pages
    /// into the landing shard's prefix cache so admission can adopt them.
    /// Returns the donor and the tokens' worth of pages that actually
    /// landed (`None` on a local hit at least as long, no sibling hit, or
    /// a full free list). Deterministic: the donor is the sibling with the
    /// longest run, lowest shard id on ties.
    fn pull_prefix(&mut self, to: usize, keys: &[u64]) -> Option<(usize, usize)> {
        if keys.is_empty() {
            return None;
        }
        // `adoptable` with an unused owner counts the leading resident run
        // of the chain without touching any allocation state.
        const PROBE: u64 = u64::MAX;
        let own = self.shards[to].kv_pager().adoptable(PROBE, keys).0;
        let (donor, donor_run) = self
            .shards
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != to)
            .map(|(s, e)| (s, e.kv_pager().adoptable(PROBE, keys).0))
            .filter(|&(_, run)| run > own)
            .max_by_key(|&(s, run)| (run, std::cmp::Reverse(s)))?;
        debug_assert!(donor_run > own);
        // Only the suffix beyond the local run travels: re-shipping pages
        // the receiver already holds would evict the donor's cached copies
        // for nothing.
        let shipped = self.shards[donor]
            .kv_pager_mut()
            .export_prefix(&keys[own..]);
        let landed = self.shards[to].kv_pager_mut().import_prefix(&shipped);
        if landed == 0 {
            return None;
        }
        Some((donor, landed * self.shards[to].config().admission.page_size))
    }

    /// The between-barriers face of prefix pulling: a request enqueued
    /// before any sibling had *built* its prefix finds the pages only
    /// once they publish after the builder's prefill step, so every
    /// queued, never-admitted request re-probes the cluster each step
    /// until its prefix is local (then the local-run check makes further
    /// probes no-ops) or it admits. Deterministic — shards in index
    /// order, requests in arrival order, donor choice as
    /// [`pull_prefix`](Self::pull_prefix) — and it runs on the
    /// coordinator before the shard-step fan-out, so threaded schedules
    /// see identical pulls.
    fn pull_pending_prefixes(&mut self) {
        if !self.shards[0].config().admission.prefix_cache {
            return;
        }
        for to in 0..self.shards.len() {
            for (id, seq, keys) in self.shards[to].pull_candidates() {
                let Some((donor, tokens)) = self.pull_prefix(to, &keys) else {
                    continue;
                };
                self.shards[to].credit_shipped(seq, tokens);
                if self.record_events {
                    self.events.push(ClusterEvent::Shipped {
                        id,
                        from: donor,
                        to,
                        step: self.step_index,
                        tokens,
                    });
                }
            }
        }
    }

    /// Migrates queued, never-admitted requests from the most-loaded shard
    /// to idle shards (no queue, free slots), one request per idle shard
    /// per step, youngest first, until no donor is meaningfully more
    /// loaded than any idle thief. Deterministic throughout: ties break by
    /// the lowest shard id, and the youngest queued request (largest
    /// arrival order) migrates — the one its own shard would have served
    /// last.
    fn steal(&mut self) {
        // A shard participates at most once per step (as thief or donor
        // once it has received): without this, a donor whose last queued
        // request was just stolen becomes the next thief and — at equal
        // occupied loads — the same request ping-pongs between two shards
        // forever within this call.
        let mut received = vec![false; self.shards.len()];
        loop {
            let views = self.shard_views();
            // A thief is a shard that would otherwise sit idle this step:
            // nothing queued and at least one free batch slot.
            let Some(thief) = views
                .iter()
                .filter(|v| v.pending == 0 && v.free_slots > 0 && !received[v.shard_id])
                .min_by_key(|v| (v.load(), v.shard_id))
                .map(|v| v.shard_id)
            else {
                break;
            };
            // A donor must have a migratable request AND keep work after
            // the steal — moving a lone request between two idle shards
            // rebalances nothing. Fresh recipients never donate back.
            let Some(donor) = views
                .iter()
                .filter(|v| {
                    v.shard_id != thief
                        && !received[v.shard_id]
                        && v.pending + v.running >= 2
                        && v.load() > views[thief].load()
                        && self.shards[v.shard_id].has_stealable_queued()
                })
                .max_by_key(|v| (v.load(), std::cmp::Reverse(v.shard_id)))
                .map(|v| v.shard_id)
            else {
                break;
            };
            received[thief] = true;
            let Some(req) = self.shards[donor].steal_youngest_unstarted() else {
                break;
            };
            self.shards[thief]
                .enqueue(req)
                .expect("a request one shard accepted fits any identically-configured shard");
            self.steals += 1;
            if self.record_events {
                self.events.push(ClusterEvent::Stolen {
                    id: req.id,
                    from: donor,
                    to: thief,
                    step: self.step_index,
                });
            }
        }
        if self.shipping_enabled() {
            self.ship_running(&mut received);
        }
    }

    /// The priced escalation of work stealing: when a shard is *fully*
    /// idle (nothing queued, nothing running) and no donor has queued work
    /// to move cheaply, migrate the youngest fully-built *running* request
    /// from the most-loaded shard that can spare one. The donor frees its
    /// pages, the whole built context travels as shipped KV, and the
    /// receiver re-prices it at
    /// [`ship_cost_factor`](ServingConfig::ship_cost_factor) instead of a
    /// re-prefill. One migration per thief per step, each shard touched at
    /// most once — same determinism discipline as queued stealing.
    fn ship_running(&mut self, received: &mut [bool]) {
        loop {
            let views = self.shard_views();
            let Some(thief) = views
                .iter()
                .filter(|v| v.pending == 0 && v.running == 0 && !received[v.shard_id])
                .map(|v| v.shard_id)
                .min()
            else {
                break;
            };
            // A donor keeps decoding after the migration (≥ 2 running) and
            // has no queued request the cheap path could have moved.
            let Some(donor) = views
                .iter()
                .filter(|v| {
                    v.shard_id != thief
                        && !received[v.shard_id]
                        && v.running >= 2
                        && !self.shards[v.shard_id].has_stealable_queued()
                })
                .max_by_key(|v| (v.load(), std::cmp::Reverse(v.shard_id)))
                .map(|v| v.shard_id)
            else {
                break;
            };
            let Some(migrant) = self.shards[donor].ship_out_youngest_running() else {
                break;
            };
            received[thief] = true;
            // Donating a running request costs the donor a transfer; it
            // sits out the rest of this step's migrations.
            received[donor] = true;
            let (id, tokens) = (migrant.req.id, migrant.shipped_tokens);
            self.shards[thief].receive_shipped(migrant);
            self.ships += 1;
            if self.record_events {
                self.events.push(ClusterEvent::Shipped {
                    id,
                    from: donor,
                    to: thief,
                    step: self.step_index,
                    tokens,
                });
            }
        }
    }

    /// Runs one cluster step: steals (when enabled), then steps every
    /// shard once in lockstep — sequentially, or fanned out to scoped
    /// worker threads when built with
    /// [`threads`](ClusterEngineBuilder::threads) `> 1`. Idle shards
    /// record a zero-cycle tick so all shard clocks stay equal to the
    /// cluster step index.
    ///
    /// Returns `Ok(None)` when every shard has drained.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure ([`ServeError::Core`] or
    /// [`ServeError::AdmissionStalled`]) — under threading, the failure
    /// on the lowest-numbered shard slice.
    pub fn step(&mut self) -> Result<Option<ClusterStepReport>, ServeError> {
        if self.is_idle() {
            return Ok(None);
        }
        let start = std::time::Instant::now();
        if self.stealing && self.shards.len() > 1 {
            self.steal();
        }
        if self.shipping_enabled() && self.shards.len() > 1 {
            self.pull_pending_prefixes();
        }
        let (critical_cycles, batch) = if self.threads > 1 && self.shards.len() > 1 {
            // Coordinator fans the shards out in contiguous slices, one
            // per worker; the scope's implicit join is the barrier before
            // the next route/steal/sweep synchronization point. Each
            // worker holds a disjoint `&mut` slice, so no shard state is
            // shared while threads run.
            let workers = self.threads.min(self.shards.len());
            let per_worker = self.shards.len().div_ceil(workers);
            let slices = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .chunks_mut(per_worker)
                    .map(|slice| scope.spawn(move || step_shard_slice(slice)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker thread panicked"))
                    .collect::<Vec<_>>()
            });
            let mut critical_cycles = 0u64;
            let mut batch = 0usize;
            for slice in slices {
                let (cycles, decoded) = slice?;
                critical_cycles = critical_cycles.max(cycles);
                batch += decoded;
            }
            (critical_cycles, batch)
        } else {
            step_shard_slice(&mut self.shards)?
        };
        self.sweep_shard_events();
        self.wall_nanos = self
            .wall_nanos
            .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        let report = ClusterStepReport {
            index: self.step_index,
            batch,
            critical_cycles,
        };
        self.total_cycles += critical_cycles;
        self.steps.push(report);
        self.step_index += 1;
        Ok(Some(report))
    }

    /// Drives the cluster until every shard drains, bounded by
    /// `max_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StepLimitExceeded`] if work remains after
    /// `max_steps`, or propagates shard failures.
    pub fn run_to_completion(&mut self, max_steps: usize) -> Result<ClusterReport, ServeError> {
        for _ in 0..max_steps {
            if self.step()?.is_none() {
                return Ok(self.report());
            }
        }
        if self.is_idle() {
            return Ok(self.report());
        }
        Err(ServeError::StepLimitExceeded {
            max_steps,
            unfinished: self.pending() + self.running(),
        })
    }

    /// The cluster report accumulated so far (complete once idle).
    #[must_use]
    pub fn report(&self) -> ClusterReport {
        ClusterReport {
            routing: self.router.name().to_string(),
            policy: self
                .shards
                .first()
                .map_or_else(String::new, |s| s.policy_name().to_string()),
            stealing: self.stealing,
            steals: self.steals,
            ships: self.ships,
            cluster_steps: self.steps.len(),
            total_cycles: self.total_cycles,
            threads: self.threads,
            wall_seconds: self.wall_nanos as f64 / 1e9,
            shards: self.shards.iter().map(ServingEngine::report).collect(),
        }
    }

    /// Pulls every shard's freshly recorded events into the cluster log,
    /// tagged with their shard, in shard order.
    fn sweep_shard_events(&mut self) {
        if !self.record_events {
            return;
        }
        for (shard_id, shard) in self.shards.iter_mut().enumerate() {
            for event in shard.drain_events() {
                self.events.push(ClusterEvent::Shard { shard_id, event });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;

    fn small_builder() -> ClusterEngineBuilder {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).expect("thr");
        ClusterEngine::builder(accel)
            .heads(2)
            .weight_bytes(1_000_000)
            .max_batch(2)
            .max_batch_tokens(640)
    }

    #[test]
    fn round_robin_spreads_requests_across_shards() {
        let mut cluster = small_builder().shards(3).build();
        let routed: Vec<usize> = (0..6)
            .map(|id| cluster.enqueue(ServingRequest::new(id, 16, 1)).unwrap())
            .collect();
        assert_eq!(routed, vec![0, 1, 2, 0, 1, 2]);
        let report = cluster.run_to_completion(16).unwrap();
        assert_eq!(report.tokens_generated(), 6);
        for shard in &report.shards {
            assert_eq!(shard.requests.len(), 2);
        }
    }

    #[test]
    fn least_loaded_follows_the_backlog() {
        let mut cluster = small_builder()
            .shards(2)
            .routing(RoutingKind::LeastLoaded)
            .build();
        // A heavy request loads shard 0; the next requests avoid it until
        // its backlog outweighs theirs.
        assert_eq!(cluster.enqueue(ServingRequest::new(0, 256, 8)).unwrap(), 0);
        assert_eq!(cluster.enqueue(ServingRequest::new(1, 16, 1)).unwrap(), 1);
        assert_eq!(cluster.enqueue(ServingRequest::new(2, 16, 1)).unwrap(), 1);
        let report = cluster.run_to_completion(64).unwrap();
        assert_eq!(report.tokens_generated(), 10);
    }

    #[test]
    fn shard_clocks_stay_in_lockstep() {
        let mut cluster = small_builder().shards(2).build();
        // Only shard 0 gets work; shard 1 must tick along idle.
        cluster.enqueue(ServingRequest::new(0, 16, 3)).unwrap();
        while cluster.step().unwrap().is_some() {}
        let report = cluster.report();
        assert_eq!(report.cluster_steps, 3);
        assert_eq!(report.shards[0].steps.len(), 3);
        assert_eq!(report.shards[1].steps.len(), 3, "idle shard fell behind");
        assert!(report.shards[1].steps.iter().all(|s| s.total_cycles() == 0));
        // Makespan equals the busy shard's cycles; imbalance is maximal.
        assert_eq!(report.total_cycles, report.shards[0].total_cycles);
        assert!((report.load_imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stealing_moves_queued_work_to_idle_shards() {
        // A skew-everything router leaves shard 1 idle; stealing must
        // migrate queued work over.
        #[derive(Debug)]
        struct AlwaysZero;
        impl RoutingPolicy for AlwaysZero {
            fn name(&self) -> &'static str {
                "always-zero"
            }
            fn route(&mut self, _r: &ServingRequest, _k: &[u64], _s: &[ShardView]) -> usize {
                0
            }
        }
        let mut cluster = small_builder()
            .shards(2)
            .routing_boxed(Box::new(AlwaysZero))
            .stealing(true)
            .build();
        for id in 0..6 {
            assert_eq!(cluster.enqueue(ServingRequest::new(id, 32, 2)).unwrap(), 0);
        }
        let report = cluster.run_to_completion(64).unwrap();
        assert!(report.steals > 0, "no work was stolen");
        assert!(
            !report.shards[1].requests.is_empty(),
            "the idle shard never got work"
        );
        assert_eq!(report.tokens_generated(), 12);
        // Steal events and finish locations agree.
        let stolen: Vec<u64> = cluster
            .events()
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::Stolen {
                    id, from: 0, to: 1, ..
                } => Some(*id),
                _ => None,
            })
            .collect();
        for id in &stolen {
            assert!(report.shards[1].requests.iter().any(|r| r.id == *id));
        }
    }

    #[test]
    fn stealing_never_migrates_admitted_requests() {
        let mut cluster = small_builder()
            .shards(2)
            .stealing(true)
            .enable_preemption()
            .retention(RetentionPolicy::Fraction(0.5))
            .build();
        for id in 0..8 {
            cluster
                .enqueue(ServingRequest::new(id, 48, 3).with_priority((id % 3) as u8))
                .unwrap();
        }
        let report = cluster.run_to_completion(128).unwrap();
        // Every TokenGenerated event of a request comes from one shard.
        let mut shard_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for e in cluster.events() {
            if let ClusterEvent::Shard {
                shard_id,
                event: ServeEvent::TokenGenerated { id, .. },
            } = e
            {
                let prev = shard_of.insert(*id, *shard_id);
                assert!(
                    prev.is_none() || prev == Some(*shard_id),
                    "request {id} decoded on two shards"
                );
            }
        }
        assert_eq!(report.tokens_generated(), 8 * 3);
    }

    #[test]
    fn single_shard_cluster_never_steals_and_matches_engine_counts() {
        let mut cluster = small_builder().stealing(true).build();
        for id in 0..4 {
            assert_eq!(cluster.enqueue(ServingRequest::new(id, 24, 2)).unwrap(), 0);
        }
        let report = cluster.run_to_completion(32).unwrap();
        assert_eq!(report.steals, 0);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.total_cycles, report.shards[0].total_cycles);
        assert_eq!(report.cluster_steps, report.shards[0].steps.len());
        assert!((report.load_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn everything_a_worker_thread_touches_is_send() {
        // The compile-time contract behind `threads > 1`: a worker thread
        // receives `&mut [ServingEngine]`, so the engine — and everything
        // it owns transitively, pager and batch and boxed policy included
        // — must be `Send`. The cluster itself must be too, so callers
        // can drive whole clusters from spawned threads.
        fn assert_send<T: Send>() {}
        assert_send::<ServingEngine>();
        assert_send::<ClusterEngine>();
        assert_send::<super::super::KvPager>();
        assert_send::<super::super::batch_state::BatchState>();
        assert_send::<Box<dyn super::super::SchedulerPolicy>>();
        assert_send::<Box<dyn RoutingPolicy>>();
    }

    #[test]
    fn threaded_stepping_matches_the_sequential_schedule() {
        let run = |threads: usize| {
            let mut cluster = small_builder()
                .shards(3)
                .routing(RoutingKind::LeastLoaded)
                .stealing(true)
                .enable_preemption()
                .retention(RetentionPolicy::Fraction(0.75))
                .threads(threads)
                .build();
            for id in 0..9 {
                cluster
                    .enqueue(ServingRequest::new(id, 32 + (id as usize % 3) * 16, 3))
                    .unwrap();
            }
            cluster.run_to_completion(256).unwrap()
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            let threaded = run(threads);
            assert_eq!(threaded.threads, threads);
            // Everything but the measured wall-clock must be identical.
            assert_eq!(threaded.shards, sequential.shards, "threads={threads}");
            assert_eq!(threaded.steals, sequential.steals);
            assert_eq!(threaded.total_cycles, sequential.total_cycles);
            assert_eq!(threaded.cluster_steps, sequential.cluster_steps);
        }
        assert_eq!(sequential.threads, 1);
        assert!(sequential.wall_seconds > 0.0);
    }

    #[test]
    fn oversized_requests_are_rejected_at_the_front_door() {
        let mut cluster = small_builder().shards(2).build();
        let err = cluster
            .enqueue(ServingRequest::new(0, 10_000, 1))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        assert!(cluster.is_idle());
    }

    /// A finished-request record with the given TTFT in steps and every
    /// other field inert, for synthesizing reports with known samples.
    fn request_with_ttft(id: u64, ttft_steps: usize) -> crate::serve::stats::RequestStats {
        crate::serve::stats::RequestStats {
            id,
            prompt_len: 16,
            generated: 1,
            priority: 0,
            client_id: 0,
            enqueued_at: 0,
            admitted_at: Some(0),
            first_token_at: Some(ttft_steps - 1),
            finished_at: Some(ttft_steps - 1),
            preemptions: 0,
            attention_cycles: 0,
            prefill_cycles: 0,
            reprefill_cycles: 0,
            prefix_hit_tokens: 0,
            retained_tokens: 0,
            reprefilled_tokens: 0,
            swapped_tokens: 0,
            swap_cycles: 0,
            shipped_tokens: 0,
            ship_cycles: 0,
            ttft_deadline: None,
            itl_deadline: None,
            good_tokens: 1,
            slo_violated: false,
        }
    }

    fn shard_with_ttfts(ttfts: &[usize]) -> ServingReport {
        ServingReport {
            policy: "fifo".to_string(),
            steps: Vec::new(),
            requests: ttfts
                .iter()
                .enumerate()
                .map(|(i, &t)| request_with_ttft(i as u64, t))
                .collect(),
            total_cycles: 0,
            tokens_generated: ttfts.len(),
            preemptions: 0,
            admitted_prompt_tokens: 0,
            admitted_hit_tokens: 0,
            rejections: 0,
            prune: topick_core::PruneStats::new(0, 0),
        }
    }

    #[test]
    fn cluster_ttft_p99_pools_samples_instead_of_aggregating_shard_p99s() {
        // 98 one-step TTFTs on shard 0, {500, 1000} on shard 1: the pooled
        // population is 100 samples, nearest-rank p99 = ceil(100 × 0.99)
        // = rank 99 = the 99th sorted sample = 500. Any per-shard
        // aggregation gets this wrong: shard 0's own p99 is 98, shard 1's
        // is 1000, so max reports 1000 and the mean 549.
        let report = ClusterReport {
            routing: "round-robin".to_string(),
            policy: "fifo".to_string(),
            stealing: false,
            steals: 0,
            ships: 0,
            cluster_steps: 0,
            total_cycles: 0,
            threads: 1,
            wall_seconds: 0.0,
            shards: vec![
                shard_with_ttfts(&(1..=98).collect::<Vec<_>>()),
                shard_with_ttfts(&[500, 1000]),
            ],
        };
        assert_eq!(report.shards[0].ttft_p99_steps(), 98);
        assert_eq!(report.shards[1].ttft_p99_steps(), 1000);
        assert_eq!(report.ttft_p99_steps(), 500);

        // Degenerate populations: a single sample is its own p99; no
        // samples at all report 0.
        let one = ClusterReport {
            shards: vec![shard_with_ttfts(&[7]), shard_with_ttfts(&[])],
            ..report
        };
        assert_eq!(one.ttft_p99_steps(), 7);
        let none = ClusterReport {
            shards: vec![shard_with_ttfts(&[])],
            ..one
        };
        assert_eq!(none.ttft_p99_steps(), 0);
    }

    #[test]
    fn priced_shipping_migrates_a_running_request_to_an_idle_shard() {
        // Two long requests run on shard 0 while shard 1 burns down one
        // short one. When shard 1 drains, shard 0 has *nothing queued* —
        // the shape queue-only stealing cannot fix. With shipping priced,
        // the coordinator must move one admitted request across, charge
        // ship cycles for the move, and still deliver every token.
        #[derive(Debug)]
        struct ByIdRange;
        impl RoutingPolicy for ByIdRange {
            fn name(&self) -> &'static str {
                "by-id-range"
            }
            fn route(&mut self, r: &ServingRequest, _k: &[u64], _s: &[ShardView]) -> usize {
                usize::from(r.id >= 2)
            }
        }
        let run = |ship: f64| {
            let mut cluster = small_builder()
                .shards(2)
                .routing_boxed(Box::new(ByIdRange))
                .stealing(true)
                .ship_cost_factor(ship)
                .build();
            cluster.enqueue(ServingRequest::new(0, 64, 20)).unwrap();
            cluster.enqueue(ServingRequest::new(1, 64, 20)).unwrap();
            cluster.enqueue(ServingRequest::new(2, 64, 2)).unwrap();
            let report = cluster.run_to_completion(128).unwrap();
            let shipped: Vec<u64> = cluster
                .events()
                .iter()
                .filter_map(|e| match e {
                    ClusterEvent::Shipped { id, from, to, .. } => {
                        assert_eq!((*from, *to), (0, 1), "only shard 1 goes idle");
                        Some(*id)
                    }
                    _ => None,
                })
                .collect();
            (report, shipped)
        };

        let (unpriced, no_ships) = run(0.0);
        assert_eq!(unpriced.ships, 0, "unpriced shipping must stay off");
        assert!(no_ships.is_empty());
        assert_eq!(unpriced.steals, 0, "nothing was ever queued to steal");
        assert_eq!(
            unpriced.shards[1].requests.len(),
            1,
            "without shipping the drained shard keeps only its own request"
        );

        let (priced, shipped) = run(0.25);
        assert_eq!(priced.ships, 1, "exactly one resident moves");
        assert_eq!(priced.steals, 0, "the migration is a ship, not a steal");
        assert_eq!(shipped.len(), 1);
        assert_eq!(
            priced.tokens_generated(),
            unpriced.tokens_generated(),
            "shipping changes placement, not the work done"
        );
        // The migrated request finishes on the receiving shard and pays a
        // transfer bill there.
        let migrant = shipped[0];
        assert!(priced.total_ship_cycles() > 0, "the move must be priced");
        let moved = priced.shards[1]
            .requests
            .iter()
            .find(|r| r.id == migrant)
            .expect("the migrant finishes on the receiving shard");
        assert!(moved.shipped_tokens > 0);
        assert!(moved.ship_cycles > 0);
    }
}
